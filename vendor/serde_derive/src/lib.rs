//! Offline shim of `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the
//! shapes this workspace actually derives: named/tuple/unit structs and
//! enums with unit, tuple, and struct variants — no generics, no
//! `#[serde(...)]` attributes. The parser walks raw `TokenTree`s (the
//! environment has no `syn`/`quote`) and the generator emits source
//! text that is parsed back into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Def {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, def) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let body = match (&def, mode) {
        (Def::Struct(fields), Mode::Serialize) => ser_struct(&name, fields),
        (Def::Struct(fields), Mode::Deserialize) => de_struct(&name, fields),
        (Def::Enum(variants), Mode::Serialize) => ser_enum(&name, variants),
        (Def::Enum(variants), Mode::Deserialize) => de_enum(&name, variants),
    };
    body.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse(input: TokenStream) -> Result<(String, Def), String> {
    let mut iter = input.into_iter().peekable();
    let mut keyword = String::new();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next(); // pub(crate) etc.
                        }
                    }
                } else if word == "struct" || word == "enum" {
                    keyword = word;
                    break;
                }
            }
            _ => {}
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde shim: generic type `{name}` is not supported"));
        }
    }
    let def = if keyword == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Def::Struct(Fields::Named(parse_named(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Def::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Def::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Def::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };
    Ok((name, def))
}

/// Skips a type expression up to a top-level `,` (angle-bracket aware).
fn skip_type(iter: &mut Tokens) {
    let mut depth = 0i32;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
    }
}

fn parse_named(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                iter.next(); // the `:`
                skip_type(&mut iter);
            }
            _ => {}
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut pending = false;
    let mut depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let fields = Fields::Tuple(count_tuple_fields(g.stream()));
                        iter.next();
                        fields
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = Fields::Named(parse_named(g.stream()));
                        iter.next();
                        fields
                    }
                    _ => Fields::Unit,
                };
                // Consume up to the variant separator (discriminants are
                // not supported on serde-derived enums here).
                for tt in iter.by_ref() {
                    if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push((name, fields));
            }
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn ser_fields_named(receiver: &str, fields: &[String]) -> String {
    let mut out = String::from("::serde::Value::Map(::std::vec![");
    for f in fields {
        let _ = write!(
            out,
            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({receiver}{f})),"
        );
    }
    out.push_str("])");
    out
}

fn ser_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut out = String::from("::serde::Value::Seq(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::to_value(&self.{i}),");
            }
            out.push_str("])");
            out
        }
        Fields::Named(fields) => ser_fields_named("&self.", fields),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn de_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => format!(
            "{{\n\
                 let seq = v.as_seq().filter(|s| s.len() == {n})\
                     .ok_or_else(|| ::serde::DeError::expected(\"sequence of {n} for {name}\", v))?;\n\
                 ::std::result::Result::Ok({name}({args}))\n\
             }}",
            args = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                .collect::<String>()
        ),
        Fields::Named(fields) => format!(
            "{{\n\
                 let map = v.as_map()\
                     .ok_or_else(|| ::serde::DeError::expected(\"map for {name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{ {args} }})\n\
             }}",
            args = fields
                .iter()
                .map(|f| format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::value::field(map, {f:?}))?,"
                ))
                .collect::<String>()
        ),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),\n"
                );
            }
            Fields::Tuple(n) => {
                let binds =
                    (0..*n).map(|i| format!("__f{i},")).collect::<String>();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let mut seq = String::from("::serde::Value::Seq(::std::vec![");
                    for i in 0..*n {
                        let _ = write!(seq, "::serde::Serialize::to_value(__f{i}),");
                    }
                    seq.push_str("])");
                    seq
                };
                let _ = write!(
                    arms,
                    "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({v:?}), {inner})]),\n"
                );
            }
            Fields::Named(fields) => {
                let binds = fields.iter().map(|f| format!("{f},")).collect::<String>();
                let inner = ser_fields_named("", fields);
                let _ = write!(
                    arms,
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({v:?}), {inner})]),\n"
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

fn de_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = write!(
                    unit_arms,
                    "{v:?} => ::std::result::Result::Ok({name}::{v}),\n"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    data_arms,
                    "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                );
            }
            Fields::Tuple(n) => {
                let args = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                    .collect::<String>();
                let _ = write!(
                    data_arms,
                    "{v:?} => {{\n\
                         let seq = inner.as_seq().filter(|s| s.len() == {n})\
                             .ok_or_else(|| ::serde::DeError::expected(\
                                 \"sequence of {n} for {name}::{v}\", inner))?;\n\
                         ::std::result::Result::Ok({name}::{v}({args}))\n\
                     }}\n"
                );
            }
            Fields::Named(fields) => {
                let args = fields
                    .iter()
                    .map(|f| format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value::field(fm, {f:?}))?,"
                    ))
                    .collect::<String>();
                let _ = write!(
                    data_arms,
                    "{v:?} => {{\n\
                         let fm = inner.as_map()\
                             .ok_or_else(|| ::serde::DeError::expected(\
                                 \"map for {name}::{v}\", inner))?;\n\
                         ::std::result::Result::Ok({name}::{v} {{ {args} }})\n\
                     }}\n"
                );
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"{name} variant\", v)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
