//! Offline shim of `proptest`.
//!
//! Implements the subset of proptest's API this workspace uses:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and regex-subset string strategies, tuple
//! and collection composition, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from
//! a per-(test, case-index) deterministic seed, so failures are
//! reproducible by rerunning the test; there is **no shrinking** —
//! the failing case index is reported instead.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

mod pattern;

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derives a generator from the test path and case index, so each
    /// case is stable across runs and machines.
    pub fn deterministic(test_path: &str, case: u32) -> TestRng {
        let mut hash = 0xcbf29ce484222325u64;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        let seed = hash ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Uniform index below `n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: 'static, F: Fn(Self::Value) -> O + 'static>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
    {
        Map { inner: self, f: Arc::new(f) }
    }

    /// Keeps only values satisfying `keep` (regenerating otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
        self,
        reason: impl Into<String>,
        keep: F,
    ) -> Filter<Self>
    where
        Self: Sized,
    {
        Filter { inner: self, reason: reason.into(), keep: Arc::new(keep) }
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse`
    /// wraps a strategy for smaller values into one for larger values,
    /// applied up to `depth` times.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(tower.clone()).boxed();
            tower = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        tower
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A cloneable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Arc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy + Clone, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: self.f.clone() }
    }
}

impl<S: Strategy, O: 'static> Strategy for Map<S, O> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    inner: S,
    reason: String,
    keep: Arc<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy + Clone> Clone for Filter<S> {
    fn clone(&self) -> Self {
        Filter { inner: self.inner.clone(), reason: self.reason.clone(), keep: self.keep.clone() }
    }
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.gen_value(rng);
            if (self.keep)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 candidates in a row", self.reason);
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].gen_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + 'static>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Base strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A `&'static str` is interpreted as a regex (supported subset:
/// literals, `.`, character classes with ranges, `{m}`, `{m,n}`, `*`,
/// `+`, `?`) and generates matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized + 'static {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::BoolAny;

    fn arbitrary() -> Self::Strategy {
        crate::bool::BoolAny
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The fair-coin strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.chance(0.5)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { lo: exact, hi: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy { inner: self.inner.clone() }
        }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(0.25) {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the real proptest for the full syntax. Shrinking is
/// not performed — failures report the deterministic case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::gen_value(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                __l,
                __r
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -4i32..=4,
            f in 0.0f64..1.0,
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = flag;
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, prop::bool::ANY), 1..6),
            name in "[a-z][a-z0-9]{0,7}",
            pick in prop_oneof![Just(1u8), Just(2u8)],
            opt in prop::option::of(0u8..3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(name.len() <= 8, "got {name:?}");
            prop_assert!(name.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(pick == 1 || pick == 2);
            if let Some(o) = opt {
                prop_assert!(o < 3);
            }
        }

        #[test]
        fn recursion_terminates(
            n in (1usize..4).prop_recursive(3, 16, 2, |inner| {
                (inner, 1usize..4).prop_map(|(a, b)| a + b)
            }),
        ) {
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x::y", 3);
        let mut b = crate::TestRng::deterministic("x::y", 3);
        let s = crate::collection::vec(0u64..100, 2..9);
        assert_eq!(
            crate::Strategy::gen_value(&s, &mut a),
            crate::Strategy::gen_value(&s, &mut b)
        );
    }
}
