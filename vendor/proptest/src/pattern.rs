//! Generator for the regex subset accepted as `&'static str`
//! strategies: literals, `.`, `[...]` classes with ranges, and the
//! repeats `{m}`, `{m,n}`, `*`, `+`, `?`.

use crate::TestRng;

enum Atom {
    Lit(char),
    Dot,
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Characters `.` occasionally injects beyond plain printable ASCII,
/// chosen to stress markup parsing.
const DOT_SPICE: &[char] = &['<', '>', '&', '"', '\'', '\n', '\t', 'λ', 'é'];

pub fn generate(pat: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pat);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below(piece.max - piece.min + 1)
        };
        for _ in 0..count {
            out.push(sample(&piece.atom, rng));
        }
    }
    out
}

fn sample(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Dot => {
            if rng.chance(1.0 / 16.0) {
                DOT_SPICE[rng.below(DOT_SPICE.len())]
            } else {
                char::from(b' ' + rng.below(95) as u8)
            }
        }
        Atom::Class(ranges) => {
            let total: usize = ranges.iter().map(|(lo, hi)| (*hi as usize - *lo as usize) + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as usize - *lo as usize) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap();
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

fn parse(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
                let atom = Atom::Class(parse_class(&chars[i + 1..end], pat));
                i = end + 1;
                atom
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let end = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unterminated repeat in pattern {pat:?}"));
                let spec: String = chars[i + 1..end].iter().collect();
                i = end + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let exact = spec.trim().parse().expect("repeat count");
                        (exact, exact)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pat: &str) -> Vec<(char, char)> {
    assert!(!body.is_empty(), "empty class in pattern {pat:?}");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            assert!(body[i] <= body[i + 2], "inverted range in pattern {pat:?}");
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else if i + 2 == body.len() && body[i + 1] == '-' {
            // Trailing `-` is a literal.
            ranges.push((body[i], body[i]));
            ranges.push(('-', '-'));
            i += 2;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    ranges
}
