//! Offline shim of `criterion`: runs each benchmark closure for a
//! short, fixed wall-clock budget and prints the mean iteration time.
//! No statistics, plots, or baselines — just enough to execute the
//! workspace's `[[bench]]` targets and eyeball relative cost.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().label, self.budget, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.criterion.budget, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.criterion.budget, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark's display identity.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional format.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Handed to each benchmark closure to time its hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, f: &mut F) {
    // Warm-up single run to estimate per-iteration cost.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("{label:<50} {:>12} iters  mean {}", iters, human_time(mean));
}

fn human_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
