//! Offline shim of the `serde` facade.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of serde's surface the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` plus the trait pair, implemented
//! over an owned [`Value`] data model (in the spirit of `miniserde`).
//! JSON conventions match upstream serde_json for every shape the
//! workspace derives: structs as maps, newtype structs transparent,
//! unit enum variants as strings, data-carrying variants as
//! externally-tagged single-entry maps, `Option` as `null`/value.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Value};

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`], or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::Int(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            _ => Err(DeError::expected("map", v)),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($n),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected("tuple sequence", v)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
