//! The owned data model every `Serialize`/`Deserialize` impl targets.

use std::fmt;

/// An owned, self-describing value (the shim's equivalent of serde's
/// data model). Maps preserve insertion order so serialized output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

/// A shared `null`, usable where a `&Value` is needed for absent keys.
pub static NULL: Value = Value::Null;

impl Value {
    /// Map access, or `None` for non-maps.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence access, or `None` for non-sequences.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String access, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

// Identity impls: a `Value` serializes to itself, so callers can decode
// arbitrary JSON into the data model and inspect it dynamically.
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

/// Looks up `key` in a struct map, yielding [`NULL`] when absent so
/// `Option` fields decode to `None` (and anything else reports a
/// type mismatch).
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Why a value could not be decoded into the requested type.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form decode error.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A "wanted X, got Y" decode error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError { msg: format!("expected {what}, got {}", got.kind()) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
