//! Offline shim of `serde_json`: JSON text ⇄ the vendored [`serde::Value`]
//! data model. Output conventions match upstream for the shapes this
//! workspace serializes (structs as objects, enums externally tagged,
//! `Option` as `null`, tuples as arrays).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON encode/decode error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{:.1}", f));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed for the
                            // workspace's own output; map lone
                            // surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}
