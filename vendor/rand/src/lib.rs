//! Offline shim of `rand` 0.8's surface as used by this workspace:
//! `StdRng::seed_from_u64`, `gen_range` over (inclusive) integer and
//! float ranges, and `gen_bool`. The generator is xoshiro256++ seeded
//! via splitmix64 — deterministic, fast, and comfortably good enough
//! for simulation and workload generation (not cryptography).

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience path is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 uniform mantissa bits, same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range a value can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn sample_u64_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire); the retry loop terminates fast.
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo = (x as u128 * span as u128) as u64;
        if lo >= span || lo >= lo.wrapping_neg() % span {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(3u64..17);
            assert_eq!(x, b.gen_range(3u64..17));
            assert!((3..17).contains(&x));
            assert_eq!(a.gen_range(-5i32..=5), b.gen_range(-5i32..=5));
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
        let mut hits = [false; 6];
        for _ in 0..200 {
            hits[a.gen_range(0usize..6)] = true;
        }
        assert!(hits.iter().all(|h| *h), "all buckets reachable");
    }
}
