//! Offline shim of `parking_lot`: a non-poisoning [`RwLock`] with the
//! same `read()`/`write()` signatures, backed by `std::sync::RwLock`.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock whose guards are returned directly (no
/// `Result`); a poisoned inner lock is simply recovered, matching
/// parking_lot's no-poisoning semantics.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
