//! Property-based tests for the workload generators: everything seeded,
//! deterministic, structurally valid, and within its declared envelope.

use axml_doc::ServiceCall;
use axml_workload::{random_axml_doc, random_ops, random_plain_doc, tree_edges, DocParams, OpMix, TreeShape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_docs_valid_and_deterministic(
        seed in 0u64..1000,
        nodes in 5usize..150,
        fanout in 2usize..6,
    ) {
        let params = DocParams { nodes, max_fanout: fanout, ..Default::default() };
        let a = random_plain_doc(seed, &params);
        let b = random_plain_doc(seed, &params);
        prop_assert_eq!(a.to_xml(), b.to_xml());
        a.check_consistency().unwrap();
        let elems = a.all_nodes().filter(|n| a.name(*n).is_ok()).count();
        prop_assert_eq!(elems, nodes);
        for n in a.all_nodes() {
            prop_assert!(a.children(n).map(|c| c.len()).unwrap_or(0) <= fanout);
        }
    }

    #[test]
    fn axml_docs_embed_exactly_requested_calls(
        seed in 0u64..1000,
        nodes in 10usize..100,
        calls in 0usize..10,
    ) {
        let params = DocParams {
            nodes,
            service_calls: calls,
            sc_urls: vec!["peer://ap2".into(), "peer://ap3".into()],
            ..Default::default()
        };
        let doc = random_axml_doc(seed, &params);
        doc.check_consistency().unwrap();
        prop_assert_eq!(ServiceCall::scan(&doc).len(), calls);
        // Every generated call is parseable back and carries its seed
        // result hint.
        for call in ServiceCall::scan(&doc) {
            prop_assert!(!call.result_names(&doc).is_empty());
            prop_assert!(call.service_url.starts_with("peer://"));
        }
    }

    #[test]
    fn generated_ops_apply_cleanly_in_order(
        seed in 0u64..1000,
        nodes in 20usize..80,
        count in 1usize..25,
    ) {
        let params = DocParams { nodes, ..Default::default() };
        let base = random_plain_doc(seed, &params);
        let ops = random_ops(seed ^ 1, &base, OpMix::default(), count);
        prop_assert!(ops.len() <= count);
        let mut doc = base.clone();
        for op in &ops {
            op.apply(&mut doc).expect("generated ops apply in sequence");
        }
        doc.check_consistency().unwrap();
    }

    #[test]
    fn tree_edges_form_a_tree(
        depth in 0usize..5,
        fanout in 1usize..4,
    ) {
        let edges = tree_edges(1, TreeShape { depth, fanout });
        // Expected size: fanout + fanout² + … + fanout^depth.
        let expected: usize = (1..=depth).map(|d| fanout.pow(d as u32)).sum();
        prop_assert_eq!(edges.len(), expected);
        // Every child appears exactly once (single parent), parents exist.
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(1u32);
        for (parent, child) in &edges {
            prop_assert!(seen.contains(parent), "parent {parent} introduced before child {child}");
            prop_assert!(seen.insert(*child), "child {child} has two parents");
        }
    }
}
