//! Invocation-tree shapes for the recovery experiments (E5/E6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A regular invocation-tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Depth below the origin (0 = origin only).
    pub depth: usize,
    /// Children per internal node.
    pub fanout: usize,
}

/// Builds the `(parent, child)` edge list of a complete tree with the
/// given shape. Peers are numbered from `origin` upward in BFS order.
pub fn tree_edges(origin: u32, shape: TreeShape) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    let mut next = origin + 1;
    let mut level = vec![origin];
    for _ in 0..shape.depth {
        let mut next_level = Vec::new();
        for &parent in &level {
            for _ in 0..shape.fanout {
                edges.push((parent, next));
                next_level.push(next);
                next += 1;
            }
        }
        level = next_level;
    }
    edges
}

/// Picks a peer at the requested depth of a [`tree_edges`] tree
/// (deterministic via seed). Depth 0 returns the origin.
pub fn peer_at_depth(origin: u32, shape: TreeShape, depth: usize, seed: u64) -> u32 {
    if depth == 0 {
        return origin;
    }
    let edges = tree_edges(origin, shape);
    // BFS levels.
    let mut level = vec![origin];
    for _ in 0..depth.min(shape.depth) {
        let mut next = Vec::new();
        for &p in &level {
            next.extend(edges.iter().filter(|(a, _)| *a == p).map(|(_, c)| *c));
        }
        level = next;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    level[rng.gen_range(0..level.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_sizes() {
        let edges = tree_edges(1, TreeShape { depth: 3, fanout: 2 });
        // 2 + 4 + 8 = 14 edges.
        assert_eq!(edges.len(), 14);
        let edges = tree_edges(1, TreeShape { depth: 2, fanout: 3 });
        assert_eq!(edges.len(), 3 + 9);
        assert!(tree_edges(1, TreeShape { depth: 0, fanout: 3 }).is_empty());
    }

    #[test]
    fn bfs_numbering_contiguous() {
        let edges = tree_edges(1, TreeShape { depth: 2, fanout: 2 });
        let mut ids: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
        ids.sort();
        assert_eq!(ids, (2..=7).collect::<Vec<_>>());
    }

    #[test]
    fn peer_at_depth_levels() {
        let shape = TreeShape { depth: 3, fanout: 2 };
        assert_eq!(peer_at_depth(1, shape, 0, 0), 1);
        let d1 = peer_at_depth(1, shape, 1, 0);
        assert!((2..=3).contains(&d1));
        let d3 = peer_at_depth(1, shape, 3, 5);
        assert!((8..=15).contains(&d3));
        // Deterministic.
        assert_eq!(peer_at_depth(1, shape, 3, 5), peer_at_depth(1, shape, 3, 5));
    }
}
