#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workload generators for the experiments (DESIGN.md §5).
//!
//! Everything is seeded and deterministic:
//!
//! - [`docs`]: random AXML documents (plain trees plus embedded service
//!   calls) and the paper's ATP running example;
//! - [`ops`]: random operation sequences (insert/delete/replace/query
//!   mixes) used by the compensation experiments;
//! - [`trees`]: invocation-tree shapes (depth × fanout) for the recovery
//!   cost sweeps;
//! - the churn workloads for E6 are generated in `axml-bench` directly
//!   from [`trees`] plus seeded disconnect schedules.

pub mod docs;
pub mod ops;
pub mod trees;

pub use docs::{atp_document, random_axml_doc, random_plain_doc, DocParams};
pub use ops::{random_ops, OpMix};
pub use trees::{tree_edges, TreeShape};
