//! Random operation sequences for the compensation experiments (E3).

use axml_query::{Locator, PathExpr, UpdateAction};
use axml_xml::{Document, Fragment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative frequencies of the four operation types.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of inserts.
    pub insert: u32,
    /// Weight of deletes.
    pub delete: u32,
    /// Weight of replaces.
    pub replace: u32,
    /// Weight of queries.
    pub query: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix { insert: 3, delete: 2, replace: 2, query: 3 }
    }
}

impl OpMix {
    fn total(&self) -> u32 {
        self.insert + self.delete + self.replace + self.query
    }
}

/// Generates `count` applicable update actions against (an evolving copy
/// of) `doc`. Each action's location targets element names that exist in
/// the document, so sequences exercise real effects. The returned actions
/// are replayable against any equivalent replica.
pub fn random_ops(seed: u64, doc: &Document, mix: OpMix, count: usize) -> Vec<UpdateAction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow = doc.clone();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        // Pick an existing element name other than the root's.
        let names: Vec<String> =
            shadow.all_nodes().skip(1).filter_map(|n| shadow.name(n).ok().map(|q| q.local.clone())).collect();
        if names.is_empty() {
            break;
        }
        let name = names[rng.gen_range(0..names.len())].clone();
        let root_name = shadow.name(shadow.root()).expect("root").local.clone();
        let path = format!("{root_name}//{name}");
        let total = mix.total().max(1);
        let roll = rng.gen_range(0..total);
        let action = if roll < mix.insert {
            let fresh =
                Fragment::elem_text(format!("n{}", rng.gen_range(0..100)), format!("t{}", rng.gen_range(0..100)));
            UpdateAction::insert(Locator::Path(PathExpr::parse(&path).expect("generated path")), vec![fresh])
        } else if roll < mix.insert + mix.delete {
            UpdateAction::delete(Locator::Path(PathExpr::parse(&path).expect("generated path")))
        } else if roll < mix.insert + mix.delete + mix.replace {
            let fresh = Fragment::elem_text(name.clone(), format!("r{}", rng.gen_range(0..100)));
            UpdateAction::replace(Locator::Path(PathExpr::parse(&path).expect("generated path")), vec![fresh])
        } else {
            UpdateAction::query(Locator::Path(PathExpr::parse(&path).expect("generated path")))
        };
        // Keep only actions that apply cleanly to the evolving state.
        let mut probe = action.clone();
        probe.allow_empty_location = false;
        match probe.apply(&mut shadow) {
            Ok(_) => out.push(action),
            Err(_) => continue,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::{random_plain_doc, DocParams};

    fn doc() -> Document {
        random_plain_doc(5, &DocParams { nodes: 60, ..Default::default() })
    }

    #[test]
    fn generated_ops_apply_in_sequence() {
        let base = doc();
        let ops = random_ops(1, &base, OpMix::default(), 20);
        assert_eq!(ops.len(), 20);
        let mut d = base.clone();
        for op in &ops {
            op.apply(&mut d).expect("generated ops apply");
        }
        d.check_consistency().unwrap();
    }

    #[test]
    fn deterministic() {
        let base = doc();
        let a = random_ops(9, &base, OpMix::default(), 10);
        let b = random_ops(9, &base, OpMix::default(), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_extremes() {
        let base = doc();
        let deletes_only = random_ops(2, &base, OpMix { insert: 0, delete: 1, replace: 0, query: 0 }, 5);
        assert!(deletes_only.iter().all(|a| a.ty == axml_query::ActionType::Delete));
        let queries_only = random_ops(2, &base, OpMix { insert: 0, delete: 0, replace: 0, query: 1 }, 5);
        assert!(queries_only.iter().all(|a| a.ty == axml_query::ActionType::Query));
    }
}
