//! Document generators.

use axml_doc::{ScMode, ServiceCall};
use axml_xml::{Document, Fragment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random document generation.
#[derive(Debug, Clone)]
pub struct DocParams {
    /// Approximate number of element nodes.
    pub nodes: usize,
    /// Maximum children per element.
    pub max_fanout: usize,
    /// Element-name alphabet size (names `e0`, `e1`, …).
    pub name_alphabet: usize,
    /// Probability that a leaf carries a text child.
    pub p_text: f64,
    /// Number of embedded service calls to sprinkle in.
    pub service_calls: usize,
    /// Service-call target URL pool (e.g. `peer://ap2`).
    pub sc_urls: Vec<String>,
}

impl Default for DocParams {
    fn default() -> Self {
        DocParams {
            nodes: 100,
            max_fanout: 5,
            name_alphabet: 8,
            p_text: 0.5,
            service_calls: 0,
            sc_urls: vec!["peer://ap2".into()],
        }
    }
}

/// Generates a random plain XML document (no service calls).
pub fn random_plain_doc(seed: u64, params: &DocParams) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut doc = Document::new("root");
    let root = doc.root();
    let mut frontier = vec![root];
    let mut created = 1usize;
    while created < params.nodes {
        let parent = frontier[rng.gen_range(0..frontier.len())];
        let kids = doc.children(parent).map(|c| c.len()).unwrap_or(0);
        if kids >= params.max_fanout {
            // Densely-filled parent: retire it from the frontier.
            if frontier.len() > 1 {
                let pos = frontier.iter().position(|n| *n == parent).expect("in frontier");
                frontier.swap_remove(pos);
            }
            continue;
        }
        let name = format!("e{}", rng.gen_range(0..params.name_alphabet));
        let elem = doc.create_element(name);
        if rng.gen_bool(params.p_text) {
            let t = doc.create_text(format!("v{}", rng.gen_range(0..1000)));
            doc.append_child(elem, t).expect("fresh element");
        }
        doc.append_child(parent, elem).expect("parent is element");
        frontier.push(elem);
        created += 1;
    }
    doc
}

/// Generates a random AXML document: a plain tree with
/// `params.service_calls` embedded calls placed under random elements.
/// Call `k` targets `sc_urls[k % len]` with method `svc{k}`.
pub fn random_axml_doc(seed: u64, params: &DocParams) -> Document {
    let mut doc = random_plain_doc(seed, params);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let elements: Vec<_> = doc.all_nodes().filter(|n| doc.name(*n).is_ok()).collect();
    for k in 0..params.service_calls {
        let host = elements[rng.gen_range(0..elements.len())];
        let url = &params.sc_urls[k % params.sc_urls.len()];
        let mode = if rng.gen_bool(0.5) { ScMode::Replace } else { ScMode::Merge };
        let call = ServiceCall::build(url.clone(), format!("svc{k}"), mode).with_param("k", k.to_string());
        let frag = call.to_fragment();
        // Seed a previous result so relevance analysis has a hint.
        let frag = frag.with_child(Fragment::elem_text(format!("r{k}"), format!("prev{k}")));
        doc.append_fragment(host, &frag).expect("host is element");
    }
    doc
}

/// The paper's running example, `ATPList.xml` (§3.1), verbatim in
/// structure: both embedded calls, params, and previous results.
pub fn atp_document() -> Document {
    Document::parse(
        r#"<ATPList date="18042005">
            <player rank="1">
                <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
                <citizenship>Swiss</citizenship>
                <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="peer://ap2" methodName="getPoints">
                    <axml:params>
                        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
                    </axml:params>
                    <points>475</points>
                </axml:sc>
                <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear" serviceURL="peer://ap3" methodName="getGrandSlamsWonbyYear">
                    <axml:params>
                        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
                        <axml:param name="year"><axml:value>$year (external value)</axml:value></axml:param>
                    </axml:params>
                    <grandslamswon year="2003">A, W</grandslamswon>
                    <grandslamswon year="2004">A, U</grandslamswon>
                </axml:sc>
            </player>
            <player rank="2">
                <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
                <citizenship>Spanish</citizenship>
                <points>390</points>
            </player>
        </ATPList>"#,
    )
    .expect("ATP document parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_doc_respects_node_budget() {
        let params = DocParams { nodes: 50, ..Default::default() };
        let doc = random_plain_doc(1, &params);
        // Elements ≥ requested; text nodes add some more.
        let elems = doc.all_nodes().filter(|n| doc.name(*n).is_ok()).count();
        assert_eq!(elems, 50);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn plain_doc_deterministic() {
        let params = DocParams::default();
        let a = random_plain_doc(7, &params);
        let b = random_plain_doc(7, &params);
        assert_eq!(a.to_xml(), b.to_xml());
        let c = random_plain_doc(8, &params);
        assert_ne!(a.to_xml(), c.to_xml());
    }

    #[test]
    fn fanout_respected() {
        let params = DocParams { nodes: 200, max_fanout: 3, p_text: 0.0, ..Default::default() };
        let doc = random_plain_doc(3, &params);
        for n in doc.all_nodes() {
            assert!(doc.children(n).map(|c| c.len()).unwrap_or(0) <= 3);
        }
    }

    #[test]
    fn axml_doc_embeds_requested_calls() {
        let params = DocParams {
            nodes: 60,
            service_calls: 5,
            sc_urls: vec!["peer://ap2".into(), "peer://ap3".into()],
            ..Default::default()
        };
        let doc = random_axml_doc(11, &params);
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls.len(), 5);
        assert!(calls.iter().all(|c| !c.result_names(&doc).is_empty()), "previous results seeded");
        doc.check_consistency().unwrap();
    }

    #[test]
    fn atp_matches_paper() {
        let doc = atp_document();
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].method, "getPoints");
        assert_eq!(calls[1].method, "getGrandSlamsWonbyYear");
        assert!(doc.to_xml().contains("Nadal"));
    }
}
