//! Dynamic compensation construction (§3.1).
//!
//! "The data (nodes) required for compensation cannot be predicted in
//! advance and would need to be read from the log at run-time."
//!
//! The log stores primitive [`Effect`]s. Compensation is built by
//! inverting them **in reverse order of execution**:
//!
//! - `Deleted { fragment, parent_path, position }` → an insert of the
//!   logged fragment at the logged parent/position ("the `<location>` and
//!   `<data>` of the compensating insert operation are the parent (/..)
//!   of the deleted node and the result of the `<location>` query of the
//!   delete operation");
//! - `Inserted { path, .. }` → a delete of "the node having the
//!   corresponding ID" — addressed structurally so the same compensating
//!   service can run against a replica.
//!
//! Because effects address nodes by [`axml_query::NodePath`], a compensation built on
//! one peer is a plain list of update actions any peer holding (a replica
//! of) the document can execute — the enabler for §3.2's
//! **peer-independent compensation**.

use axml_query::{Effect, InsertPos, Locator, QueryError, UpdateAction};
use axml_xml::Document;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Builds the compensating actions for a sequence of logged effects.
///
/// The result is ordered ready-to-run: inverse of the **last** effect
/// first.
///
/// ```
/// use axml_core::compensate::{apply_compensation, compensation_for_effects};
/// use axml_query::{Locator, UpdateAction};
/// use axml_xml::Document;
///
/// let mut doc = Document::parse("<r><a>1</a></r>").unwrap();
/// let before = doc.to_xml();
/// let report = UpdateAction::delete(Locator::parse("r/a").unwrap())
///     .apply(&mut doc)
///     .unwrap();
/// let comp = compensation_for_effects(&report.effects);
/// apply_compensation(&mut doc, &comp).unwrap();
/// assert_eq!(doc.to_xml(), before);
/// ```
pub fn compensation_for_effects(effects: &[Effect]) -> Vec<UpdateAction> {
    effects
        .iter()
        .rev()
        .map(|e| match e {
            Effect::Deleted { fragment, parent_path, position } => UpdateAction::insert_at(
                Locator::Node(parent_path.clone()),
                vec![fragment.clone()],
                InsertPos::At(*position),
            ),
            Effect::Inserted { path, .. } => UpdateAction::delete(Locator::Node(path.clone())),
        })
        .collect()
}

/// Applies compensating actions to a document, returning the total node
/// cost. Actions are applied in the given (already-reversed) order.
pub fn apply_compensation(doc: &mut Document, actions: &[UpdateAction]) -> Result<usize, QueryError> {
    let mut cost = 0usize;
    for action in actions {
        let report = action.apply(doc)?;
        cost += report.cost_nodes;
    }
    Ok(cost)
}

/// Compensating-service definitions addressed per peer: what a recovering
/// peer needs to drive compensation for a whole subtree of invocations
/// without the original peers coordinating. Each entry is executable at
/// that peer — or, because actions address nodes structurally, at any
/// peer holding a replica of the documents involved.
pub type CompBundle = Vec<(axml_p2p::PeerId, CompensatingService)>;

/// A compensating-service definition (§3.2): "a service capable of
/// compensating the modifications at APY which occurred as a result of
/// processing the service S". Returned to the invoker along with the
/// invocation results; serializable so it can be shipped to (and executed
/// at) any peer holding the document.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompensatingService {
    /// Compensating actions per document name, each list ready-to-run.
    pub actions: Vec<(String, Vec<UpdateAction>)>,
}

impl CompensatingService {
    /// Builds the definition from per-document effect logs.
    pub fn from_effect_log(log: &[(String, Vec<Effect>)]) -> CompensatingService {
        // Reverse across log entries as well as within each entry.
        let mut actions = Vec::new();
        for (doc, effects) in log.iter().rev() {
            let acts = compensation_for_effects(effects);
            if !acts.is_empty() {
                actions.push((doc.clone(), acts));
            }
        }
        CompensatingService { actions }
    }

    /// True if there is nothing to compensate.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Total number of compensating actions.
    pub fn action_count(&self) -> usize {
        self.actions.iter().map(|(_, a)| a.len()).sum()
    }

    /// Executes the compensation against a set of documents (typically a
    /// peer's repository). Returns the node cost.
    pub fn execute(&self, docs: &mut BTreeMap<String, &mut Document>) -> Result<usize, QueryError> {
        let mut cost = 0usize;
        for (name, acts) in &self.actions {
            let doc =
                docs.get_mut(name).ok_or_else(|| QueryError::PathUnresolved(format!("document {name} not present")))?;
            cost += apply_compensation(doc, acts)?;
        }
        Ok(cost)
    }

    /// Merges another definition to run **before** this one finishes —
    /// i.e. `other`'s actions are appended (they compensate earlier work).
    pub fn then(mut self, other: CompensatingService) -> CompensatingService {
        self.actions.extend(other.actions);
        self
    }
}

/// The classical pre-declared compensation model (the baseline the paper
/// argues is infeasible for AXML).
///
/// A static compensator is configured **once, at service-definition
/// time**, with a fixed inverse action per operation — "current
/// compensation based models assume the existence of a pre-defined
/// compensating operation (for each operation)". It cannot see the log,
/// so for operations whose effects depend on run-time materialization
/// (lazy queries!) it either has *no* inverse or an inverse computed from
/// stale assumptions. Experiment E3 quantifies the failure.
#[derive(Debug, Clone, Default)]
pub struct StaticCompensator {
    inverses: BTreeMap<String, Vec<UpdateAction>>,
}

impl StaticCompensator {
    /// An empty compensator.
    pub fn new() -> StaticCompensator {
        StaticCompensator::default()
    }

    /// Pre-declares the inverse for operation `op_label`.
    pub fn declare(&mut self, op_label: impl Into<String>, inverse: Vec<UpdateAction>) {
        self.inverses.insert(op_label.into(), inverse);
    }

    /// The pre-declared inverse for an operation, if any. Note what is
    /// *not* here: no access to the run-time log.
    pub fn inverse_of(&self, op_label: &str) -> Option<&[UpdateAction]> {
        self.inverses.get(op_label).map(Vec::as_slice)
    }

    /// Compensates a sequence of executed operation labels (reverse
    /// order). Operations without a declared inverse are skipped — the
    /// classical model silently under-compensates them. Returns
    /// `(cost, missing)` where `missing` counts skipped operations.
    pub fn compensate(&self, doc: &mut Document, executed_ops: &[String]) -> (usize, usize) {
        let mut cost = 0usize;
        let mut missing = 0usize;
        for op in executed_ops.iter().rev() {
            match self.inverse_of(op) {
                None => missing += 1,
                Some(actions) => {
                    for a in actions {
                        // Tolerate failures: the stale inverse may no longer
                        // apply (that is the point of E3).
                        let mut tolerant = a.clone();
                        tolerant.allow_empty_location = true;
                        if let Ok(report) = tolerant.apply(doc) {
                            cost += report.cost_nodes;
                        }
                    }
                }
            }
        }
        (cost, missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::{Locator, PathExpr};
    use axml_xml::{equivalent_ordered, Fragment};

    fn atp() -> Document {
        Document::parse(
            r#"<ATPList>
                <player rank="1"><name><lastname>Federer</lastname></name><citizenship>Swiss</citizenship></player>
                <player rank="2"><name><lastname>Nadal</lastname></name><citizenship>Spanish</citizenship></player>
            </ATPList>"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_delete_compensation() {
        let mut doc = atp();
        let before = doc.to_xml();
        let del = UpdateAction::delete(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
        );
        let report = del.apply(&mut doc).unwrap();
        let comp = compensation_for_effects(&report.effects);
        assert_eq!(comp.len(), 1);
        apply_compensation(&mut doc, &comp).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn paper_replace_compensation() {
        // §3.1: replace Nadal's citizenship with USA; compensation is the
        // decomposed delete+insert run in reverse, restoring "Spanish".
        let mut doc = atp();
        let before = doc.to_xml();
        let rep = UpdateAction::replace(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal;").unwrap(),
            vec![Fragment::elem_text("citizenship", "USA")],
        );
        let report = rep.apply(&mut doc).unwrap();
        assert!(doc.to_xml().contains("USA"));
        let comp = compensation_for_effects(&report.effects);
        assert_eq!(comp.len(), 2, "delete the inserted USA node, re-insert Spanish");
        apply_compensation(&mut doc, &comp).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn insert_compensated_by_id_delete() {
        let mut doc = atp();
        let before = doc.to_xml();
        let ins = UpdateAction::insert(
            Locator::Path(PathExpr::parse("ATPList/player[@rank=1]").unwrap()),
            vec![Fragment::elem_text("points", "475")],
        );
        let report = ins.apply(&mut doc).unwrap();
        let comp = compensation_for_effects(&report.effects);
        assert!(matches!(&comp[0].location, Locator::Node(_)), "compensation addresses the unique ID");
        apply_compensation(&mut doc, &comp).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn multi_op_compensation_reverses_order() {
        let mut doc = atp();
        let before = doc.to_xml();
        let mut all_effects = Vec::new();
        // Op 1: delete Federer's citizenship.
        let del = UpdateAction::delete(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
        );
        all_effects.extend(del.apply(&mut doc).unwrap().effects);
        // Op 2: insert points under the same player.
        let ins = UpdateAction::insert(
            Locator::Path(PathExpr::parse("ATPList/player[@rank=1]").unwrap()),
            vec![Fragment::elem_text("points", "475")],
        );
        all_effects.extend(ins.apply(&mut doc).unwrap().effects);
        // Op 3: delete the second player entirely.
        let del2 = UpdateAction::delete(Locator::Path(PathExpr::parse("ATPList/player[@rank=2]").unwrap()));
        all_effects.extend(del2.apply(&mut doc).unwrap().effects);

        let comp = compensation_for_effects(&all_effects);
        apply_compensation(&mut doc, &comp).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn compensating_service_executes_on_replica() {
        // Effects captured on one copy compensate an identical replica.
        let mut primary = atp();
        let mut replica = atp();
        let del = UpdateAction::delete(Locator::Path(PathExpr::parse("ATPList/player[@rank=2]").unwrap()));
        let report = del.apply(&mut primary).unwrap();
        // The replica saw the same logical update (replay).
        del.apply(&mut replica).unwrap();
        assert_eq!(primary.to_xml(), replica.to_xml());

        let cs = CompensatingService::from_effect_log(&[("atp".into(), report.effects)]);
        assert!(!cs.is_empty());
        assert_eq!(cs.action_count(), 1);
        let mut docs: BTreeMap<String, &mut Document> = BTreeMap::new();
        docs.insert("atp".into(), &mut replica);
        cs.execute(&mut docs).unwrap();
        assert!(equivalent_ordered(&replica, &atp()), "replica restored by peer-independent compensation");
    }

    #[test]
    fn compensating_service_missing_doc_errors() {
        let mut doc = atp();
        let del = UpdateAction::delete(Locator::Path(PathExpr::parse("ATPList/player[@rank=2]").unwrap()));
        let report = del.apply(&mut doc).unwrap();
        let cs = CompensatingService::from_effect_log(&[("atp".into(), report.effects)]);
        let mut docs: BTreeMap<String, &mut Document> = BTreeMap::new();
        assert!(cs.execute(&mut docs).is_err());
    }

    #[test]
    fn compensating_service_then_chains() {
        let a = CompensatingService { actions: vec![("d1".into(), vec![])] };
        let b = CompensatingService { actions: vec![("d2".into(), vec![])] };
        let c = a.then(b);
        assert_eq!(c.actions.len(), 2);
        assert_eq!(c.actions[0].0, "d1");
    }

    #[test]
    fn empty_log_compensates_to_nothing() {
        let cs = CompensatingService::from_effect_log(&[("atp".into(), vec![])]);
        assert!(cs.is_empty());
        assert_eq!(compensation_for_effects(&[]).len(), 0);
    }

    #[test]
    fn static_compensator_misses_undeclared_ops() {
        let mut doc = atp();
        let sc = StaticCompensator::new();
        let (cost, missing) = sc.compensate(&mut doc, &["op1".into(), "op2".into()]);
        assert_eq!(cost, 0);
        assert_eq!(missing, 2);
    }

    #[test]
    fn static_compensator_applies_declared_inverse() {
        // A fixed delete→insert pair *declared in advance* works only when
        // the run-time state matches the declaration-time assumption.
        let mut doc = atp();
        let before = doc.to_xml();
        let del = UpdateAction::delete(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
        );
        let mut sc = StaticCompensator::new();
        // Declared statically: "the inverse of deleteCitizenship is insert
        // <citizenship>Swiss</citizenship> under Federer's player".
        sc.declare(
            "deleteCitizenship",
            vec![UpdateAction::insert(
                Locator::parse("Select p from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
                vec![Fragment::elem_text("citizenship", "Swiss")],
            )],
        );
        del.apply(&mut doc).unwrap();
        let (cost, missing) = sc.compensate(&mut doc, &["deleteCitizenship".into()]);
        assert_eq!(missing, 0);
        assert!(cost > 0);
        // Here the assumption held, so the doc is equivalent (order may
        // differ: static inverse appends rather than restoring position).
        assert!(axml_xml::equivalent_unordered(&doc, &Document::parse(&before).unwrap()));
    }

    #[test]
    fn static_compensator_wrong_after_state_change() {
        // The documented failure: the citizenship changed at run time, the
        // static inverse restores the stale value.
        let mut doc = atp();
        let mut sc = StaticCompensator::new();
        sc.declare(
            "deleteCitizenship",
            vec![UpdateAction::insert(
                Locator::parse("Select p from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
                vec![Fragment::elem_text("citizenship", "Swiss")],
            )],
        );
        // Run-time surprise: the citizenship was updated to Monaco before
        // the delete (e.g. by a materialized service call).
        UpdateAction::replace(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
            vec![Fragment::elem_text("citizenship", "Monaco")],
        )
        .apply(&mut doc)
        .unwrap();
        let reference = doc.to_xml(); // the state compensation should restore
        UpdateAction::delete(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
        )
        .apply(&mut doc)
        .unwrap();
        sc.compensate(&mut doc, &["deleteCitizenship".into()]);
        assert!(doc.to_xml().contains("Swiss"), "static inverse restored the stale value");
        assert!(!axml_xml::equivalent_unordered(&doc, &Document::parse(&reference).unwrap()), "which is wrong");
    }
}
