//! Transaction contexts and their logs.
//!
//! "On submission of a transaction TA at a peer AP1 (its origin peer), the
//! peer creates a transaction context TCA1. The transaction context,
//! managed by the transaction manager, is a data structure which
//! encapsulates the transaction id with all the information required for
//! concurrency control, commit and recovery of the corresponding
//! transaction." (§3.2)
//!
//! Each participant peer keeps its own context (`TCA5` at AP5, …): its
//! local effect log (feeding dynamic compensation), the child invocations
//! it issued, the parent that invoked it, and the transaction's
//! active-peer list (chaining, §3.3).

use crate::chain::ActiveList;
use crate::compensate::{compensation_for_effects, CompBundle, CompensatingService};
use crate::ids::{InvocationId, TxnId};
use axml_p2p::PeerId;
use axml_query::{Effect, UpdateAction};
use serde::{Deserialize, Serialize};

/// Lifecycle of a transaction context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnState {
    /// Work in progress.
    Active,
    /// Commit received/decided; effects are final.
    Committed,
    /// Aborted; local effects have been compensated.
    Aborted,
}

/// One entry in a context's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Local document effects from one operation (update service body,
    /// materialization, …).
    Local {
        /// Document name in the peer's repository.
        doc: String,
        /// Operation label (diagnostics and the static-baseline key).
        op_label: String,
        /// Primitive effects, in application order.
        effects: Vec<Effect>,
    },
    /// A service invocation issued to another peer.
    Remote {
        /// The invoked peer.
        child: PeerId,
        /// Invocation id.
        inv: InvocationId,
        /// Method name.
        method: String,
        /// True once the result arrived.
        completed: bool,
        /// The per-peer compensating-service bundle returned with the
        /// result (peer-independent mode; empty otherwise).
        comp: CompBundle,
    },
}

/// The outcome of a finished transaction, as seen by its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnOutcome {
    /// The transaction.
    pub txn: TxnId,
    /// True if committed, false if aborted.
    pub committed: bool,
    /// Submission time.
    pub started_at: u64,
    /// Resolution time.
    pub resolved_at: u64,
}

/// A per-peer transaction context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionContext {
    /// The transaction id.
    pub txn: TxnId,
    /// Current state.
    pub state: TxnState,
    /// The invoker and the invocation this context serves (`None` at the
    /// origin).
    pub parent: Option<(PeerId, InvocationId)>,
    /// The log.
    pub log: Vec<LogRecord>,
    /// The active-peer list as this peer last saw it.
    pub chain: ActiveList,
    /// Creation time.
    pub created_at: u64,
    /// Resolution time, once terminal.
    pub resolved_at: Option<u64>,
}

impl TransactionContext {
    /// Creates an active context.
    pub fn new(txn: TxnId, parent: Option<(PeerId, InvocationId)>, chain: ActiveList, now: u64) -> Self {
        TransactionContext {
            txn,
            state: TxnState::Active,
            parent,
            log: Vec::new(),
            chain,
            created_at: now,
            resolved_at: None,
        }
    }

    /// Appends local effects.
    pub fn record_local(&mut self, doc: impl Into<String>, op_label: impl Into<String>, effects: Vec<Effect>) {
        if !effects.is_empty() {
            self.log.push(LogRecord::Local { doc: doc.into(), op_label: op_label.into(), effects });
        }
    }

    /// Records an issued invocation.
    pub fn record_remote(&mut self, child: PeerId, inv: InvocationId, method: impl Into<String>) {
        self.log.push(LogRecord::Remote { child, inv, method: method.into(), completed: false, comp: Vec::new() });
    }

    /// Marks an invocation completed, storing the compensating-service
    /// bundle returned with it (empty when peer-independent mode is off).
    pub fn complete_remote(&mut self, inv: InvocationId, comp: CompBundle) -> bool {
        for rec in self.log.iter_mut() {
            if let LogRecord::Remote { inv: i, completed, comp: c, .. } = rec {
                if *i == inv {
                    *completed = true;
                    *c = comp;
                    return true;
                }
            }
        }
        false
    }

    /// The peers whose services this context invoked ("participant
    /// peers"), in invocation order, deduplicated.
    pub fn invoked_peers(&self) -> Vec<PeerId> {
        let mut out = Vec::new();
        for rec in &self.log {
            if let LogRecord::Remote { child, .. } = rec {
                if !out.contains(child) {
                    out.push(*child);
                }
            }
        }
        out
    }

    /// Local effects grouped per document, in log order.
    pub fn local_effects(&self) -> Vec<(String, Vec<Effect>)> {
        self.log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Local { doc, effects, .. } => Some((doc.clone(), effects.clone())),
                LogRecord::Remote { .. } => None,
            })
            .collect()
    }

    /// The compensating service for **this peer's own** modifications —
    /// what this peer returns along with its results in peer-independent
    /// mode.
    pub fn own_compensation(&self) -> CompensatingService {
        CompensatingService::from_effect_log(&self.local_effects())
    }

    /// Like [`Self::own_compensation`], but each compensating batch keeps
    /// the forward log index (0-based, log order) of the `Local` record
    /// it undoes, newest first — the shape the online protocol monitor
    /// checks §3.1's reverse-order rule against. Records whose effects
    /// derive no compensating action are skipped, matching
    /// [`CompensatingService::from_effect_log`]; concatenating the
    /// batches in the returned order reproduces `own_compensation()`
    /// exactly.
    pub fn own_compensation_indexed(&self) -> Vec<(u64, String, Vec<UpdateAction>)> {
        self.local_effects()
            .iter()
            .enumerate()
            .rev()
            .map(|(i, (doc, effects))| (i as u64, doc.clone(), compensation_for_effects(effects)))
            .filter(|(_, _, actions)| !actions.is_empty())
            .collect()
    }

    /// Compensating services collected from completed children, newest
    /// first (compensation runs in reverse execution order).
    pub fn child_compensations(&self) -> CompBundle {
        let mut out = Vec::new();
        for r in self.log.iter().rev() {
            if let LogRecord::Remote { completed: true, comp, .. } = r {
                out.extend(comp.iter().filter(|(_, c)| !c.is_empty()).cloned());
            }
        }
        out
    }

    /// Records the compensating bundle of an orphaned peer (scenario (b):
    /// a grandchild re-routed its results to us because its parent
    /// disconnected — its work must still be compensated on abort).
    pub fn record_orphan_comp(&mut self, from: PeerId, inv: InvocationId, method: impl Into<String>, comp: CompBundle) {
        self.log.push(LogRecord::Remote { child: from, inv, method: method.into(), completed: true, comp });
    }

    /// True once committed or aborted.
    pub fn is_terminal(&self) -> bool {
        !matches!(self.state, TxnState::Active)
    }

    /// Transitions to a terminal state, recording the time. No-op if
    /// already terminal (first decision wins).
    pub fn resolve(&mut self, state: TxnState, now: u64) {
        if !self.is_terminal() {
            self.state = state;
            self.resolved_at = Some(now);
        }
    }

    /// Count of outstanding (incomplete) remote invocations.
    pub fn pending_remote(&self) -> usize {
        self.log.iter().filter(|r| matches!(r, LogRecord::Remote { completed: false, .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::{Locator, UpdateAction};
    use axml_xml::{Document, Fragment};

    fn ctx() -> TransactionContext {
        let txn = TxnId::new(PeerId(1), 0);
        TransactionContext::new(txn, None, ActiveList::new(PeerId(1), true), 5)
    }

    #[test]
    fn lifecycle() {
        let mut c = ctx();
        assert_eq!(c.state, TxnState::Active);
        assert!(!c.is_terminal());
        c.resolve(TxnState::Committed, 10);
        assert!(c.is_terminal());
        assert_eq!(c.resolved_at, Some(10));
        // First decision wins.
        c.resolve(TxnState::Aborted, 20);
        assert_eq!(c.state, TxnState::Committed);
        assert_eq!(c.resolved_at, Some(10));
    }

    #[test]
    fn remote_bookkeeping() {
        let mut c = ctx();
        let i1 = InvocationId::new(PeerId(1), 0);
        let i2 = InvocationId::new(PeerId(1), 1);
        c.record_remote(PeerId(2), i1, "S2");
        c.record_remote(PeerId(3), i2, "S3");
        assert_eq!(c.pending_remote(), 2);
        assert!(c.complete_remote(i1, Vec::new()));
        assert_eq!(c.pending_remote(), 1);
        assert!(!c.complete_remote(InvocationId::new(PeerId(9), 9), Vec::new()));
        assert_eq!(c.invoked_peers(), vec![PeerId(2), PeerId(3)]);
    }

    #[test]
    fn own_compensation_round_trips() {
        let mut doc = Document::parse("<r><a>1</a></r>").unwrap();
        let before = doc.to_xml();
        let mut c = ctx();
        let rep = UpdateAction::replace(Locator::parse("r/a").unwrap(), vec![Fragment::elem_text("a", "2")])
            .apply(&mut doc)
            .unwrap();
        c.record_local("d", "setA", rep.effects);
        let comp = c.own_compensation();
        assert!(!comp.is_empty());
        let mut docs = std::collections::BTreeMap::new();
        docs.insert("d".to_string(), &mut doc);
        comp.execute(&mut docs).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn indexed_compensation_matches_own_compensation() {
        let mut doc = Document::parse("<r><a>1</a><b>2</b></r>").unwrap();
        let mut c = ctx();
        let r1 = UpdateAction::replace(Locator::parse("r/a").unwrap(), vec![Fragment::elem_text("a", "x")])
            .apply(&mut doc)
            .unwrap();
        c.record_local("d", "setA", r1.effects);
        let r2 = UpdateAction::replace(Locator::parse("r/b").unwrap(), vec![Fragment::elem_text("b", "y")])
            .apply(&mut doc)
            .unwrap();
        c.record_local("d", "setB", r2.effects);
        let indexed = c.own_compensation_indexed();
        // Newest first: the second record's batch leads, indices descend.
        assert_eq!(indexed.len(), 2);
        assert_eq!(indexed[0].0, 1);
        assert_eq!(indexed[1].0, 0);
        // Concatenating the batches in order reproduces own_compensation.
        let flat: Vec<(String, Vec<UpdateAction>)> =
            indexed.into_iter().map(|(_, doc, actions)| (doc, actions)).collect();
        assert_eq!(flat, c.own_compensation().actions);
    }

    #[test]
    fn empty_effects_not_logged() {
        let mut c = ctx();
        c.record_local("d", "noop", vec![]);
        assert!(c.log.is_empty());
        assert!(c.own_compensation().is_empty());
    }

    #[test]
    fn child_compensations_newest_first() {
        let mut c = ctx();
        let i1 = InvocationId::new(PeerId(1), 0);
        let i2 = InvocationId::new(PeerId(1), 1);
        c.record_remote(PeerId(2), i1, "S2");
        c.record_remote(PeerId(3), i2, "S3");
        let mk = |peer: PeerId, doc: &str| {
            vec![(
                peer,
                CompensatingService {
                    actions: vec![(doc.to_string(), vec![UpdateAction::delete(Locator::parse("node:/0").unwrap())])],
                },
            )]
        };
        c.complete_remote(i1, mk(PeerId(2), "d2"));
        c.complete_remote(i2, mk(PeerId(3), "d3"));
        let comps = c.child_compensations();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].0, PeerId(3), "newest first");
        assert_eq!(comps[1].0, PeerId(2));
    }

    #[test]
    fn empty_child_compensations_skipped() {
        let mut c = ctx();
        let i1 = InvocationId::new(PeerId(1), 0);
        c.record_remote(PeerId(2), i1, "S2");
        c.complete_remote(i1, vec![(PeerId(2), CompensatingService::default())]);
        assert!(c.child_compensations().is_empty());
    }
}
