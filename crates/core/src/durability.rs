//! Durability: a write-ahead journal for transaction contexts.
//!
//! The paper assumes "the transaction context … encapsulates … all the
//! information required for … recovery" but leaves persistence to the
//! platform. This module makes contexts durable: every state change is an
//! appendable [`JournalEntry`], encoded as one JSON line, and a crashed
//! peer rebuilds its contexts by [`replay`]ing the journal. Recovery
//! follows **presumed abort**: any context that is not terminal after
//! replay is in doubt, so its logged effects are compensated — using the
//! same dynamic compensation machinery as live aborts (§3.1).

use crate::chain::ActiveList;
use crate::compensate::CompBundle;
use crate::context::{LogRecord, TransactionContext, TxnState};
use crate::ids::{InvocationId, TxnId};
use axml_doc::Repository;
use axml_p2p::PeerId;
use axml_query::Effect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One durable event in a transaction's life at one peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// The context was created.
    Begin {
        /// The transaction.
        txn: TxnId,
        /// Invoker and served invocation (`None` at the origin).
        parent: Option<(PeerId, InvocationId)>,
        /// The chain known at creation.
        chain: ActiveList,
        /// Creation time.
        at: u64,
    },
    /// Local document effects were applied.
    Local {
        /// The transaction.
        txn: TxnId,
        /// Document name.
        doc: String,
        /// Operation label.
        op_label: String,
        /// The effects.
        effects: Vec<Effect>,
    },
    /// A remote invocation was issued.
    RemoteInvoked {
        /// The transaction.
        txn: TxnId,
        /// Invoked peer.
        child: PeerId,
        /// Invocation id.
        inv: InvocationId,
        /// Method.
        method: String,
    },
    /// A remote invocation completed.
    RemoteCompleted {
        /// The transaction.
        txn: TxnId,
        /// Invocation id.
        inv: InvocationId,
        /// Returned compensating bundle (peer-independent mode).
        comp: CompBundle,
    },
    /// The context reached a terminal state.
    Resolved {
        /// The transaction.
        txn: TxnId,
        /// `true` = committed, `false` = aborted.
        committed: bool,
        /// Resolution time.
        at: u64,
    },
}

impl JournalEntry {
    /// The transaction this entry belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            JournalEntry::Begin { txn, .. }
            | JournalEntry::Local { txn, .. }
            | JournalEntry::RemoteInvoked { txn, .. }
            | JournalEntry::RemoteCompleted { txn, .. }
            | JournalEntry::Resolved { txn, .. } => *txn,
        }
    }
}

/// Errors from decoding or replaying a journal.
#[derive(Debug)]
pub enum JournalError {
    /// A line was not valid JSON for a [`JournalEntry`].
    Decode {
        /// 1-based line number.
        line: usize,
        /// The serde error.
        source: serde_json::Error,
    },
    /// An entry referenced a transaction with no `Begin`.
    NoBegin(TxnId),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Decode { line, source } => write!(f, "bad journal line {line}: {source}"),
            JournalError::NoBegin(t) => write!(f, "journal entry for {t} precedes its Begin"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Extracts the full journal of an existing context (what a peer appends
/// incrementally while running; offered whole for snapshotting).
pub fn journal_of(tc: &TransactionContext) -> Vec<JournalEntry> {
    let mut out =
        vec![JournalEntry::Begin { txn: tc.txn, parent: tc.parent, chain: tc.chain.clone(), at: tc.created_at }];
    for rec in &tc.log {
        match rec {
            LogRecord::Local { doc, op_label, effects } => out.push(JournalEntry::Local {
                txn: tc.txn,
                doc: doc.clone(),
                op_label: op_label.clone(),
                effects: effects.clone(),
            }),
            LogRecord::Remote { child, inv, method, completed, comp } => {
                out.push(JournalEntry::RemoteInvoked { txn: tc.txn, child: *child, inv: *inv, method: method.clone() });
                if *completed {
                    out.push(JournalEntry::RemoteCompleted { txn: tc.txn, inv: *inv, comp: comp.clone() });
                }
            }
        }
    }
    if tc.is_terminal() {
        out.push(JournalEntry::Resolved {
            txn: tc.txn,
            committed: tc.state == TxnState::Committed,
            at: tc.resolved_at.unwrap_or(tc.created_at),
        });
    }
    out
}

/// Rebuilds contexts from a journal (one peer's entries, any number of
/// transactions interleaved).
///
/// Replay is **idempotent**: an exact duplicate of an already-seen entry
/// is skipped, so replaying the same journal twice — or a journal whose
/// tail entry was doubled by a torn-write retry — yields identical
/// contexts. Exact-match dedup is sound because distinct events always
/// differ in some field: re-begins carry a later `at`, invocations have
/// unique ids, and repeated effects on the same document differ in their
/// recorded old values.
pub fn replay(entries: &[JournalEntry]) -> Result<Vec<TransactionContext>, JournalError> {
    let mut contexts: Vec<TransactionContext> = Vec::new();
    let mut seen: Vec<&JournalEntry> = Vec::new();
    // Last match, not first: a transaction whose context resolved and was
    // later legitimately re-begun (forward recovery re-invokes an aborted
    // participant) journals a second `Begin`, and entries after it belong
    // to the newer incarnation.
    let find = |contexts: &mut Vec<TransactionContext>, txn: TxnId| -> Option<usize> {
        contexts.iter().rposition(|c| c.txn == txn)
    };
    for e in entries {
        if seen.contains(&e) {
            continue;
        }
        seen.push(e);
        match e {
            JournalEntry::Begin { txn, parent, chain, at } => {
                contexts.push(TransactionContext::new(*txn, *parent, chain.clone(), *at));
            }
            JournalEntry::Local { txn, doc, op_label, effects } => {
                let i = find(&mut contexts, *txn).ok_or(JournalError::NoBegin(*txn))?;
                contexts[i].record_local(doc.clone(), op_label.clone(), effects.clone());
            }
            JournalEntry::RemoteInvoked { txn, child, inv, method } => {
                let i = find(&mut contexts, *txn).ok_or(JournalError::NoBegin(*txn))?;
                contexts[i].record_remote(*child, *inv, method.clone());
            }
            JournalEntry::RemoteCompleted { txn, inv, comp } => {
                let i = find(&mut contexts, *txn).ok_or(JournalError::NoBegin(*txn))?;
                contexts[i].complete_remote(*inv, comp.clone());
            }
            JournalEntry::Resolved { txn, committed, at } => {
                let i = find(&mut contexts, *txn).ok_or(JournalError::NoBegin(*txn))?;
                let state = if *committed { TxnState::Committed } else { TxnState::Aborted };
                contexts[i].resolve(state, *at);
            }
        }
    }
    Ok(contexts)
}

/// Encodes entries as JSON lines.
pub fn encode(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&serde_json::to_string(e).expect("journal entries are serializable"));
        out.push('\n');
    }
    out
}

/// Decodes JSON lines into entries (empty lines ignored).
pub fn decode(text: &str) -> Result<Vec<JournalEntry>, JournalError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(line).map_err(|source| JournalError::Decode { line: i + 1, source })?);
    }
    Ok(out)
}

/// Counters describing a durability sink's stable-storage activity.
/// Surfaced through the metrics snapshot as `wal.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Segments closed because the size threshold was reached.
    pub segments_rotated: u64,
    /// Payload + frame-header bytes durably appended.
    pub bytes_appended: u64,
    /// Entries recovered from stable storage at the last crash-restart.
    pub recovery_entries: u64,
    /// Torn tails (truncated/corrupt final frames) discarded at recovery.
    pub torn_tails_discarded: u64,
    /// Appends that reported a storage fault to the caller.
    pub append_faults: u64,
}

/// Stable storage for a peer's journal.
///
/// The peer writes every [`JournalEntry`] through its sink *before*
/// letting the entry's consequences escape (effects visible, messages
/// sent). A sink may refuse an append (storage fault); the caller must
/// then roll back whatever the entry was about to make durable. On
/// crash-restart the sink is the **sole** source of surviving entries —
/// the peer rebuilds its contexts from what the sink returns, nothing
/// else.
pub trait DurabilitySink: fmt::Debug + Send {
    /// Appends one entry. Returns `false` on a storage fault: the entry
    /// is not durable and its consequences must not escape.
    fn append(&mut self, entry: &JournalEntry) -> bool;

    /// Appends a decision record or cross-peer obligation, forcing it
    /// through transient storage faults (bounded deterministic retry,
    /// then a fault-free write). Decision records must never be lost:
    /// a dropped `Resolved` would re-compensate on the next crash, a
    /// dropped `RemoteInvoked` would orphan a child subtree.
    fn append_forced(&mut self, entry: &JournalEntry);

    /// Simulates a crash followed by a restart: volatile state (buffers,
    /// open writers) is dropped and the entries surviving on stable
    /// storage are recovered and returned, oldest first.
    fn crash_restart(&mut self) -> Vec<JournalEntry>;

    /// Activity counters.
    fn stats(&self) -> WalStats;
}

/// The default sink: perfectly durable in-memory storage. Keeps the
/// pre-WAL behavior (and determinism) — every append succeeds, and a
/// crash-restart returns everything ever appended.
#[derive(Debug, Default)]
pub struct MemorySink {
    entries: Vec<JournalEntry>,
    stats: WalStats,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DurabilitySink for MemorySink {
    fn append(&mut self, entry: &JournalEntry) -> bool {
        self.stats.bytes_appended += serde_json::to_string(entry).map(|s| s.len() as u64).unwrap_or(0);
        self.entries.push(entry.clone());
        true
    }

    fn append_forced(&mut self, entry: &JournalEntry) {
        self.append(entry);
    }

    fn crash_restart(&mut self) -> Vec<JournalEntry> {
        self.stats.recovery_entries = self.entries.len() as u64;
        self.entries.clone()
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

/// The outcome of crash recovery at one peer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Contexts found in doubt (non-terminal) and presumed aborted.
    pub presumed_aborted: Vec<TxnId>,
    /// Contexts found already terminal (nothing to do).
    pub already_terminal: Vec<TxnId>,
    /// Total compensation cost in nodes.
    pub comp_cost_nodes: usize,
}

/// Crash recovery (presumed abort): every in-doubt context's own effects
/// are compensated against the repository, and the context is marked
/// aborted. Committed/aborted contexts are left untouched.
pub fn recover_in_doubt(contexts: &mut [TransactionContext], repo: &mut Repository, now: u64) -> RecoveryOutcome {
    let mut outcome = RecoveryOutcome::default();
    for tc in contexts.iter_mut() {
        if tc.is_terminal() {
            outcome.already_terminal.push(tc.txn);
            continue;
        }
        let comp = tc.own_compensation();
        for (doc, actions) in &comp.actions {
            if let Some(document) = repo.get_mut(doc) {
                if let Ok(cost) = crate::compensate::apply_compensation(document, actions) {
                    outcome.comp_cost_nodes += cost;
                }
            }
        }
        tc.resolve(TxnState::Aborted, now);
        outcome.presumed_aborted.push(tc.txn);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::{Locator, UpdateAction};
    use axml_xml::Fragment;

    fn sample_context(resolve: Option<TxnState>) -> (TransactionContext, Repository) {
        let txn = TxnId::new(PeerId(3), 0);
        let mut chain = ActiveList::new(PeerId(1), true);
        chain.add_invocation(PeerId(1), PeerId(3), false);
        let mut tc = TransactionContext::new(txn, Some((PeerId(1), InvocationId::new(PeerId(1), 0))), chain, 7);
        let mut repo = Repository::new();
        repo.put_xml("d3", "<d><slot>initial</slot></d>").unwrap();
        // One local effect: replace the slot.
        let action =
            UpdateAction::replace(Locator::parse("d/slot").unwrap(), vec![Fragment::elem_text("slot", "written")]);
        let report = action.apply(repo.get_mut("d3").unwrap()).unwrap();
        tc.record_local("d3", "S3", report.effects);
        // One remote invocation, completed with a bundle.
        let inv = InvocationId::new(PeerId(3), 0);
        tc.record_remote(PeerId(6), inv, "S6");
        tc.complete_remote(inv, vec![(PeerId(6), crate::compensate::CompensatingService::default())]);
        if let Some(state) = resolve {
            tc.resolve(state, 42);
        }
        (tc, repo)
    }

    #[test]
    fn journal_roundtrip_reconstructs_context() {
        for state in [None, Some(TxnState::Committed), Some(TxnState::Aborted)] {
            let (tc, _repo) = sample_context(state);
            let journal = journal_of(&tc);
            let text = encode(&journal);
            let decoded = decode(&text).unwrap();
            assert_eq!(decoded, journal);
            let rebuilt = replay(&decoded).unwrap();
            assert_eq!(rebuilt.len(), 1);
            assert_eq!(rebuilt[0], tc, "state={state:?}");
        }
    }

    #[test]
    fn interleaved_transactions_replay() {
        let (tc1, _) = sample_context(Some(TxnState::Committed));
        let (mut tc2, _) = sample_context(None);
        tc2.txn = TxnId::new(PeerId(3), 1);
        // Interleave the two journals entry-by-entry.
        let j1 = journal_of(&tc1);
        let j2 = journal_of(&tc2);
        let mut mixed = Vec::new();
        let mut a = j1.into_iter();
        let mut b = j2.into_iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => break,
                (x, y) => {
                    mixed.extend(x);
                    mixed.extend(y);
                }
            }
        }
        let rebuilt = replay(&mixed).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert!(rebuilt.iter().any(|c| c == &tc1));
        assert!(rebuilt.iter().any(|c| c == &tc2));
    }

    #[test]
    fn crash_recovery_presumes_abort_and_compensates() {
        // Crash with an in-doubt context: the written slot must revert.
        let (tc, mut repo) = sample_context(None);
        assert!(repo.get("d3").unwrap().to_xml().contains("written"));
        let journal = journal_of(&tc);
        // …crash; reboot from the journal…
        let mut contexts = replay(&decode(&encode(&journal)).unwrap()).unwrap();
        let outcome = recover_in_doubt(&mut contexts, &mut repo, 99);
        assert_eq!(outcome.presumed_aborted, vec![tc.txn]);
        assert!(outcome.comp_cost_nodes > 0);
        assert!(repo.get("d3").unwrap().to_xml().contains("initial"), "{}", repo.get("d3").unwrap().to_xml());
        assert_eq!(contexts[0].state, TxnState::Aborted);
    }

    #[test]
    fn crash_recovery_leaves_terminal_contexts_alone() {
        let (tc, mut repo) = sample_context(Some(TxnState::Committed));
        let before = repo.get("d3").unwrap().to_xml();
        let mut contexts = vec![tc.clone()];
        let outcome = recover_in_doubt(&mut contexts, &mut repo, 99);
        assert_eq!(outcome.already_terminal, vec![tc.txn]);
        assert!(outcome.presumed_aborted.is_empty());
        assert_eq!(repo.get("d3").unwrap().to_xml(), before, "committed effects are durable");
    }

    #[test]
    fn decode_rejects_garbage() {
        let err = decode("not json\n").unwrap_err();
        assert!(matches!(err, JournalError::Decode { line: 1, .. }), "{err}");
        // Line numbers point at the culprit.
        let good = encode(&journal_of(&sample_context(None).0));
        let mixed = format!("{good}broken line\n");
        let err = decode(&mixed).unwrap_err();
        let JournalError::Decode { line, .. } = err else { panic!() };
        assert!(line > 1);
    }

    #[test]
    fn replay_is_idempotent_under_double_replay() {
        // Replaying the whole journal twice (as a recovery retry after a
        // crash-during-recovery would) must yield the same contexts as
        // replaying it once.
        for state in [None, Some(TxnState::Committed), Some(TxnState::Aborted)] {
            let (tc, _repo) = sample_context(state);
            let journal = journal_of(&tc);
            let once = replay(&journal).unwrap();
            let mut doubled = journal.clone();
            doubled.extend(journal.clone());
            let twice = replay(&doubled).unwrap();
            assert_eq!(once, twice, "state={state:?}");
            assert_eq!(twice.len(), 1);
            assert_eq!(twice[0], tc);
        }
    }

    #[test]
    fn replay_tolerates_duplicated_tail_entry() {
        // A torn-write retry re-appends the frame it could not confirm,
        // so the journal may carry the same tail entry twice in a row.
        let (tc, _repo) = sample_context(None);
        let journal = journal_of(&tc);
        for cut in 1..=journal.len() {
            let mut dup = journal[..cut].to_vec();
            dup.push(journal[cut - 1].clone());
            let rebuilt = replay(&dup).unwrap();
            let clean = replay(&journal[..cut]).unwrap();
            assert_eq!(rebuilt, clean, "duplicated entry #{cut} must be a no-op");
        }
    }

    #[test]
    fn replay_dedup_keeps_legitimate_rebegin() {
        // A re-begun transaction journals a second Begin with a later
        // `at`; that is NOT a duplicate and must open a new incarnation.
        let txn = TxnId::new(PeerId(3), 0);
        let chain = ActiveList::new(PeerId(1), true);
        let entries = vec![
            JournalEntry::Begin { txn, parent: None, chain: chain.clone(), at: 7 },
            JournalEntry::Resolved { txn, committed: false, at: 9 },
            JournalEntry::Begin { txn, parent: None, chain, at: 20 },
        ];
        let rebuilt = replay(&entries).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt[0].state, TxnState::Aborted);
        assert_eq!(rebuilt[1].state, TxnState::Active);
        assert_eq!(rebuilt[1].created_at, 20);
    }

    #[test]
    fn replay_rejects_entries_before_begin() {
        let txn = TxnId::new(PeerId(3), 9);
        let entries = vec![JournalEntry::Resolved { txn, committed: true, at: 1 }];
        assert!(matches!(replay(&entries), Err(JournalError::NoBegin(t)) if t == txn));
    }

    #[test]
    fn journal_file_roundtrip() {
        let (tc, _repo) = sample_context(None);
        let journal = journal_of(&tc);
        let path = std::env::temp_dir().join(format!("axml-journal-{}.jsonl", std::process::id()));
        std::fs::write(&path, encode(&journal)).unwrap();
        let loaded = decode(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, journal);
    }

    #[test]
    fn entry_txn_accessor() {
        let (tc, _) = sample_context(Some(TxnState::Aborted));
        for e in journal_of(&tc) {
            assert_eq!(e.txn(), tc.txn);
        }
    }
}
