//! The transactional AXML peer.
//!
//! An [`AxmlPeer`] hosts documents and services ([`Repository`] +
//! [`ServiceRegistry`]) and implements, as one [`Actor`], the paper's
//! complete protocol stack:
//!
//! - **service processing with distributed nesting**: serving an
//!   invocation scans the target document for relevant embedded calls
//!   (lazy/eager, §3.1), issues them as asynchronous `Invoke` messages —
//!   including to itself for local calls — applies the arriving results
//!   per each call's mode, logging every effect, and finally executes the
//!   service body;
//! - **nested recovery (§3.2)**: on a child fault the peer consults the
//!   embedded call's fault handlers (retry, replica retry, substitute) or
//!   an alternative provider — *forward recovery* — else aborts its own
//!   context (compensating its local effects from the log) and propagates
//!   `Abort TA` to invokees and the invoker — *backward recovery*;
//! - **peer-independent compensation (§3.2)**: results carry per-peer
//!   compensating-service bundles; a recovering peer executes them by
//!   sending `Compensate` messages directly, so "the original peers do
//!   not even need to be aware that the services they are executing are,
//!   basically, compensating services";
//! - **disconnection handling via chaining (§3.3)**: scenarios (a)–(d),
//!   driven by synchronous send failures, keep-alive timeouts, and missed
//!   sibling stream intervals, using the piggybacked active-peer list.
//!
//! # Reference model
//!
//! The `axml-spec` crate models this protocol as a small-step transition
//! system and model-checks its invariants over bounded configurations;
//! each transition below names the spec rule it refines, and the trace
//! events this module emits are what `axml-spec conform` replays against
//! the permitted transitions:
//!
//! | Spec rule | Implementation point |
//! |-----------|----------------------|
//! | R01 submit | [`AxmlPeer::submit`] |
//! | R02 serve | `handle_invoke` |
//! | R03 materialize | `apply_child_items` |
//! | R04 complete / resolve | `finish_serving`, `complete_serving` |
//! | R05 fault | `fail_serving` |
//! | R06 abort-up | `child_failed` → `abort_local` |
//! | R07 abort-down | `propagate_abort` / `handle_abort` |
//! | R08 compensate | `abort_local`, `handle_compensate` |
//! | R09 commit cascade | `handle_commit` |
//! | R10 crash / presumed abort | `crash_recover` |

use crate::chain::ActiveList;
use crate::compensate::{compensation_for_effects, CompBundle, CompensatingService};
use crate::context::{TransactionContext, TxnOutcome, TxnState};
use crate::durability::{self, DurabilitySink, JournalEntry, MemorySink, WalStats};
use crate::ids::{InvocationId, TxnId};
use crate::isolation::ConflictTable;
use crate::messages::TxnMsg;
use axml_doc::{
    apply_call_results, EvalMode, Fault, MaterializationEngine, ParamValue, Repository, ResolvedCall, ServiceCall,
    ServiceInvoker, ServiceKind, ServiceRegistry,
};
use axml_p2p::{Actor, Ctx, Directory, EventKind, PeerId, PingMonitor, SendError, Snapshot, TimerId};
use axml_query::{Effect, NodePath, SelectQuery};
use axml_xml::{Fragment, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tag for the periodic keep-alive tick.
const TAG_PING: u64 = 1;
/// Timer tag for the periodic sibling-stream tick.
const TAG_STREAM: u64 = 2;
/// First tag available for payload timers.
const TAG_PAYLOAD_BASE: u64 = 16;

/// How far chain gossip and disconnect notifications reach (ablation of
/// the paper's future work: "we are exploring the feasibility of
/// extending \[chaining\] to uncles, cousins, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainScope {
    /// The paper's mechanism: parent, children, and siblings.
    #[default]
    Standard,
    /// Extended: additionally grandparent, uncles, and cousins.
    Extended,
}

/// How a peer recovers from child faults (ablation D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryStyle {
    /// Try fault handlers and alternative providers first; abort only
    /// when forward recovery is exhausted — the paper's preference
    /// ("consider forward recovery as the preferred solution and undo
    /// only as much as required").
    #[default]
    ForwardFirst,
    /// Always propagate the abort (saga-style backward recovery baseline).
    BackwardOnly,
}

/// Per-peer protocol configuration (the ablation toggles of DESIGN.md §4).
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// D3: forward-first vs backward-only recovery.
    pub recovery: RecoveryStyle,
    /// D5: ship compensating-service bundles with results and drive
    /// compensation from the recovering peer.
    pub peer_independent: bool,
    /// D4: piggyback active-peer lists and use them on detection.
    pub chaining: bool,
    /// Gossip chain growth to parent/children/siblings as it happens.
    /// Off = strict piggyback-only chaining (lists travel solely with
    /// `Invoke`/`Result`): cheaper, but interior peers learn deeper edges
    /// only when results return, degrading scenarios (c)/(d).
    pub chain_gossip: bool,
    /// How far gossip/notices reach (paper vs extended future work).
    pub chain_scope: ChainScope,
    /// Use the replica directory to re-invoke a failed/disconnected
    /// child's service on an alternative provider.
    pub use_alternative_providers: bool,
    /// Keep-alive interval while waiting on children (0 disables pings).
    pub ping_interval: u64,
    /// Silence past this duration declares a watched peer disconnected.
    pub ping_timeout: u64,
    /// Subscription-stream interval between siblings (scenario (d));
    /// `None` disables streams.
    pub stream_interval: Option<u64>,
    /// Lazy or eager materialization (§3.1).
    pub eval: EvalMode,
    /// Enable path-level isolation (first-writer-wins conflict detection
    /// between concurrent transactions at this peer).
    pub isolation: bool,
    /// Whether this peer is a super peer (it advertises this in chains).
    pub is_super: bool,
    /// At-least-once delivery for protocol messages: wrap them in
    /// [`TxnMsg::Reliable`] envelopes, ack on receipt, and retransmit
    /// unacked sends with bounded exponential backoff. Keep-alives,
    /// streams, and chain gossip stay best-effort.
    pub reliable: bool,
    /// Suppress re-execution of an already-seen reliable delivery
    /// (`(sender, id)` dedup). Turning this off under message duplication
    /// is the canonical atomicity bug the chaos oracle catches.
    pub dedup: bool,
    /// Delay before the first retransmission; doubles per attempt (capped
    /// at `base × 64`, saturating — an extreme base never wraps into a
    /// same-instant retransmit storm). Must exceed one round trip, or
    /// fault-free runs retransmit spuriously.
    pub retransmit_base: u64,
    /// Retransmissions before the sender gives up and treats the silence
    /// as a failure ([`DetectHow::AckTimeout`]).
    pub max_retransmits: u32,
    /// Soft bound on the `(sender, id)` dedup set: once it grows past
    /// this, entries whose transaction has finalized here are pruned
    /// (entries of live transactions are always kept). The high-water
    /// mark is exposed as [`PeerStats::seen_peak`].
    pub dedup_capacity: usize,
    /// **Deliberately broken, test-only.** Apply self-compensation
    /// batches in forward log order instead of §3.1's reverse order.
    /// Exists so the online protocol monitor (`axml-obs`, rule M001) can
    /// be demonstrated catching an out-of-order compensation; never
    /// enable it outside that demonstration.
    pub compensate_in_log_order: bool,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            recovery: RecoveryStyle::ForwardFirst,
            peer_independent: false,
            chaining: true,
            chain_gossip: true,
            chain_scope: ChainScope::Standard,
            use_alternative_providers: true,
            ping_interval: 10,
            ping_timeout: 25,
            stream_interval: None,
            eval: EvalMode::Lazy,
            isolation: false,
            is_super: false,
            reliable: true,
            dedup: true,
            retransmit_base: 16,
            max_retransmits: 8,
            dedup_capacity: 1024,
            compensate_in_log_order: false,
        }
    }
}

/// How a disconnection was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectHow {
    /// A synchronous send failed (scenario (b): child → dead parent).
    SendFailure,
    /// Keep-alive silence / failed ping (scenarios (a), (c)).
    PingTimeout,
    /// Missed sibling stream intervals (scenario (d)).
    StreamSilence,
    /// Told by another peer via the chain.
    Notice,
    /// A reliable delivery exhausted its retransmission budget without an
    /// ack — the peer is silently unreachable (drops or a partition).
    AckTimeout,
}

impl DetectHow {
    fn label(&self) -> &'static str {
        match self {
            DetectHow::SendFailure => "send-failure",
            DetectHow::PingTimeout => "ping-timeout",
            DetectHow::StreamSilence => "stream-silence",
            DetectHow::Notice => "notice",
            DetectHow::AckTimeout => "ack-timeout",
        }
    }
}

/// One detection event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The peer detected as disconnected.
    pub disconnected: PeerId,
    /// Logical time of detection.
    pub at: u64,
    /// Mechanism.
    pub how: DetectHow,
}

/// Counters a peer accumulates (read by the experiment harness).
#[derive(Debug, Clone, Default)]
pub struct PeerStats {
    /// Invocations served (started).
    pub served: u64,
    /// Effects rolled back due to isolation conflicts.
    pub isolation_conflicts: u64,
    /// Servings completed successfully.
    pub completed: u64,
    /// Faults this peer raised (own service failures).
    pub faults_raised: u64,
    /// Handler-driven retries performed.
    pub retries: u64,
    /// Handler-driven substitutions performed.
    pub substitutions: u64,
    /// Re-invocations on alternative providers.
    pub alternatives_used: u64,
    /// Compensations executed locally (own log or received request).
    pub compensations_executed: u64,
    /// Nodes touched by compensation (the paper's cost measure).
    pub comp_cost_nodes: u64,
    /// `Abort` messages received.
    pub aborts_received: u64,
    /// `Abort`/`Fault` messages sent while recovering.
    pub aborts_sent: u64,
    /// Completed work discarded (results that never reached a consumer).
    pub work_wasted: u64,
    /// Results accepted via `prefilled` instead of re-invoking.
    pub work_reused: u64,
    /// Servings stopped early thanks to a disconnect notice.
    pub orphan_stops: u64,
    /// Results re-routed past a dead parent.
    pub redirects_sent: u64,
    /// Re-routed results received.
    pub redirects_received: u64,
    /// Messages that arrived for unknown/finished invocations.
    pub late_messages: u64,
    /// Reliable deliveries retransmitted (sender side).
    pub retransmits: u64,
    /// Reliable deliveries that exhausted their retransmission budget.
    pub retransmit_giveups: u64,
    /// Re-deliveries suppressed by `(sender, id)` dedup (receiver side).
    pub dup_suppressed: u64,
    /// High-water mark of the dedup set (entries, before pruning).
    pub seen_peak: u64,
    /// Journal appends refused by the durability sink (storage faults).
    pub storage_faults: u64,
    /// Crash-restarts this peer recovered from.
    pub crash_recoveries: u64,
    /// In-doubt contexts presumed aborted during crash recovery.
    pub presumed_aborts: u64,
    /// Disconnections this peer detected.
    pub detections: Vec<Detection>,
}

impl PeerStats {
    /// These counters as one flat registry snapshot (names scoped under
    /// `peer.<id>.`), mergeable with `NetMetrics::snapshot()` into the
    /// unified view included in trace dumps.
    pub fn snapshot(&self, peer: PeerId) -> Snapshot {
        let mut s = Snapshot::default();
        let p = peer.0;
        s.set(format!("peer.{p}.served"), self.served);
        s.set(format!("peer.{p}.isolation_conflicts"), self.isolation_conflicts);
        s.set(format!("peer.{p}.completed"), self.completed);
        s.set(format!("peer.{p}.faults_raised"), self.faults_raised);
        s.set(format!("peer.{p}.retries"), self.retries);
        s.set(format!("peer.{p}.substitutions"), self.substitutions);
        s.set(format!("peer.{p}.alternatives_used"), self.alternatives_used);
        s.set(format!("peer.{p}.compensations_executed"), self.compensations_executed);
        s.set(format!("peer.{p}.comp_cost_nodes"), self.comp_cost_nodes);
        s.set(format!("peer.{p}.aborts_received"), self.aborts_received);
        s.set(format!("peer.{p}.aborts_sent"), self.aborts_sent);
        s.set(format!("peer.{p}.work_wasted"), self.work_wasted);
        s.set(format!("peer.{p}.work_reused"), self.work_reused);
        s.set(format!("peer.{p}.orphan_stops"), self.orphan_stops);
        s.set(format!("peer.{p}.redirects_sent"), self.redirects_sent);
        s.set(format!("peer.{p}.redirects_received"), self.redirects_received);
        s.set(format!("peer.{p}.late_messages"), self.late_messages);
        s.set(format!("peer.{p}.retransmits"), self.retransmits);
        s.set(format!("peer.{p}.retransmit_giveups"), self.retransmit_giveups);
        s.set(format!("peer.{p}.dup_suppressed"), self.dup_suppressed);
        s.set(format!("peer.{p}.seen_peak"), self.seen_peak);
        s.set(format!("peer.{p}.storage_faults"), self.storage_faults);
        s.set(format!("peer.{p}.crash_recoveries"), self.crash_recoveries);
        s.set(format!("peer.{p}.presumed_aborts"), self.presumed_aborts);
        s.set(format!("peer.{p}.detections"), self.detections.len() as u64);
        s
    }
}

/// Where a child invocation's results go.
#[derive(Debug, Clone)]
enum ChildTarget {
    /// Materialize into an `axml:sc` element of a hosted document.
    ApplySc { doc: String, sc_path: NodePath },
    /// Fill a parameter value (local nesting across peers).
    ParamFill { node: NodeId },
}

/// One resolved wave entry: the call, its result target, the provider
/// peer, and the resolved parameters.
type WaveEntry = (ServiceCall, ChildTarget, PeerId, Vec<(String, String)>);

/// Bookkeeping for one outstanding child invocation.
#[derive(Debug, Clone)]
struct WaitingChild {
    txn: TxnId,
    serving_inv: InvocationId,
    child_peer: PeerId,
    method: String,
    params: Vec<(String, String)>,
    target: ChildTarget,
    handlers: Vec<axml_doc::FaultHandler>,
    retries_left: u32,
    attempted: Vec<PeerId>,
}

/// One invocation this peer is processing.
#[derive(Debug, Clone)]
struct Serving {
    txn: TxnId,
    inv: InvocationId,
    reply_to: Option<PeerId>,
    method: String,
    params: Vec<(String, String)>,
    doc: Option<String>,
    pending: BTreeSet<InvocationId>,
    prefilled: Vec<(String, Vec<Fragment>)>,
    done_sc: BTreeSet<NodeId>,
    param_cache: BTreeMap<NodeId, String>,
    rounds: usize,
}

#[derive(Debug, Clone)]
enum TimerPayload {
    /// The simulated processing duration elapsed: finish the serving.
    ServiceDone(InvocationId),
    /// Re-issue a child invocation (handler retry, possibly to a replica).
    RetryChild {
        wc: WaitingChild,
        to_peer: PeerId,
        to_method: String,
        /// The failed invocation id still held in the serving's pending
        /// set; swapped for the fresh one at reissue time.
        placeholder: InvocationId,
    },
    /// Submit a transaction (harness-scheduled).
    Submit { method: String, params: Vec<(String, String)> },
    /// Retransmit an unacked reliable delivery (by delivery id).
    Retransmit(u64),
}

/// One unacked reliable delivery awaiting its ack or next retransmission.
#[derive(Debug, Clone)]
struct PendingDelivery {
    to: PeerId,
    msg: TxnMsg,
    attempts: u32,
    /// The pending retransmit timer, as `(payload tag, simulator timer)`.
    /// Tracked so an ack (or give-up) cancels the timer and drops its
    /// payload instead of leaving a stale timer to fire after the outbox
    /// entry is gone.
    timer: Option<(u64, TimerId)>,
}

/// WSDL knowledge shared across the fabric: method → declared result
/// element names (drives lazy relevance for *remote* calls).
#[derive(Debug, Clone, Default)]
pub struct WsdlCatalog {
    entries: BTreeMap<String, Vec<String>>,
}

impl WsdlCatalog {
    /// Publishes a service's declared result names.
    ///
    /// List the full result *vocabulary* (every element name the result
    /// schema can contain), not just top-level elements: lazy relevance
    /// analysis intersects these names with the query's name tests, and a
    /// query selecting a descendant of the result (e.g. `citizenship`
    /// inside a returned `player`) must still trigger the call.
    pub fn publish(&mut self, method: impl Into<String>, result_names: &[&str]) {
        self.entries.insert(method.into(), result_names.iter().map(|s| s.to_string()).collect());
    }

    /// Declared result names for a method.
    pub fn hints(&self, method: &str) -> Option<Vec<String>> {
        self.entries.get(method).cloned()
    }
}

/// Invoker adapter used only for relevance probing (never invokes).
struct HintOnly<'a> {
    catalog: &'a WsdlCatalog,
}

impl ServiceInvoker for HintOnly<'_> {
    fn invoke(&mut self, call: &ResolvedCall) -> Result<axml_doc::ServiceResponse, Fault> {
        Err(Fault::execution(format!("hint-only invoker cannot invoke {}", call.method)))
    }

    fn result_hints(&self, call: &ResolvedCall) -> Option<Vec<String>> {
        self.catalog.hints(&call.method)
    }
}

/// A transactional AXML peer (one simulator actor).
pub struct AxmlPeer {
    /// This peer's id.
    pub id: PeerId,
    /// Protocol configuration.
    pub config: PeerConfig,
    /// Hosted documents.
    pub repo: Repository,
    /// Exposed services.
    pub registry: ServiceRegistry,
    /// Replica/provider knowledge.
    pub directory: Directory,
    /// Materialization engine (mode + externals).
    pub engine: MaterializationEngine,
    /// Published WSDLs (shared fabric knowledge).
    pub wsdl: WsdlCatalog,
    /// Transaction to submit when timer tag 0 fires.
    pub auto_submit: Option<(String, Vec<(String, String)>)>,
    /// Path-level conflict table (used when `config.isolation` is on).
    pub conflicts: ConflictTable,
    /// Counters.
    pub stats: PeerStats,
    /// Outcomes of transactions originated here.
    pub outcomes: Vec<TxnOutcome>,
    /// Results of committed transactions originated here.
    pub results: BTreeMap<TxnId, Vec<Fragment>>,
    contexts: BTreeMap<TxnId, TransactionContext>,
    servings: BTreeMap<InvocationId, Serving>,
    waiting: BTreeMap<InvocationId, WaitingChild>,
    monitor: PingMonitor,
    watch_counts: BTreeMap<PeerId, usize>,
    timers: BTreeMap<u64, TimerPayload>,
    next_tag: u64,
    next_inv: u64,
    next_txn: u64,
    ping_running: bool,
    stream_running: bool,
    stream_seq: u64,
    stream_last: BTreeMap<(TxnId, PeerId), u64>,
    prefill_store: BTreeMap<TxnId, Vec<(String, Vec<Fragment>)>>,
    /// Results of completed servings, retained until the transaction
    /// resolves. If the consumer turns out to have disconnected (the
    /// result was dropped in flight), a chain notice lets us re-offer the
    /// work to an ancestor — scenario (c)'s reuse.
    completed_results: BTreeMap<TxnId, (String, Vec<Fragment>, CompBundle)>,
    /// Parents we keep-alive-watch while our completed serving awaits
    /// their resolution. A child whose parent vanishes *after* the result
    /// was returned has effects nobody else will compensate: without its
    /// own detection it would keep them forever if every notice/abort
    /// path to it also died (e.g. the parent disconnects mid-abort and
    /// the grandparent crashes). Released when the transaction resolves.
    parent_watch: BTreeMap<TxnId, PeerId>,
    /// In-memory mirror of what the durability sink holds, for the
    /// [`Self::journal`] accessor and diagnostics. Only entries the sink
    /// durably acknowledged land here; after a crash-restart it is reset
    /// to exactly what the sink recovered from stable storage.
    journal: Vec<JournalEntry>,
    /// Stable storage for the journal. Every entry goes through the sink
    /// before its consequences escape; on crash-restart the sink is the
    /// sole source of surviving entries.
    sink: Box<dyn DurabilitySink>,
    /// Crash-restart epoch (the simulator incarnation at last restart).
    /// Namespaces invocation/transaction/delivery counters so a restarted
    /// peer never reuses an id that may still be live in the network.
    epoch: u64,
    next_delivery: u64,
    /// Unacked reliable deliveries by delivery id.
    outbox: BTreeMap<u64, PendingDelivery>,
    /// Reliable deliveries already executed, by `(sender, id)`, each
    /// mapped to its transaction so entries can be pruned once that
    /// transaction finalizes (see [`PeerConfig::dedup_capacity`]).
    seen_deliveries: BTreeMap<(PeerId, u64), Option<TxnId>>,
    /// Scratch buffer for [`PingMonitor::suspects_into`] on the ping
    /// tick — reused across ticks so the periodic suspicion scan stops
    /// allocating.
    suspect_buf: Vec<PeerId>,
}

impl AxmlPeer {
    /// Builds a peer.
    pub fn new(id: PeerId, config: PeerConfig) -> AxmlPeer {
        let monitor = PingMonitor::new(config.ping_interval.max(1), config.ping_timeout.max(1));
        let eval = config.eval;
        AxmlPeer {
            id,
            config,
            repo: Repository::new(),
            registry: ServiceRegistry::new(),
            directory: Directory::new(),
            engine: MaterializationEngine::new(eval),
            wsdl: WsdlCatalog::default(),
            auto_submit: None,
            conflicts: ConflictTable::new(),
            stats: PeerStats::default(),
            outcomes: Vec::new(),
            results: BTreeMap::new(),
            contexts: BTreeMap::new(),
            servings: BTreeMap::new(),
            waiting: BTreeMap::new(),
            monitor,
            watch_counts: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_tag: TAG_PAYLOAD_BASE,
            next_inv: 0,
            next_txn: 0,
            ping_running: false,
            stream_running: false,
            stream_seq: 0,
            stream_last: BTreeMap::new(),
            prefill_store: BTreeMap::new(),
            completed_results: BTreeMap::new(),
            parent_watch: BTreeMap::new(),
            journal: Vec::new(),
            sink: Box::new(MemorySink::new()),
            epoch: 0,
            next_delivery: 0,
            outbox: BTreeMap::new(),
            seen_deliveries: BTreeMap::new(),
            suspect_buf: Vec::new(),
        }
    }

    /// The context of a transaction, if this peer participated.
    pub fn context(&self, txn: TxnId) -> Option<&TransactionContext> {
        self.contexts.get(&txn)
    }

    /// All transaction ids this peer has contexts for.
    pub fn known_txns(&self) -> Vec<TxnId> {
        self.contexts.keys().copied().collect()
    }

    /// True if the peer has no in-flight work.
    pub fn is_quiescent(&self) -> bool {
        self.servings.is_empty() && self.waiting.is_empty() && self.outbox.is_empty()
    }

    /// The durable journal accumulated so far (the entries the sink has
    /// acknowledged; after a restart, what it recovered).
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// Replaces the durability sink (e.g. with an on-disk WAL). Entries
    /// already journaled are carried over so the new sink holds the full
    /// durable history; normally called right after construction, before
    /// the peer runs.
    pub fn set_durability_sink(&mut self, mut sink: Box<dyn DurabilitySink>) {
        for e in &self.journal {
            sink.append_forced(e);
        }
        self.sink = sink;
    }

    /// The durability sink's activity counters (`wal.*`).
    pub fn wal_stats(&self) -> WalStats {
        self.sink.stats()
    }

    /// Peers currently being kept alive by this peer's failure detector
    /// (diagnostics; empty when quiescent).
    pub fn watched_peers(&self) -> Vec<PeerId> {
        self.monitor.watched()
    }

    fn alloc_inv(&mut self) -> InvocationId {
        let inv = InvocationId::new(self.id, (self.epoch << 48) | self.next_inv);
        self.next_inv += 1;
        inv
    }

    fn alloc_payload_tag(&mut self, payload: TimerPayload) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, payload);
        tag
    }

    // ------------------------------------------------------------------
    // Lifecycle tracing.
    // ------------------------------------------------------------------

    /// Emits one lifecycle event (no-op when the run is untraced). Ids
    /// travel in `Display` form so the trace crate stays below the
    /// protocol layer.
    fn emit(
        &self,
        ctx: &mut Ctx<'_, TxnMsg>,
        txn: Option<TxnId>,
        span: Option<InvocationId>,
        parent: Option<InvocationId>,
        kind: EventKind,
    ) {
        if ctx.tracing() {
            ctx.emit(txn.map(|t| t.to_string()), span.map(|i| i.to_string()), parent.map(|i| i.to_string()), kind);
        }
    }

    fn journal_entry_label(entry: &JournalEntry) -> (TxnId, String) {
        match entry {
            JournalEntry::Begin { txn, .. } => (*txn, "begin".to_string()),
            JournalEntry::Local { txn, op_label, effects, .. } => {
                (*txn, format!("local {op_label} effects={}", effects.len()))
            }
            JournalEntry::RemoteInvoked { txn, inv, method, .. } => (*txn, format!("remote-invoked {inv} {method}")),
            JournalEntry::RemoteCompleted { txn, inv, .. } => (*txn, format!("remote-completed {inv}")),
            JournalEntry::Resolved { txn, committed, .. } => {
                (*txn, format!("resolved {}", if *committed { "commit" } else { "abort" }))
            }
        }
    }

    /// Appends to the durability journal through the sink, mirroring a
    /// durable write into the trace as a [`EventKind::LogAppend`] event —
    /// every stable-storage transition is visible in the run's causal
    /// record. Returns `false` on a storage fault: the entry is NOT
    /// durable (nothing is traced or mirrored) and the caller must roll
    /// back whatever the entry was about to make durable.
    #[must_use]
    fn journal_append(&mut self, ctx: &mut Ctx<'_, TxnMsg>, entry: JournalEntry) -> bool {
        if !self.sink.append(&entry) {
            self.stats.storage_faults += 1;
            return false;
        }
        if ctx.tracing() {
            let (txn, label) = Self::journal_entry_label(&entry);
            ctx.emit(Some(txn.to_string()), None, None, EventKind::LogAppend { entry: label });
        }
        self.journal.push(entry);
        true
    }

    /// Appends a decision record or cross-peer obligation, forcing it
    /// through transient storage faults (the sink retries until the write
    /// is durable). Used wherever losing the entry would break atomicity
    /// rather than merely fail one serving: `Resolved` decisions,
    /// `RemoteInvoked` obligations, tombstones, recovery records.
    fn journal_append_forced(&mut self, ctx: &mut Ctx<'_, TxnMsg>, entry: JournalEntry) {
        self.sink.append_forced(&entry);
        if ctx.tracing() {
            let (txn, label) = Self::journal_entry_label(&entry);
            ctx.emit(Some(txn.to_string()), None, None, EventKind::LogAppend { entry: label });
        }
        self.journal.push(entry);
    }

    // ------------------------------------------------------------------
    // At-least-once delivery (ack + retransmit + dedup).
    // ------------------------------------------------------------------

    /// Current size of the `(sender, id)` dedup set (harness-visible so
    /// chaos profiles can assert boundedness).
    pub fn seen_deliveries_len(&self) -> usize {
        self.seen_deliveries.len()
    }

    /// Evicts dedup entries whose transaction has finalized at this peer
    /// (suppression is only load-bearing while the transaction can still
    /// be damaged by a re-executed delivery). Entries of live or unknown
    /// transactions are kept, so the set is *soft*-bounded: it can exceed
    /// [`PeerConfig::dedup_capacity`] while many transactions are in
    /// flight, but returns to it as they resolve. Called whenever a
    /// transaction finalizes and whenever an insert pushes the set past
    /// capacity.
    ///
    /// Entries of *aborted* transactions are only evicted under capacity
    /// pressure (`aggressive`), never at finalize time: an aborted peer
    /// can legitimately be re-invoked during forward recovery, and the
    /// retransmission window for pre-abort deliveries is still open — a
    /// stale retransmitted `Abort` that missed the pruned set would be
    /// processed a second time and kill the freshly re-joined context.
    /// A *committed* context refuses re-invocation forever, so its
    /// entries protect nothing and go at the first opportunity.
    fn prune_seen(&mut self, ctx: &mut Ctx<'_, TxnMsg>, aggressive: bool) {
        let before = self.seen_deliveries.len();
        let contexts = &self.contexts;
        self.seen_deliveries.retain(|_, txn| match txn {
            Some(t) => match contexts.get(t) {
                Some(tc) if tc.state == TxnState::Committed => false,
                Some(tc) => !(aggressive && tc.is_terminal()),
                None => true,
            },
            // Transaction-less protocol traffic is never sent reliably;
            // an entry without one has nothing left to protect.
            None => false,
        });
        let evicted = (before - self.seen_deliveries.len()) as u64;
        if evicted > 0 {
            self.emit(ctx, None, None, None, EventKind::DedupPrune { evicted });
        }
    }

    /// Drops the keep-alive watch on the parent whose resolution `txn`'s
    /// completed serving was waiting for (no-op when none was armed).
    fn release_parent_watch(&mut self, txn: TxnId) {
        if let Some(parent) = self.parent_watch.remove(&txn) {
            self.unwatch(parent);
        }
    }

    /// Sends a protocol message with at-least-once delivery when
    /// [`PeerConfig::reliable`] is on: the payload travels inside a
    /// [`TxnMsg::Reliable`] envelope, is registered in the outbox, and is
    /// retransmitted with bounded exponential backoff until acked.
    /// Loopback sends skip the envelope (a local call cannot be lost). A
    /// synchronous [`SendError`] — the target is disconnected *right now*
    /// — is returned unchanged: that is the paper's synchronous detection
    /// path, not a delivery fault.
    fn send_reliable(&mut self, ctx: &mut Ctx<'_, TxnMsg>, to: PeerId, msg: TxnMsg) -> Result<(), SendError> {
        if !self.config.reliable || to == self.id {
            return ctx.send(to, msg);
        }
        let id = (self.epoch << 48) | self.next_delivery;
        self.next_delivery += 1;
        ctx.send(to, TxnMsg::Reliable { id, attempt: 0, inner: Box::new(msg.clone()) })?;
        let tag = self.alloc_payload_tag(TimerPayload::Retransmit(id));
        let timer = ctx.set_timer(self.config.retransmit_base, tag);
        self.outbox.insert(id, PendingDelivery { to, msg, attempts: 0, timer: Some((tag, timer)) });
        Ok(())
    }

    /// A retransmit timer fired: resend if still unacked, escalating the
    /// backoff; past the budget (or on a synchronous failure) treat the
    /// silence as a detected failure and run the give-up action.
    fn retransmit(&mut self, ctx: &mut Ctx<'_, TxnMsg>, id: u64) {
        use std::collections::btree_map::Entry;
        // One entry lookup decides update-in-place vs give-up removal;
        // the old shape re-found the key (`remove(&id).expect("checked
        // above")`) on every give-up.
        let (to, attempts, txn, live) = {
            let Entry::Occupied(mut entry) = self.outbox.entry(id) else {
                return; // acked (or given up) meanwhile
            };
            let pending = entry.get_mut();
            pending.timer = None; // this very timer is what fired
            pending.attempts += 1;
            let (to, attempts) = (pending.to, pending.attempts);
            let txn = txn_of(&pending.msg);
            if attempts > self.config.max_retransmits {
                (to, attempts, txn, Err(entry.remove()))
            } else {
                (to, attempts, txn, Ok(pending.msg.clone()))
            }
        };
        let msg = match live {
            Err(pending) => {
                self.stats.retransmit_giveups += 1;
                self.emit(ctx, txn, None, None, EventKind::RetransmitGiveUp { to: to.0, id });
                self.record_detection(ctx, to, DetectHow::AckTimeout);
                self.delivery_failed(ctx, pending);
                return;
            }
            Ok(msg) => msg,
        };
        let envelope = TxnMsg::Reliable { id, attempt: attempts, inner: Box::new(msg) };
        self.stats.retransmits += 1;
        self.emit(ctx, txn, None, None, EventKind::Retransmit { to: to.0, id, attempt: attempts });
        match ctx.send(to, envelope) {
            Ok(()) => {
                // Saturating multiply: `base << attempts` would wrap for
                // extreme bases, turning the backoff into an immediate
                // retransmit storm.
                let delay = self.config.retransmit_base.saturating_mul(1u64 << attempts.min(6));
                let tag = self.alloc_payload_tag(TimerPayload::Retransmit(id));
                let timer = ctx.set_timer(delay, tag);
                if let Some(pending) = self.outbox.get_mut(&id) {
                    pending.timer = Some((tag, timer));
                }
            }
            Err(_) => {
                if let Some(pending) = self.outbox.remove(&id) {
                    self.record_detection(ctx, to, DetectHow::SendFailure);
                    self.delivery_failed(ctx, pending);
                }
            }
        }
    }

    /// Drops an outbox entry's pending retransmit timer (ack or give-up):
    /// the sim timer is cancelled and its payload removed, so a stale
    /// firing can never alias a delivery id reused after this one ends.
    fn clear_delivery_timer(&mut self, ctx: &mut Ctx<'_, TxnMsg>, pending: &mut PendingDelivery) {
        if let Some((tag, timer)) = pending.timer.take() {
            self.timers.remove(&tag);
            ctx.cancel_timer(timer);
        }
    }

    /// A reliable delivery definitively failed: react per payload kind.
    fn delivery_failed(&mut self, ctx: &mut Ctx<'_, TxnMsg>, pending: PendingDelivery) {
        match pending.msg {
            TxnMsg::Invoke { inv, .. } => {
                // The child never acknowledged the invocation: same
                // recovery decision point as a detected disconnection.
                self.child_failed(ctx, inv, Fault::peer_unreachable(format!("{} never acked", pending.to)));
            }
            TxnMsg::Result { txn, .. } => {
                // The parent never consumed our result: re-offer the work
                // up the chain (scenario (b)), unless the transaction has
                // resolved here meanwhile.
                if let Some((method, items, comp)) = self.completed_results.get(&txn).cloned() {
                    self.reroute_past_dead_parent(ctx, txn, pending.to, &method, items, comp);
                }
            }
            TxnMsg::Fault { txn, .. } => {
                // The upward abort never got through: route the bad news
                // past the silent parent via the chain.
                self.notice_ancestors(ctx, txn, pending.to);
            }
            // Decision/notice messages are best-effort past the
            // retransmission budget: receivers that missed them converge
            // through their own detection (pings, notices, redirects).
            _ => {}
        }
    }

    /// Tells the nearest reachable non-`dead` ancestor (from the chain)
    /// that `dead` is gone — the fallback when bad news cannot be
    /// delivered to the parent directly.
    fn notice_ancestors(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, dead: PeerId) {
        if !self.config.chaining {
            return;
        }
        let Some(chain) = self.contexts.get(&txn).map(|tc| tc.chain.clone()) else { return };
        for target in chain.ancestors_of(self.id).into_iter().filter(|p| *p != dead) {
            if self.send_reliable(ctx, target, TxnMsg::DisconnectNotice { txn, disconnected: dead }).is_ok() {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Submission (origin side).
    // ------------------------------------------------------------------

    /// Submits a transaction at this peer: invoke local service `method`.
    /// Returns the new transaction id. (Spec rule **R01**.)
    pub fn submit(&mut self, ctx: &mut Ctx<'_, TxnMsg>, method: &str, params: Vec<(String, String)>) -> TxnId {
        let txn = TxnId::new(self.id, (self.epoch << 48) | self.next_txn);
        self.next_txn += 1;
        let chain = ActiveList::new(self.id, self.config.is_super);
        let tc = TransactionContext::new(txn, None, chain.clone(), ctx.now());
        self.journal_append_forced(ctx, JournalEntry::Begin { txn, parent: None, chain, at: ctx.now() });
        self.contexts.insert(txn, tc);
        let inv = self.alloc_inv();
        self.emit(ctx, Some(txn), Some(inv), None, EventKind::Submit { method: method.to_string() });
        let serving = Serving {
            txn,
            inv,
            reply_to: None,
            method: method.to_string(),
            params,
            doc: self.service_doc(method),
            pending: BTreeSet::new(),
            prefilled: Vec::new(),
            done_sc: BTreeSet::new(),
            param_cache: BTreeMap::new(),
            rounds: 0,
        };
        self.stats.served += 1;
        self.servings.insert(inv, serving);
        self.advance_serving(ctx, inv);
        txn
    }

    fn service_doc(&self, method: &str) -> Option<String> {
        match self.registry.get(method).map(|d| &d.kind) {
            Some(ServiceKind::Query { doc, .. }) | Some(ServiceKind::Update { doc, .. }) => Some(doc.clone()),
            _ => None,
        }
    }

    fn service_query(&self, method: &str) -> Option<SelectQuery> {
        match self.registry.get(method).map(|d| &d.kind) {
            Some(ServiceKind::Query { query, .. }) => Some(query.clone()),
            Some(ServiceKind::Update { action, .. }) => match &action.location {
                axml_query::Locator::Select(q) => Some(q.clone()),
                _ => None,
            },
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Serving: wave-based materialization, then execution.
    // ------------------------------------------------------------------

    /// Accepts an `Invoke` and starts serving it. (Spec rule **R02**;
    /// re-serving after churn re-arms the peer's obligations, which the
    /// conformance checker models as a frame reset.)
    #[allow(clippy::too_many_arguments)]
    fn handle_invoke(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        from: PeerId,
        txn: TxnId,
        inv: InvocationId,
        method: String,
        params: Vec<(String, String)>,
        chain: ActiveList,
        prefilled: Vec<(String, Vec<Fragment>)>,
    ) {
        // Context (re)use: one context per transaction per peer. A peer
        // whose context was *aborted* (e.g. the subtree failed and was
        // compensated) may legitimately be re-invoked during forward
        // recovery — it re-joins with a fresh context. A committed
        // context refuses.
        let rejoining = match self.contexts.get(&txn) {
            Some(tc) if tc.state == TxnState::Committed => {
                let fault = Fault::new("TxnResolved", format!("{txn} already committed at {}", self.id));
                let _ = self.send_reliable(ctx, from, TxnMsg::Fault { txn, inv, fault });
                return;
            }
            Some(tc) if tc.is_terminal() => true,
            _ => false,
        };
        if rejoining || !self.contexts.contains_key(&txn) {
            let tc = TransactionContext::new(txn, Some((from, inv)), chain.clone(), ctx.now());
            // The context must be durable before we take on the serving:
            // a crash after effects but before a recoverable Begin could
            // never be compensated. On a storage fault, refuse the work —
            // the invoker treats it like any other fault (retry,
            // alternative provider, or abort). The append must succeed
            // *before* a re-join discards the old aborted context: a
            // refusal that had already dropped it would forget the
            // terminal decision, and a retransmitted Abort would then
            // re-resolve through the tombstone path — a second terminal
            // decision for the same transaction.
            let begun = self.journal_append(
                ctx,
                JournalEntry::Begin { txn, parent: Some((from, inv)), chain: chain.clone(), at: ctx.now() },
            );
            if !begun {
                let fault = Fault::new("StorageFault", format!("journal append failed at {}", self.id));
                let _ = self.send_reliable(ctx, from, TxnMsg::Fault { txn, inv, fault });
                return;
            }
            self.contexts.insert(txn, tc);
        }
        let tc = self.contexts.get_mut(&txn).expect("inserted above");
        // Adopt the (possibly richer) incoming chain, marking ourselves.
        tc.chain = merge_chains(&tc.chain, &chain);
        if self.config.is_super {
            tc.chain.mark_super(self.id);
        }
        if self.registry.get(&method).is_none() {
            let fault = Fault::no_such_service(format!("{method} at {}", self.id));
            let _ = self.send_reliable(ctx, from, TxnMsg::Fault { txn, inv, fault });
            return;
        }
        let serving = Serving {
            txn,
            inv,
            reply_to: Some(from),
            method: method.clone(),
            params,
            doc: self.service_doc(&method),
            pending: BTreeSet::new(),
            prefilled,
            done_sc: BTreeSet::new(),
            param_cache: BTreeMap::new(),
            rounds: 0,
        };
        self.stats.served += 1;
        self.servings.insert(inv, serving);
        self.emit(ctx, Some(txn), Some(inv), None, EventKind::Serve { from: from.0, method });
        self.maybe_start_stream(ctx);
        self.advance_serving(ctx, inv);
    }

    /// Issues the next wave of sub-invocations for a serving, or — when
    /// nothing is pending — schedules its completion.
    fn advance_serving(&mut self, ctx: &mut Ctx<'_, TxnMsg>, serving_inv: InvocationId) {
        let Some(serving) = self.servings.get(&serving_inv) else { return };
        if !serving.pending.is_empty() {
            return;
        }
        let txn = serving.txn;
        let doc_name = serving.doc.clone();
        if let Some(doc_name) = doc_name {
            let Some(serving) = self.servings.get_mut(&serving_inv) else { return };
            serving.rounds += 1;
            if serving.rounds > self.engine.max_depth {
                let fault = Fault::execution(format!("materialization exceeded {} waves", self.engine.max_depth));
                self.fail_serving(ctx, serving_inv, fault);
                return;
            }
            let method = serving.method.clone();
            let query = self.service_query(&method);
            // Scan the hosted document for embedded calls to handle.
            let mut to_issue: Vec<(ServiceCall, ChildTarget)> = Vec::new();
            {
                let Some(doc) = self.repo.get(&doc_name) else {
                    let fault = Fault::execution(format!("document {doc_name} missing at {}", self.id));
                    self.fail_serving(ctx, serving_inv, fault);
                    return;
                };
                let serving = self.servings.get(&serving_inv).expect("serving exists");
                let calls = ServiceCall::scan(doc);
                let hint = HintOnly { catalog: &self.wsdl };
                for call in calls {
                    let Some(node) = call.node else { continue };
                    if serving.done_sc.contains(&node) {
                        continue;
                    }
                    let relevant = match (&query, self.config.eval) {
                        (_, EvalMode::Eager) | (None, _) => true,
                        (Some(q), EvalMode::Lazy) => {
                            let names = axml_doc::materialize::QueryNames::collect(q);
                            self.engine.relevant(doc, &call, q, &names, &hint)
                        }
                    };
                    if !relevant {
                        continue;
                    }
                    let Ok(sc_path) = NodePath::of(doc, node) else { continue };
                    to_issue.push((call, ChildTarget::ApplySc { doc: doc_name.clone(), sc_path }));
                }
            }
            if !to_issue.is_empty() {
                self.issue_wave(ctx, serving_inv, txn, to_issue);
                // The wave may have failed the serving synchronously
                // (e.g. unreachable child with no forward recovery).
                let Some(serving) = self.servings.get(&serving_inv) else { return };
                if !serving.pending.is_empty() {
                    return;
                }
                // Everything in the wave was prefilled/local-cached:
                // immediately look for the next wave.
                self.advance_serving(ctx, serving_inv);
                return;
            }
        }
        // Nothing (left) to materialize: run the service body after its
        // simulated duration.
        let Some(serving) = self.servings.get(&serving_inv) else { return };
        let duration = self.registry.get(&serving.method).map(|d| d.duration).unwrap_or(1);
        let tag = self.alloc_payload_tag(TimerPayload::ServiceDone(serving_inv));
        ctx.set_timer(duration, tag);
    }

    /// Issues one wave of child invocations (applying prefills first).
    fn issue_wave(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        serving_inv: InvocationId,
        txn: TxnId,
        to_issue: Vec<(ServiceCall, ChildTarget)>,
    ) {
        // First, extend the chain with the whole wave so every child sees
        // its siblings (the paper's scenario (d) relies on this).
        let mut wave: Vec<WaveEntry> = Vec::new();
        for (call, target) in to_issue {
            // The serving can disappear mid-wave: issuing to an
            // unreachable peer without forward recovery fails it.
            let Some(serving) = self.servings.get_mut(&serving_inv) else { return };
            let node = call.node.expect("scanned calls have nodes");
            // Mark handled regardless of outcome (faults go through
            // recovery, not re-scanning).
            serving.done_sc.insert(node);
            // Prefill reuse (scenario (b)): results forwarded from an
            // orphaned peer stand in for the invocation.
            let prefilled_items =
                serving.prefilled.iter().find(|(m, _)| *m == call.method).map(|(_, items)| items.clone());
            if let Some(items) = prefilled_items {
                self.stats.work_reused += 1;
                self.apply_child_items(ctx, txn, serving_inv, &target, &call.method, &items);
                continue;
            }
            // Resolve parameters; remote param-calls become waiting
            // children of their own.
            match self.resolve_params_for(serving_inv, &call) {
                Err(NeedParams(nested)) => {
                    for nc in nested {
                        let Some(pnode) = nc.node else { continue };
                        let params = match self.resolve_params_for(serving_inv, &nc) {
                            Ok(p) => p,
                            Err(_) => continue, // deeper nesting resolves in later waves
                        };
                        let peer = PeerId::from_url(&nc.service_url).unwrap_or(self.id);
                        wave.push((nc.clone(), ChildTarget::ParamFill { node: pnode }, peer, params));
                    }
                    // Un-mark the outer call: it re-enters a later wave
                    // once its params are cached.
                    if let Some(s) = self.servings.get_mut(&serving_inv) {
                        s.done_sc.remove(&node);
                    }
                }
                Ok(params) => {
                    let peer = PeerId::from_url(&call.service_url).unwrap_or(self.id);
                    wave.push((call, target, peer, params));
                }
            }
        }
        // Chain first…
        {
            let my_super = self.config.is_super;
            let chaining = self.config.chaining;
            if let Some(tc) = self.contexts.get_mut(&txn) {
                if chaining {
                    if !tc.chain.contains(self.id) {
                        // Shouldn't happen (parent added us), but be safe.
                        tc.chain = ActiveList::new(self.id, my_super);
                    }
                    for (_, _, peer, _) in &wave {
                        tc.chain.add_invocation(self.id, *peer, false);
                    }
                }
            }
        }
        // …then send.
        let grew = !wave.is_empty();
        for (call, target, peer, params) in wave {
            if !self.servings.contains_key(&serving_inv) {
                return; // a send failure already failed this serving
            }
            self.issue_child(ctx, serving_inv, txn, call, target, peer, params);
        }
        if grew {
            // Share the new edges with parent/children/siblings so they
            // can act on disconnections (scenarios (c)/(d)).
            self.gossip_chain(ctx, txn, None);
        }
    }

    /// Shares this peer's chain view with its parent, children, and
    /// siblings in the chain — the paper's chaining scope.
    fn gossip_chain(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, except: Option<PeerId>) {
        if !self.config.chaining || !self.config.chain_gossip {
            return;
        }
        let Some(tc) = self.contexts.get(&txn) else { return };
        let chain = tc.chain.clone();
        let mut targets: Vec<PeerId> = Vec::new();
        if let Some(p) = chain.parent_of(self.id) {
            targets.push(p);
        }
        targets.extend(chain.children_of(self.id));
        targets.extend(chain.siblings_of(self.id));
        if self.config.chain_scope == ChainScope::Extended {
            if let Some(g) = chain.grandparent_of(self.id) {
                targets.push(g);
            }
            targets.extend(chain.uncles_of(self.id));
            targets.extend(chain.cousins_of(self.id));
        }
        targets.sort();
        targets.dedup();
        for t in targets {
            if t == self.id || Some(t) == except {
                continue;
            }
            let _ = ctx.send(t, TxnMsg::ChainUpdate { txn, chain: chain.clone() });
        }
    }

    /// Merges a gossiped chain; re-gossips only when something new was
    /// learned (monotone merge ⇒ convergence).
    fn handle_chain_update(&mut self, ctx: &mut Ctx<'_, TxnMsg>, from: PeerId, txn: TxnId, chain: ActiveList) {
        let Some(tc) = self.contexts.get_mut(&txn) else { return };
        if tc.is_terminal() {
            return;
        }
        let merged = merge_chains(&tc.chain, &chain);
        if merged != tc.chain {
            tc.chain = merged;
            self.gossip_chain(ctx, txn, Some(from));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_child(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        serving_inv: InvocationId,
        txn: TxnId,
        call: ServiceCall,
        target: ChildTarget,
        peer: PeerId,
        params: Vec<(String, String)>,
    ) {
        let inv = self.alloc_inv();
        let retries_left = call
            .handlers
            .iter()
            .find_map(|h| match &h.action {
                axml_doc::HandlerAction::Retry { times, .. } => Some(*times),
                _ => None,
            })
            .unwrap_or(0);
        let wc = WaitingChild {
            txn,
            serving_inv,
            child_peer: peer,
            method: call.method.clone(),
            params: params.clone(),
            target,
            handlers: call.handlers.clone(),
            retries_left,
            attempted: vec![peer],
        };
        if let Some(tc) = self.contexts.get_mut(&txn) {
            tc.record_remote(peer, inv, call.method.clone());
        }
        if self.contexts.contains_key(&txn) {
            // A durable record of the outgoing invocation must exist
            // before the Invoke leaves: a crash between send and append
            // would orphan the child subtree (it would never be aborted).
            self.journal_append_forced(
                ctx,
                JournalEntry::RemoteInvoked { txn, child: peer, inv, method: call.method.clone() },
            );
        }
        self.emit(
            ctx,
            Some(txn),
            Some(inv),
            Some(serving_inv),
            EventKind::Invoke { to: peer.0, method: call.method.clone() },
        );
        let chain = self.current_chain(txn);
        let prefilled = self.prefill_store.get(&txn).cloned().unwrap_or_default();
        self.waiting.insert(inv, wc);
        if let Some(s) = self.servings.get_mut(&serving_inv) {
            s.pending.insert(inv);
        }
        let msg = TxnMsg::Invoke { txn, inv, method: call.method.clone(), params, chain, prefilled };
        match self.send_reliable(ctx, peer, msg) {
            Ok(()) => {
                self.watch(ctx, peer);
            }
            Err(_) => {
                // Synchronous detection: the target is gone right now.
                self.record_detection(ctx, peer, DetectHow::SendFailure);
                self.child_failed(ctx, inv, Fault::peer_unreachable(format!("{peer} unreachable")));
            }
        }
    }

    /// The chain to piggyback on invocations. A singleton when chaining is
    /// disabled (children then know nothing beyond their invoker).
    fn current_chain(&self, txn: TxnId) -> ActiveList {
        if self.config.chaining {
            self.contexts
                .get(&txn)
                .map(|tc| tc.chain.clone())
                .unwrap_or_else(|| ActiveList::new(self.id, self.config.is_super))
        } else {
            ActiveList::new(self.id, self.config.is_super)
        }
    }

    fn resolve_params_for(
        &self,
        serving_inv: InvocationId,
        call: &ServiceCall,
    ) -> Result<Vec<(String, String)>, NeedParams> {
        let Some(serving) = self.servings.get(&serving_inv) else {
            return Err(NeedParams(Vec::new()));
        };
        let mut out = Vec::with_capacity(call.params.len());
        let mut needed = Vec::new();
        for p in &call.params {
            match &p.value {
                ParamValue::Literal(v) => out.push((p.name.clone(), v.clone())),
                ParamValue::External(name) => {
                    let v = self.engine.externals.get(name).cloned().unwrap_or_default();
                    out.push((p.name.clone(), v));
                }
                ParamValue::Xml(frags) => {
                    out.push((p.name.clone(), frags.iter().map(Fragment::text_content).collect()))
                }
                ParamValue::Call(nested) => match nested.node.and_then(|n| serving.param_cache.get(&n)) {
                    Some(v) => out.push((p.name.clone(), v.clone())),
                    None => needed.push((**nested).clone()),
                },
            }
        }
        if needed.is_empty() {
            Ok(out)
        } else {
            Err(NeedParams(needed))
        }
    }

    /// Validates freshly-applied effects against the conflict table
    /// (optimistic: apply, validate, roll back on conflict). Returns
    /// `false` — with the effects already undone — on conflict.
    fn guard_effects(&mut self, txn: TxnId, doc: &str, effects: &[Effect]) -> bool {
        if !self.config.isolation || effects.is_empty() {
            return true;
        }
        if self.conflicts.claim_effects(txn, doc, effects).is_ok() {
            return true;
        }
        self.stats.isolation_conflicts += 1;
        if let Some(document) = self.repo.get_mut(doc) {
            let inverse = compensation_for_effects(effects);
            let _ = crate::compensate::apply_compensation(document, &inverse);
        }
        false
    }

    /// Applies a child's result items to its target, logging effects.
    /// (Spec rule **R03**: materialization must precede the local
    /// resolve, and each logged effect is a compensation obligation.)
    fn apply_child_items(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        txn: TxnId,
        serving_inv: InvocationId,
        target: &ChildTarget,
        method: &str,
        items: &[Fragment],
    ) {
        match target {
            ChildTarget::ApplySc { doc, sc_path } => {
                let doc = doc.clone();
                let effects = {
                    let Some(document) = self.repo.get_mut(&doc) else { return };
                    let Ok(sc_node) = sc_path.resolve(document) else { return };
                    let Some(call) = ServiceCall::parse(document, sc_node) else { return };
                    match apply_call_results(document, &call, sc_node, items) {
                        Ok(effects) => effects,
                        Err(_) => return, // surfaced at execution
                    }
                };
                if !self.guard_effects(txn, &doc, &effects) {
                    let fault = Fault::new("IsolationConflict", format!("{txn} conflicts on {doc}"));
                    self.fail_serving(ctx, serving_inv, fault);
                    return;
                }
                if self.contexts.contains_key(&txn) {
                    self.emit(
                        ctx,
                        Some(txn),
                        Some(serving_inv),
                        None,
                        EventKind::Materialize { doc: doc.clone(), items: items.len() as u64 },
                    );
                    if !effects.is_empty() {
                        let logged = self.journal_append(
                            ctx,
                            JournalEntry::Local {
                                txn,
                                doc: doc.clone(),
                                op_label: format!("materialize {method}"),
                                effects: effects.clone(),
                            },
                        );
                        if !logged {
                            // Effect barrier: the effects may not outlive
                            // an unlogged (uncompensatable) record. Undo
                            // them and fail the serving — same shape as
                            // an isolation-conflict rollback.
                            if let Some(document) = self.repo.get_mut(&doc) {
                                let inverse = compensation_for_effects(&effects);
                                let _ = crate::compensate::apply_compensation(document, &inverse);
                            }
                            let fault = Fault::new("StorageFault", format!("journal append failed at {}", self.id));
                            self.fail_serving(ctx, serving_inv, fault);
                            return;
                        }
                    }
                    if let Some(tc) = self.contexts.get_mut(&txn) {
                        tc.record_local(doc, format!("materialize {method}"), effects);
                    }
                }
            }
            ChildTarget::ParamFill { node } => {
                if let Some(s) = self.servings.get_mut(&serving_inv) {
                    let text: String = items.iter().map(Fragment::text_content).collect();
                    s.param_cache.insert(*node, text);
                }
            }
        }
    }

    /// Runs the service body once every sub-invocation is in. (Spec rule
    /// **R04**: a completion at the origin is the commit decision.)
    fn complete_serving(&mut self, ctx: &mut Ctx<'_, TxnMsg>, serving_inv: InvocationId) {
        let Some(serving) = self.servings.get(&serving_inv) else { return };
        let txn = serving.txn;
        let method = serving.method.clone();
        let params = serving.params.clone();
        if self.contexts.get(&txn).map(|t| t.is_terminal()).unwrap_or(true) {
            // Resolved while we were processing: the work is moot. Tell
            // the invoker so it does not wait on us forever.
            if let Some(serving) = self.servings.remove(&serving_inv) {
                self.stats.work_wasted += 1;
                if let Some(parent) = serving.reply_to {
                    let fault = Fault::new("TxnResolved", format!("{txn} resolved at {}", self.id));
                    let _ = self.send_reliable(ctx, parent, TxnMsg::Fault { txn, inv: serving.inv, fault });
                }
            }
            return;
        }
        let Some(def) = self.registry.get(&method) else {
            self.fail_serving(ctx, serving_inv, Fault::no_such_service(method));
            return;
        };
        let def = def.clone();
        match def.execute(&params, &mut self.repo) {
            Err(fault) => {
                self.stats.faults_raised += 1;
                self.fail_serving(ctx, serving_inv, fault);
            }
            Ok(resp) => {
                let doc = self.service_doc(&method);
                if let Some(doc) = &doc {
                    if !self.guard_effects(txn, doc, &resp.effects) {
                        let fault = Fault::new("IsolationConflict", format!("{txn} conflicts on {doc}"));
                        self.fail_serving(ctx, serving_inv, fault);
                        return;
                    }
                }
                if let Some(doc) = doc {
                    if self.contexts.contains_key(&txn) {
                        if !resp.effects.is_empty() {
                            let logged = self.journal_append(
                                ctx,
                                JournalEntry::Local {
                                    txn,
                                    doc: doc.clone(),
                                    op_label: method.clone(),
                                    effects: resp.effects.clone(),
                                },
                            );
                            if !logged {
                                // Effect barrier (see apply_child_items):
                                // undo the just-applied effects and fail
                                // the serving through the normal §3.2
                                // abort path.
                                if let Some(document) = self.repo.get_mut(&doc) {
                                    let inverse = compensation_for_effects(&resp.effects);
                                    let _ = crate::compensate::apply_compensation(document, &inverse);
                                }
                                let fault = Fault::new("StorageFault", format!("journal append failed at {}", self.id));
                                self.fail_serving(ctx, serving_inv, fault);
                                return;
                            }
                        }
                        if let Some(tc) = self.contexts.get_mut(&txn) {
                            tc.record_local(doc, method.clone(), resp.effects.clone());
                        }
                    }
                }
                self.finish_serving(ctx, serving_inv, resp.items);
            }
        }
    }

    /// Ships a successful serving's results. (Spec rule **R04**; after
    /// the resolve the frame is terminal — invariant I3 forbids any
    /// further activity under this transaction.)
    fn finish_serving(&mut self, ctx: &mut Ctx<'_, TxnMsg>, serving_inv: InvocationId, items: Vec<Fragment>) {
        let Some(serving) = self.servings.remove(&serving_inv) else { return };
        let txn = serving.txn;
        self.stats.completed += 1;
        let comp: CompBundle = if self.config.peer_independent {
            let mut bundle = Vec::new();
            if let Some(tc) = self.contexts.get(&txn) {
                let own = tc.own_compensation();
                if !own.is_empty() {
                    bundle.push((self.id, own));
                }
                bundle.extend(tc.child_compensations());
            }
            bundle
        } else {
            Vec::new()
        };
        match serving.reply_to {
            None => {
                // Origin root: the transaction commits. With chaining on,
                // fan the Commit out to *every* chained participant (the
                // gossiped active list) — a dead intermediate peer then
                // cannot cut its descendants off from the decision.
                // Without chaining, cascade through direct invokees only.
                let mut targets = self.contexts.get(&txn).map(|tc| tc.invoked_peers()).unwrap_or_default();
                if self.config.chaining {
                    if let Some(tc) = self.contexts.get(&txn) {
                        for p in tc.chain.all_peers() {
                            if !targets.contains(&p) {
                                targets.push(p);
                            }
                        }
                    }
                }
                let mut resolved = false;
                if let Some(tc) = self.contexts.get_mut(&txn) {
                    tc.resolve(TxnState::Committed, ctx.now());
                    self.outcomes.push(TxnOutcome {
                        txn,
                        committed: true,
                        started_at: tc.created_at,
                        resolved_at: ctx.now(),
                    });
                    resolved = true;
                }
                if resolved {
                    self.journal_append_forced(ctx, JournalEntry::Resolved { txn, committed: true, at: ctx.now() });
                    self.emit(ctx, Some(txn), Some(serving.inv), None, EventKind::Resolve { committed: true });
                    self.prune_seen(ctx, false);
                }
                self.results.insert(txn, items);
                for peer in targets {
                    if peer != self.id {
                        let _ = self.send_reliable(ctx, peer, TxnMsg::Commit { txn });
                    }
                }
            }
            Some(parent) => {
                self.completed_results.insert(txn, (serving.method.clone(), items.clone(), comp.clone()));
                let chain = self.current_chain(txn);
                self.emit(ctx, Some(txn), Some(serving.inv), None, EventKind::ResultReturn { to: parent.0 });
                let msg = TxnMsg::Result { txn, inv: serving.inv, items: items.clone(), comp: comp.clone(), chain };
                if self.send_reliable(ctx, parent, msg).is_err() {
                    // Scenario (b): parent disconnected, detected while
                    // returning results.
                    self.record_detection(ctx, parent, DetectHow::SendFailure);
                    self.reroute_past_dead_parent(ctx, txn, parent, &serving.method, items, comp);
                } else {
                    // Our effects are live until the parent resolves the
                    // transaction — keep-alive-watch it so a parent that
                    // vanishes mid-protocol is *detected* here, not just
                    // hoped about (scenario (b) from the orphan's side).
                    // A re-join may have a different parent (replica
                    // re-invocation): move the watch over.
                    match self.parent_watch.insert(txn, parent) {
                        Some(old) if old != parent => {
                            self.unwatch(old);
                            self.watch(ctx, parent);
                        }
                        Some(_) => {}
                        None => self.watch(ctx, parent),
                    }
                }
            }
        }
    }

    /// Scenario (b): the parent is gone; re-route results to the nearest
    /// reachable ancestor from the chain (falling back to the closest
    /// super peer), or discard without chaining.
    fn reroute_past_dead_parent(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        txn: TxnId,
        dead_parent: PeerId,
        method: &str,
        items: Vec<Fragment>,
        comp: CompBundle,
    ) {
        // Whatever happens below, this result is now either delivered via
        // Redirected or discarded — don't re-offer it on later notices.
        // The dead parent will never resolve us; stop watching it.
        self.completed_results.remove(&txn);
        self.release_parent_watch(txn);
        if !self.config.chaining {
            // "Traditional recovery would lead to AP6 discarding its work."
            self.stats.work_wasted += 1;
            self.abort_local(ctx, txn);
            self.propagate_abort(ctx, txn, None);
            return;
        }
        let chain =
            self.contexts.get(&txn).map(|tc| tc.chain.clone()).unwrap_or_else(|| ActiveList::new(self.id, false));
        let mut candidates: Vec<PeerId> =
            chain.ancestors_of(self.id).into_iter().filter(|p| *p != dead_parent).collect();
        if let Some(sp) = chain.closest_super_ancestor(self.id) {
            if !candidates.contains(&sp) {
                candidates.push(sp);
            }
        }
        for target in candidates {
            let msg = TxnMsg::Redirected {
                txn,
                failed_parent: dead_parent,
                method: method.to_string(),
                items: items.clone(),
                comp: comp.clone(),
            };
            if self.send_reliable(ctx, target, msg).is_ok() {
                self.stats.redirects_sent += 1;
                return;
            }
            self.record_detection(ctx, target, DetectHow::SendFailure);
        }
        // No reachable ancestor at all.
        self.stats.work_wasted += 1;
        self.abort_local(ctx, txn);
        self.propagate_abort(ctx, txn, None);
    }

    // ------------------------------------------------------------------
    // Results and faults from children.
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_result(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        from: PeerId,
        txn: TxnId,
        inv: InvocationId,
        items: Vec<Fragment>,
        comp: CompBundle,
        chain: ActiveList,
    ) {
        let Some(wc) = self.waiting.remove(&inv) else {
            // Unwanted work (the invocation was aborted/superseded): tell
            // the sender to abort so its effects do not linger.
            self.stats.late_messages += 1;
            let _ = self.send_reliable(ctx, from, TxnMsg::Abort { txn });
            return;
        };
        self.unwatch(from);
        if self.contexts.contains_key(&txn) {
            self.journal_append_forced(ctx, JournalEntry::RemoteCompleted { txn, inv, comp: comp.clone() });
        }
        if let Some(tc) = self.contexts.get_mut(&txn) {
            tc.complete_remote(inv, comp);
            let merged = merge_chains(&tc.chain, &chain);
            let grew = merged != tc.chain;
            tc.chain = merged;
            if grew {
                self.gossip_chain(ctx, txn, Some(from));
            }
        }
        self.apply_child_items(ctx, txn, wc.serving_inv, &wc.target, &wc.method, &items);
        if let Some(s) = self.servings.get_mut(&wc.serving_inv) {
            s.pending.remove(&inv);
        }
        self.advance_serving(ctx, wc.serving_inv);
    }

    /// A child invocation failed (fault message, failed send, or detected
    /// disconnection): §3.2's recovery decision point. (Spec rule
    /// **R06**: if forward recovery is exhausted, the fault continues up
    /// and the abort cascades down.)
    fn child_failed(&mut self, ctx: &mut Ctx<'_, TxnMsg>, inv: InvocationId, fault: Fault) {
        let Some(mut wc) = self.waiting.remove(&inv) else {
            self.stats.late_messages += 1;
            return;
        };
        self.unwatch(wc.child_peer);
        // NOTE: the failed invocation stays in the serving's `pending` set
        // while a retry/alternative is in flight — otherwise a sibling's
        // result arriving in the gap would make the serving look complete
        // and the service body would run without the redone branch.
        if self.config.recovery == RecoveryStyle::ForwardFirst {
            // 1. The embedded call's fault handlers.
            if let Some(handler) = wc.handlers.iter().find(|h| h.matches(&fault.name)).cloned() {
                match handler.action {
                    axml_doc::HandlerAction::Retry { wait, alternative, .. } if wc.retries_left > 0 => {
                        wc.retries_left -= 1;
                        self.stats.retries += 1;
                        let (to_peer, to_method) = match &alternative {
                            Some(alt) => {
                                (PeerId::from_url(&alt.service_url).unwrap_or(wc.child_peer), alt.method.clone())
                            }
                            None => (wc.child_peer, wc.method.clone()),
                        };
                        let tag = self.alloc_payload_tag(TimerPayload::RetryChild {
                            wc,
                            to_peer,
                            to_method,
                            placeholder: inv,
                        });
                        ctx.set_timer(wait.max(1), tag);
                        return;
                    }
                    axml_doc::HandlerAction::Substitute(frags) => {
                        self.stats.substitutions += 1;
                        let txn = wc.txn;
                        if let Some(s) = self.servings.get_mut(&wc.serving_inv) {
                            s.pending.remove(&inv);
                        }
                        self.apply_child_items(ctx, txn, wc.serving_inv, &wc.target, &wc.method, &frags);
                        self.advance_serving(ctx, wc.serving_inv);
                        return;
                    }
                    _ => {}
                }
            }
            // 2. An alternative provider from the directory ("the system
            //    abandons the failed participant and invokes another
            //    service providing similar functionality").
            if self.config.use_alternative_providers {
                if let Some(alt) = self.directory.alternative_provider(&wc.method, &wc.attempted) {
                    self.stats.alternatives_used += 1;
                    let mut wc2 = wc.clone();
                    wc2.attempted.push(alt);
                    let to_method = wc2.method.clone();
                    let tag = self.alloc_payload_tag(TimerPayload::RetryChild {
                        wc: wc2,
                        to_peer: alt,
                        to_method,
                        placeholder: inv,
                    });
                    ctx.set_timer(1, tag);
                    return;
                }
            }
        }
        // 3. Backward recovery: this serving fails, the abort propagates.
        if let Some(s) = self.servings.get_mut(&wc.serving_inv) {
            s.pending.remove(&inv);
        }
        self.fail_serving(ctx, wc.serving_inv, fault);
    }

    /// Re-issues a waiting child (handler retry or alternative provider).
    #[allow(clippy::too_many_arguments)]
    fn reissue_child(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        mut wc: WaitingChild,
        to_peer: PeerId,
        to_method: String,
        placeholder: InvocationId,
    ) {
        let txn = wc.txn;
        if let Some(s) = self.servings.get_mut(&wc.serving_inv) {
            s.pending.remove(&placeholder);
        }
        if self.contexts.get(&txn).map(|t| t.is_terminal()).unwrap_or(true) {
            return; // aborted meanwhile
        }
        let inv = self.alloc_inv();
        wc.child_peer = to_peer;
        wc.method = to_method.clone();
        if !wc.attempted.contains(&to_peer) {
            wc.attempted.push(to_peer);
        }
        if let Some(tc) = self.contexts.get_mut(&txn) {
            tc.record_remote(to_peer, inv, to_method.clone());
            if self.config.chaining {
                tc.chain.add_invocation(self.id, to_peer, false);
            }
        }
        if self.contexts.contains_key(&txn) {
            self.journal_append_forced(
                ctx,
                JournalEntry::RemoteInvoked { txn, child: to_peer, inv, method: to_method.clone() },
            );
        }
        self.emit(
            ctx,
            Some(txn),
            Some(inv),
            Some(wc.serving_inv),
            EventKind::Invoke { to: to_peer.0, method: to_method.clone() },
        );
        let chain = self.current_chain(txn);
        let prefilled = self.prefill_store.get(&txn).cloned().unwrap_or_default();
        let msg = TxnMsg::Invoke { txn, inv, method: to_method, params: wc.params.clone(), chain, prefilled };
        let serving_inv = wc.serving_inv;
        self.waiting.insert(inv, wc);
        if let Some(s) = self.servings.get_mut(&serving_inv) {
            s.pending.insert(inv);
        }
        match self.send_reliable(ctx, to_peer, msg) {
            Ok(()) => self.watch(ctx, to_peer),
            Err(_) => {
                self.record_detection(ctx, to_peer, DetectHow::SendFailure);
                self.child_failed(ctx, inv, Fault::peer_unreachable(format!("{to_peer} unreachable")));
            }
        }
    }

    // ------------------------------------------------------------------
    // Abort / compensation (§3.2).
    // ------------------------------------------------------------------

    /// A serving cannot complete: abort the local context and propagate
    /// per the nested recovery protocol. (Spec rule **R05**: the fault
    /// travels up to the invoker as a `Fault` message.)
    fn fail_serving(&mut self, ctx: &mut Ctx<'_, TxnMsg>, serving_inv: InvocationId, fault: Fault) {
        let Some(serving) = self.servings.remove(&serving_inv) else { return };
        let txn = serving.txn;
        // Cancel the serving's outstanding children (they are told to
        // abort below, via propagate_abort — they are invoked peers).
        let pending: Vec<InvocationId> = serving.pending.iter().copied().collect();
        for inv in pending {
            if let Some(wc) = self.waiting.remove(&inv) {
                self.unwatch(wc.child_peer);
            }
        }
        // Abort locally (compensate own effects)…
        self.abort_local(ctx, txn);
        // …tell every other invoked peer…
        self.propagate_abort(ctx, txn, None);
        // …and notify the invoker (the upward "Abort TA" with the fault).
        match serving.reply_to {
            Some(parent) => {
                self.stats.aborts_sent += 1;
                self.emit(ctx, Some(txn), Some(serving.inv), None, EventKind::FaultRaise { to: parent.0 });
                if self.send_reliable(ctx, parent, TxnMsg::Fault { txn, inv: serving.inv, fault }).is_err() {
                    self.record_detection(ctx, parent, DetectHow::SendFailure);
                    // Route the bad news past the dead parent.
                    self.notice_ancestors(ctx, txn, parent);
                }
            }
            None => {
                // Origin: the transaction is aborted.
                if let Some(tc) = self.contexts.get(&txn) {
                    let started = tc.created_at;
                    self.outcomes.push(TxnOutcome {
                        txn,
                        committed: false,
                        started_at: started,
                        resolved_at: ctx.now(),
                    });
                }
            }
        }
    }

    /// Compensates this peer's own effects from its log and marks the
    /// context aborted. (Spec rules **R06**/**R08**: undo runs in
    /// strictly decreasing log order — invariant I2.)
    fn abort_local(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId) {
        let mut batches = {
            let Some(tc) = self.contexts.get_mut(&txn) else { return };
            if tc.is_terminal() {
                return;
            }
            let batches = tc.own_compensation_indexed();
            tc.resolve(TxnState::Aborted, ctx.now());
            batches
        };
        self.journal_append_forced(ctx, JournalEntry::Resolved { txn, committed: false, at: ctx.now() });
        self.emit(ctx, Some(txn), None, None, EventKind::Resolve { committed: false });
        self.prune_seen(ctx, false);
        self.release_parent_watch(txn);
        self.completed_results.remove(&txn);
        self.conflicts.release(txn);
        if !batches.is_empty() {
            if self.config.compensate_in_log_order {
                // Test-only broken variant: undo in forward order so the
                // online monitor's §3.1 reverse-order rule has a target.
                batches.reverse();
            }
            let actions: u64 = batches.iter().map(|(_, _, a)| a.len() as u64).sum();
            self.emit(ctx, Some(txn), None, None, EventKind::CompensateDerive { actions });
            for (undoes, doc, acts) in &batches {
                let mut cost = 0usize;
                if let Some(document) = self.repo.get_mut(doc) {
                    if let Ok(c) = crate::compensate::apply_compensation(document, acts) {
                        cost = c;
                    }
                }
                self.stats.comp_cost_nodes += cost as u64;
                if ctx.tracing() {
                    self.emit(
                        ctx,
                        Some(txn),
                        None,
                        None,
                        EventKind::CompensateOp { doc: doc.clone(), undoes: *undoes, actions: acts.len() as u64 },
                    );
                }
            }
            self.emit(ctx, Some(txn), None, None, EventKind::CompensateApply { actions });
            self.stats.compensations_executed += 1;
        }
        self.drop_txn_work(ctx, txn);
    }

    /// Drops every live serving and wait of an aborted `txn`, faulting
    /// the dropped servings' invokers (`TxnResolved`) so they recover
    /// instead of waiting on a reply forever. Must run whenever an abort
    /// decision lands while work for the transaction is still in flight
    /// — both on a locally decided abort and on a received compensation:
    /// a stale `Compensate` (reordered past a re-invocation) that left
    /// the servings alive would let late child results materialize
    /// effects into the already-aborted context, effects nothing will
    /// ever compensate.
    fn drop_txn_work(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId) {
        let dead_servings: Vec<InvocationId> =
            self.servings.iter().filter(|(_, s)| s.txn == txn).map(|(i, _)| *i).collect();
        for inv in dead_servings {
            if let Some(serving) = self.servings.remove(&inv) {
                self.stats.work_wasted += 1;
                if let Some(parent) = serving.reply_to {
                    let fault = Fault::new("TxnResolved", format!("{txn} aborted at {}", self.id));
                    let _ = self.send_reliable(ctx, parent, TxnMsg::Fault { txn, inv: serving.inv, fault });
                }
            }
        }
        let dead_waits: Vec<InvocationId> =
            self.waiting.iter().filter(|(_, w)| w.txn == txn).map(|(i, _)| *i).collect();
        for inv in dead_waits {
            if let Some(wc) = self.waiting.remove(&inv) {
                self.unwatch(wc.child_peer);
            }
        }
    }

    fn execute_compensation(&mut self, comp: &CompensatingService) -> usize {
        let mut cost = 0usize;
        for (doc, actions) in &comp.actions {
            if let Some(document) = self.repo.get_mut(doc) {
                if let Ok(c) = crate::compensate::apply_compensation(document, actions) {
                    cost += c;
                }
            }
        }
        cost
    }

    /// Sends abort/compensate messages to every peer this context invoked.
    /// (Spec rule **R07**; invariant I4 requires each of these aborts to
    /// land — resolve the target — or be absorbed by churn.)
    fn propagate_abort(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, skip: Option<PeerId>) {
        let Some(tc) = self.contexts.get(&txn) else { return };
        if self.config.peer_independent {
            // Drive compensation directly using the collected definitions;
            // peers without a collected definition get a plain Abort.
            let bundles = tc.child_compensations();
            let mut covered: BTreeSet<PeerId> = BTreeSet::new();
            let mut to_send: Vec<(PeerId, CompensatingService)> = Vec::new();
            for (peer, cs) in bundles {
                covered.insert(peer);
                to_send.push((peer, cs));
            }
            let invoked = tc.invoked_peers();
            for (peer, cs) in to_send {
                if Some(peer) == skip || peer == self.id {
                    if peer == self.id {
                        // Our own bundle entry (if any) is our own log —
                        // already compensated by abort_local.
                        continue;
                    }
                    continue;
                }
                self.stats.aborts_sent += 1;
                self.emit(ctx, Some(txn), None, None, EventKind::AbortPropagate { to: peer.0 });
                if self.send_reliable(ctx, peer, TxnMsg::Compensate { txn, service: cs.clone() }).is_err() {
                    // Original peer gone: run it on a replica if one holds
                    // the documents (structural addressing makes this
                    // possible — the peer-independent payoff of E7).
                    self.record_detection(ctx, peer, DetectHow::SendFailure);
                    let mut sent = false;
                    for (doc, _) in &cs.actions {
                        if let Some(rep) = self.directory.alternative_replica(doc, &[peer, self.id]) {
                            if self.send_reliable(ctx, rep, TxnMsg::Compensate { txn, service: cs.clone() }).is_ok() {
                                sent = true;
                                break;
                            }
                        }
                    }
                    if !sent {
                        // Compensation lost — atomicity violated (counted
                        // by the harness via document divergence).
                    }
                }
            }
            for peer in invoked {
                if Some(peer) == skip || peer == self.id || covered.contains(&peer) {
                    continue;
                }
                self.stats.aborts_sent += 1;
                self.emit(ctx, Some(txn), None, None, EventKind::AbortPropagate { to: peer.0 });
                let _ = self.send_reliable(ctx, peer, TxnMsg::Abort { txn });
            }
        } else {
            for peer in tc.invoked_peers() {
                if Some(peer) == skip || peer == self.id {
                    continue;
                }
                self.stats.aborts_sent += 1;
                self.emit(ctx, Some(txn), None, None, EventKind::AbortPropagate { to: peer.0 });
                let _ = self.send_reliable(ctx, peer, TxnMsg::Abort { txn });
            }
        }
    }

    /// Delivers an `Abort`: abort locally, then continue the downward
    /// cascade. (Spec rules **R06**/**R07**.)
    fn handle_abort(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, _from: PeerId) {
        self.stats.aborts_received += 1;
        if !self.contexts.contains_key(&txn) {
            // Tombstone: the Abort can overtake the Invoke (message
            // latencies are independent). Recording a terminal context
            // makes the late Invoke get refused instead of resurrecting
            // the transaction.
            let mut t = TransactionContext::new(txn, None, ActiveList::new(txn.origin, false), ctx.now());
            t.resolve(TxnState::Aborted, ctx.now());
            self.journal_append_forced(
                ctx,
                JournalEntry::Begin { txn, parent: None, chain: t.chain.clone(), at: ctx.now() },
            );
            self.journal_append_forced(ctx, JournalEntry::Resolved { txn, committed: false, at: ctx.now() });
            // The tombstone is a terminal decision: emit it, so abort
            // reachability is visible to the online monitor even when the
            // Abort overtook the Invoke.
            self.emit(ctx, Some(txn), None, None, EventKind::Resolve { committed: false });
            self.contexts.insert(txn, t);
            return;
        }
        if self.contexts.get(&txn).map(|t| t.is_terminal()).unwrap_or(true) {
            return;
        }
        self.abort_local(ctx, txn);
        self.propagate_abort(ctx, txn, None);
    }

    /// Delivers a `Commit` from the parent and cascades it to invokees.
    /// (Spec rule **R09**.)
    fn handle_commit(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId) {
        {
            let Some(tc) = self.contexts.get_mut(&txn) else { return };
            if tc.is_terminal() {
                return;
            }
            tc.resolve(TxnState::Committed, ctx.now());
        }
        self.journal_append_forced(ctx, JournalEntry::Resolved { txn, committed: true, at: ctx.now() });
        self.emit(ctx, Some(txn), None, None, EventKind::Resolve { committed: true });
        self.prune_seen(ctx, false);
        self.release_parent_watch(txn);
        let invoked = self.contexts.get(&txn).map(|tc| tc.invoked_peers()).unwrap_or_default();
        for peer in invoked {
            if peer != self.id {
                let _ = self.send_reliable(ctx, peer, TxnMsg::Commit { txn });
            }
        }
        self.stream_last.retain(|(t, _), _| *t != txn);
        self.completed_results.remove(&txn);
        self.conflicts.release(txn);
        // Residual work for a committed transaction (possible when a
        // recovery redo raced the commit) is moot: drop it and release
        // the failure detector.
        let dead_servings: Vec<InvocationId> =
            self.servings.iter().filter(|(_, s)| s.txn == txn).map(|(i, _)| *i).collect();
        for inv in dead_servings {
            self.servings.remove(&inv);
        }
        let dead_waits: Vec<InvocationId> =
            self.waiting.iter().filter(|(_, w)| w.txn == txn).map(|(i, _)| *i).collect();
        for inv in dead_waits {
            if let Some(wc) = self.waiting.remove(&inv) {
                self.unwatch(wc.child_peer);
            }
        }
    }

    /// Executes a received compensating service — statelessly, as §3.2
    /// prescribes. (Spec rule **R08**.)
    fn handle_compensate(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, service: CompensatingService) {
        let actions: u64 = service.actions.iter().map(|(_, a)| a.len() as u64).sum();
        let cost = self.execute_compensation(&service);
        self.emit(ctx, Some(txn), None, None, EventKind::CompensateApply { actions });
        self.stats.compensations_executed += 1;
        self.stats.comp_cost_nodes += cost as u64;
        // Mark the context resolved *without* self-compensating: the
        // compensation just ran. Create a tombstone if we never saw the
        // transaction (replica-targeted compensation).
        if !self.contexts.contains_key(&txn) {
            let t = TransactionContext::new(txn, None, ActiveList::new(txn.origin, false), ctx.now());
            self.journal_append_forced(
                ctx,
                JournalEntry::Begin { txn, parent: None, chain: t.chain.clone(), at: ctx.now() },
            );
            self.contexts.insert(txn, t);
        }
        let resolved = {
            let tc = self.contexts.get_mut(&txn).expect("inserted above");
            if tc.is_terminal() {
                false
            } else {
                tc.resolve(TxnState::Aborted, ctx.now());
                true
            }
        };
        if resolved {
            self.journal_append_forced(ctx, JournalEntry::Resolved { txn, committed: false, at: ctx.now() });
            self.emit(ctx, Some(txn), None, None, EventKind::Resolve { committed: false });
            self.prune_seen(ctx, false);
            self.drop_txn_work(ctx, txn);
        }
        self.release_parent_watch(txn);
        self.conflicts.release(txn);
    }

    // ------------------------------------------------------------------
    // Disconnection handling (§3.3).
    // ------------------------------------------------------------------

    fn record_detection(&mut self, ctx: &mut Ctx<'_, TxnMsg>, peer: PeerId, how: DetectHow) {
        let d = Detection { disconnected: peer, at: ctx.now(), how };
        // Concurrent notices about the same disconnection arrive in
        // bursts; keep one record per (peer, mechanism, instant).
        if self.stats.detections.last() != Some(&d) && !self.stats.detections.contains(&d) {
            self.emit(ctx, None, None, None, EventKind::Detect { peer: peer.0, how: how.label().to_string() });
            self.stats.detections.push(d);
        }
    }

    /// A watched child stopped responding (scenarios (a)/(c)).
    fn on_child_disconnected(&mut self, ctx: &mut Ctx<'_, TxnMsg>, peer: PeerId, how: DetectHow) {
        self.record_detection(ctx, peer, how);
        self.monitor.unwatch(peer);
        self.watch_counts.remove(&peer);
        // Every outstanding invocation on that peer fails.
        let affected: Vec<InvocationId> =
            self.waiting.iter().filter(|(_, w)| w.child_peer == peer).map(|(i, _)| *i).collect();
        // Scenario (c) chaining: warn the disconnected peer's descendants
        // before recovering, so they stop wasting effort / offer reuse.
        if self.config.chaining {
            let txns: BTreeSet<TxnId> = affected.iter().filter_map(|i| self.waiting.get(i)).map(|w| w.txn).collect();
            for txn in txns {
                let descs: Vec<PeerId> =
                    self.contexts.get(&txn).map(|tc| tc.chain.descendants_of(peer)).unwrap_or_default();
                for desc in descs {
                    let _ = self.send_reliable(ctx, desc, TxnMsg::DisconnectNotice { txn, disconnected: peer });
                }
            }
        }
        for inv in affected {
            self.child_failed(ctx, inv, Fault::peer_unreachable(format!("{peer} disconnected")));
        }
        // The dead peer may also be a *parent* we keep-alive-watched while
        // a completed serving awaited its resolution (scenario (b) caught
        // by ping timeout rather than send failure). Orphaned work is
        // re-offered up the chain — or aborted — exactly as a chained
        // disconnect notice would have it; it must never sit forever on a
        // peer whose consumer is gone.
        let orphaned: Vec<TxnId> = self.parent_watch.iter().filter(|(_, p)| **p == peer).map(|(t, _)| *t).collect();
        for txn in orphaned {
            self.parent_watch.remove(&txn);
            if self.contexts.get(&txn).map(|t| t.is_terminal()).unwrap_or(true) {
                continue;
            }
            let mine: Vec<InvocationId> = self.servings.iter().filter(|(_, s)| s.txn == txn).map(|(i, _)| *i).collect();
            if !mine.is_empty() {
                self.stats.orphan_stops += 1;
                self.abort_local(ctx, txn);
                self.propagate_abort(ctx, txn, None);
            } else if let Some((method, items, comp)) = self.completed_results.remove(&txn) {
                self.reroute_past_dead_parent(ctx, txn, peer, &method, items, comp);
            }
        }
    }

    /// A re-routed result from an orphaned descendant (scenario (b)).
    #[allow(clippy::too_many_arguments)]
    fn handle_redirected(
        &mut self,
        ctx: &mut Ctx<'_, TxnMsg>,
        from: PeerId,
        txn: TxnId,
        failed_parent: PeerId,
        method: String,
        items: Vec<Fragment>,
        comp: CompBundle,
    ) {
        self.stats.redirects_received += 1;
        self.record_detection(ctx, failed_parent, DetectHow::Notice);
        // If the transaction already aborted here, the orphan's work is
        // unwanted: tell it to abort (and compensate) itself. Without
        // this, an orphan whose Redirected loses the race against the
        // abort would keep its effects forever.
        if self.contexts.get(&txn).map(|t| t.is_terminal()).unwrap_or(false) {
            if self.config.peer_independent && !comp.is_empty() {
                for (peer, cs) in comp {
                    let _ = self.send_reliable(ctx, peer, TxnMsg::Compensate { txn, service: cs });
                }
            } else {
                let _ = self.send_reliable(ctx, from, TxnMsg::Abort { txn });
            }
            return;
        }
        // Keep the orphan's results for reuse when re-invoking the dead
        // peer's service, and its compensation bundle for abort-time.
        self.prefill_store.entry(txn).or_default().push((method.clone(), items));
        let orphan_inv = self.alloc_inv();
        if self.contexts.contains_key(&txn) {
            self.journal_append_forced(
                ctx,
                JournalEntry::RemoteInvoked { txn, child: from, inv: orphan_inv, method: method.clone() },
            );
            self.journal_append_forced(ctx, JournalEntry::RemoteCompleted { txn, inv: orphan_inv, comp: comp.clone() });
        }
        if let Some(tc) = self.contexts.get_mut(&txn) {
            tc.record_orphan_comp(from, orphan_inv, method, comp);
        }
        // Now treat the dead parent like a disconnected child (it may or
        // may not be one of ours; if it is, recovery starts here).
        self.on_child_disconnected(ctx, failed_parent, DetectHow::Notice);
    }

    /// A disconnect notice from the chain (scenarios (b)/(c)/(d)).
    fn handle_notice(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, disconnected: PeerId) {
        self.record_detection(ctx, disconnected, DetectHow::Notice);
        let Some(tc) = self.contexts.get(&txn) else { return };
        if tc.is_terminal() {
            return;
        }
        let my_parent = tc.parent.map(|(p, _)| p);
        if self.waiting.values().any(|w| w.child_peer == disconnected && w.txn == txn) {
            // It's one of our children: recover.
            self.on_child_disconnected(ctx, disconnected, DetectHow::Notice);
            return;
        }
        if my_parent == Some(disconnected) {
            // Our consumer is gone: our work for this txn is orphaned.
            let mine: Vec<InvocationId> = self.servings.iter().filter(|(_, s)| s.txn == txn).map(|(i, _)| *i).collect();
            if !mine.is_empty() {
                self.stats.orphan_stops += 1;
                self.abort_local(ctx, txn);
                // Abort our own invokees too (they are orphaned with us).
                self.propagate_abort(ctx, txn, None);
            } else if let Some((method, items, comp)) = self.completed_results.remove(&txn) {
                // We completed, but our result may have been consumed by
                // the dead peer (or dropped in flight): re-offer the work
                // up the chain so it can be reused — or aborted, if the
                // transaction already failed above us.
                self.reroute_past_dead_parent(ctx, txn, disconnected, &method, items, comp);
            }
        }
    }

    /// Sibling stream upkeep + silence detection (scenario (d)).
    fn stream_tick(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        let Some(interval) = self.config.stream_interval else {
            self.stream_running = false;
            return;
        };
        let active_txns: BTreeSet<TxnId> = self.servings.values().map(|s| s.txn).collect();
        if active_txns.is_empty() {
            self.stream_running = false;
            return;
        }
        for txn in &active_txns {
            let Some(tc) = self.contexts.get(txn) else { continue };
            if tc.is_terminal() {
                continue;
            }
            let siblings = tc.chain.siblings_of(self.id);
            for sib in siblings {
                self.stream_seq += 1;
                let seq = self.stream_seq;
                if ctx.send(sib, TxnMsg::StreamData { txn: *txn, seq }).is_err() {
                    // Scenario (d): sibling gone, detected by the stream.
                    self.on_sibling_disconnected(ctx, *txn, sib, DetectHow::SendFailure);
                }
            }
        }
        // Silence check: a sibling we have heard from before going quiet.
        let now = ctx.now();
        let silent: Vec<(TxnId, PeerId)> = self
            .stream_last
            .iter()
            .filter(|((txn, _), last)| active_txns.contains(txn) && now.saturating_sub(**last) > interval * 3)
            .map(|((t, p), _)| (*t, *p))
            .collect();
        for (txn, peer) in silent {
            self.stream_last.remove(&(txn, peer));
            self.on_sibling_disconnected(ctx, txn, peer, DetectHow::StreamSilence);
        }
        ctx.set_timer(interval, TAG_STREAM);
        self.stream_running = true;
    }

    fn maybe_start_stream(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        if let Some(interval) = self.config.stream_interval {
            if !self.stream_running {
                self.stream_running = true;
                ctx.set_timer(interval, TAG_STREAM);
            }
        }
    }

    /// Scenario (d): a sibling was detected disconnected; notify its
    /// parent and children from the chain — they then run (b)/(c).
    fn on_sibling_disconnected(&mut self, ctx: &mut Ctx<'_, TxnMsg>, txn: TxnId, dead: PeerId, how: DetectHow) {
        self.record_detection(ctx, dead, how);
        if !self.config.chaining {
            return;
        }
        let Some(tc) = self.contexts.get(&txn) else { return };
        let chain = tc.chain.clone();
        if let Some(parent) = chain.parent_of(dead) {
            let _ = self.send_reliable(ctx, parent, TxnMsg::DisconnectNotice { txn, disconnected: dead });
        }
        for child in chain.children_of(dead) {
            let _ = self.send_reliable(ctx, child, TxnMsg::DisconnectNotice { txn, disconnected: dead });
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery (presumed abort from the durability journal).
    // ------------------------------------------------------------------

    /// Rebuilds the peer after a crash-restart. All volatile state is
    /// wiped (the simulator already discarded our timers and in-flight
    /// messages to us); contexts are replayed from the durability
    /// journal — the model of stable storage — and every in-doubt
    /// context is *presumed aborted*: its own effects are compensated
    /// against the repository, the resolution is journaled (so a second
    /// crash does not re-compensate), and the abort is pushed to the
    /// parent (upward `Fault`) and the invoked subtree. (Spec rule
    /// **R10**: the restart opens a fresh epoch; obligations from the
    /// crashed epoch are excused, not forgotten.)
    fn crash_recover(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        self.stats.crash_recoveries += 1;
        self.servings.clear();
        self.waiting.clear();
        self.timers.clear();
        self.watch_counts.clear();
        self.parent_watch.clear();
        self.monitor = PingMonitor::new(self.config.ping_interval.max(1), self.config.ping_timeout.max(1));
        self.ping_running = false;
        self.stream_running = false;
        self.stream_seq = 0;
        self.stream_last.clear();
        self.prefill_store.clear();
        self.completed_results.clear();
        self.conflicts = ConflictTable::new();
        self.outbox.clear();
        self.seen_deliveries.clear();
        // Namespace freshly minted ids by the new incarnation so nothing
        // we allocate collides with a pre-crash id still circulating.
        self.epoch = ctx.incarnation();
        self.next_inv = 0;
        self.next_txn = 0;
        self.next_delivery = 0;
        self.next_tag = TAG_PAYLOAD_BASE;
        // Stable storage: the sink (not any in-memory copy) decides what
        // survived the crash — with an on-disk WAL this scans the segment
        // files, discards a torn tail, and returns the clean prefix. The
        // mirror is reset to exactly that, then contexts are replayed
        // from it. A re-begun transaction yields two contexts for one
        // txn; the map insert order keeps the latest incarnation.
        self.journal = self.sink.crash_restart();
        let mut contexts = durability::replay(&self.journal).unwrap_or_default();
        let outcome = durability::recover_in_doubt(&mut contexts, &mut self.repo, ctx.now());
        self.stats.presumed_aborts += outcome.presumed_aborted.len() as u64;
        self.emit(ctx, None, None, None, EventKind::Restart { presumed_aborts: outcome.presumed_aborted.len() as u64 });
        self.contexts = contexts.into_iter().map(|t| (t.txn, t)).collect();
        for txn in &outcome.presumed_aborted {
            self.journal_append_forced(ctx, JournalEntry::Resolved { txn: *txn, committed: false, at: ctx.now() });
        }
        for txn in outcome.presumed_aborted {
            let parent = self.contexts.get(&txn).and_then(|t| t.parent);
            let started = self.contexts.get(&txn).map(|t| t.created_at).unwrap_or(0);
            match parent {
                Some((pp, inv)) => {
                    // The invoker must learn its child's work is undone.
                    let fault = Fault::peer_unreachable(format!("{} crashed; presumed abort", self.id));
                    let _ = self.send_reliable(ctx, pp, TxnMsg::Fault { txn, inv, fault });
                }
                None if txn.origin == self.id => {
                    self.outcomes.push(TxnOutcome {
                        txn,
                        committed: false,
                        started_at: started,
                        resolved_at: ctx.now(),
                    });
                }
                None => {}
            }
            // Invoked peers (and collected compensations) are in the
            // replayed log: push the abort down the tree.
            self.propagate_abort(ctx, txn, None);
        }
        // Contexts that were already aborted on disk may have died with
        // abort propagation still in flight: the crash killed the retry
        // timers, and a partitioned child might not have heard yet.
        // Presumed abort makes re-sending safe (children absorb repeats
        // via tombstones), so re-establish the obligation for every
        // recovered aborted context with remote children in its log.
        for txn in outcome.already_terminal {
            if self.contexts.get(&txn).is_some_and(|t| t.state == TxnState::Aborted) {
                self.propagate_abort(ctx, txn, None);
            }
        }
    }

    // ------------------------------------------------------------------
    // Keep-alive.
    // ------------------------------------------------------------------

    fn watch(&mut self, ctx: &mut Ctx<'_, TxnMsg>, peer: PeerId) {
        if peer == self.id {
            return;
        }
        *self.watch_counts.entry(peer).or_insert(0) += 1;
        if !self.monitor.is_watching(peer) {
            self.monitor.watch(peer, ctx.now());
        }
        if self.config.ping_interval > 0 && !self.ping_running {
            self.ping_running = true;
            ctx.set_timer(self.config.ping_interval, TAG_PING);
        }
    }

    fn unwatch(&mut self, peer: PeerId) {
        if let Some(count) = self.watch_counts.get_mut(&peer) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.watch_counts.remove(&peer);
                self.monitor.unwatch(peer);
            }
        }
    }

    fn ping_tick(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        let watched = self.monitor.watched();
        if watched.is_empty() {
            self.ping_running = false;
            return;
        }
        let mut dead = Vec::new();
        for peer in watched {
            if ctx.send(peer, TxnMsg::Ping).is_err() {
                dead.push(peer);
            }
        }
        for peer in dead {
            self.on_child_disconnected(ctx, peer, DetectHow::PingTimeout);
        }
        // Reusable buffer (taken, not borrowed: `on_child_disconnected`
        // needs `&mut self` while we iterate).
        let mut suspects = std::mem::take(&mut self.suspect_buf);
        self.monitor.suspects_into(ctx.now(), &mut suspects);
        for &peer in &suspects {
            self.on_child_disconnected(ctx, peer, DetectHow::PingTimeout);
        }
        suspects.clear();
        self.suspect_buf = suspects;
        ctx.set_timer(self.config.ping_interval, TAG_PING);
    }
}

struct NeedParams(Vec<ServiceCall>);

/// The transaction a protocol message belongs to (`None` for transport
/// traffic: pings, acks). Drives trace attribution and dedup pruning.
fn txn_of(msg: &TxnMsg) -> Option<TxnId> {
    match msg {
        TxnMsg::Invoke { txn, .. }
        | TxnMsg::Result { txn, .. }
        | TxnMsg::Fault { txn, .. }
        | TxnMsg::Abort { txn }
        | TxnMsg::Commit { txn }
        | TxnMsg::Compensate { txn, .. }
        | TxnMsg::Redirected { txn, .. }
        | TxnMsg::DisconnectNotice { txn, .. }
        | TxnMsg::StreamData { txn, .. }
        | TxnMsg::ChainUpdate { txn, .. } => Some(*txn),
        TxnMsg::Reliable { inner, .. } => txn_of(inner),
        TxnMsg::Ping | TxnMsg::Pong | TxnMsg::Ack { .. } => None,
    }
}

/// Merges two active lists: edges present in either appear in the result
/// (`a` is the base; unknown edges from `b` are grafted in).
fn merge_chains(a: &ActiveList, b: &ActiveList) -> ActiveList {
    let mut out = a.clone();
    if !out.contains(b.root.peer) {
        // Disjoint roots: keep ours (shouldn't happen within one txn).
        return out;
    }
    fn graft(out: &mut ActiveList, node: &crate::chain::ChainNode) {
        for child in &node.children {
            out.add_invocation(node.peer, child.peer, child.is_super);
            if child.is_super {
                out.mark_super(child.peer);
            }
            graft(out, child);
        }
    }
    graft(&mut out, &b.root);
    if b.root.is_super {
        out.mark_super(b.root.peer);
    }
    out
}

impl Actor<TxnMsg> for AxmlPeer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, TxnMsg>, from: PeerId, msg: TxnMsg) {
        // Any traffic from a peer proves liveness.
        self.monitor.heard_from(from, ctx.now());
        // Strip the at-least-once envelope before protocol dispatch.
        let msg = match msg {
            TxnMsg::Reliable { id, attempt: _, inner } => {
                // Always ack — even re-deliveries, since the original ack
                // may itself have been dropped.
                let _ = ctx.send(from, TxnMsg::Ack { id });
                let txn = txn_of(&inner);
                self.emit(ctx, txn, None, None, EventKind::AckSend { to: from.0, id });
                if self.config.dedup {
                    // Single-pass dedup: one insert both tests and
                    // records. A re-delivery overwrites its own entry
                    // with the identical transaction — harmless — and
                    // leaves the set's size untouched, so the peak and
                    // capacity bookkeeping belong to first sight only.
                    if self.seen_deliveries.insert((from, id), txn).is_some() {
                        self.stats.dup_suppressed += 1;
                        self.emit(ctx, txn, None, None, EventKind::DedupSuppress { from: from.0, id });
                        return;
                    }
                    self.stats.seen_peak = self.stats.seen_peak.max(self.seen_deliveries.len() as u64);
                    if self.seen_deliveries.len() > self.config.dedup_capacity {
                        self.prune_seen(ctx, true);
                    }
                }
                *inner
            }
            TxnMsg::Ack { id } => {
                if let Some(mut pending) = self.outbox.remove(&id) {
                    // The delivery is settled: its retransmit timer must
                    // die with it, or the stale firing would re-enter
                    // `retransmit` for a recycled outbox slot.
                    self.clear_delivery_timer(ctx, &mut pending);
                }
                return;
            }
            other => other,
        };
        match msg {
            TxnMsg::Invoke { txn, inv, method, params, chain, prefilled } => {
                self.handle_invoke(ctx, from, txn, inv, method, params, chain, prefilled);
            }
            TxnMsg::Result { txn, inv, items, comp, chain } => {
                self.handle_result(ctx, from, txn, inv, items, comp, chain);
            }
            TxnMsg::Fault { inv, fault, .. } => {
                self.child_failed(ctx, inv, fault);
            }
            TxnMsg::Abort { txn } => self.handle_abort(ctx, txn, from),
            TxnMsg::Commit { txn } => self.handle_commit(ctx, txn),
            TxnMsg::Compensate { txn, service } => self.handle_compensate(ctx, txn, service),
            TxnMsg::Ping => {
                let _ = ctx.send(from, TxnMsg::Pong);
            }
            TxnMsg::Pong => { /* heard_from above is enough */ }
            TxnMsg::Redirected { txn, failed_parent, method, items, comp } => {
                self.handle_redirected(ctx, from, txn, failed_parent, method, items, comp);
            }
            TxnMsg::DisconnectNotice { txn, disconnected } => self.handle_notice(ctx, txn, disconnected),
            TxnMsg::StreamData { txn, .. } => {
                self.stream_last.insert((txn, from), ctx.now());
                self.maybe_start_stream(ctx);
            }
            TxnMsg::ChainUpdate { txn, chain } => self.handle_chain_update(ctx, from, txn, chain),
            // Unwrapped above; a nested envelope is never constructed.
            TxnMsg::Reliable { .. } | TxnMsg::Ack { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TxnMsg>, tag: u64) {
        match tag {
            0 => {
                if let Some((method, params)) = self.auto_submit.clone() {
                    self.submit(ctx, &method, params);
                }
            }
            TAG_PING => self.ping_tick(ctx),
            TAG_STREAM => self.stream_tick(ctx),
            _ => match self.timers.remove(&tag) {
                Some(TimerPayload::ServiceDone(inv)) => self.complete_serving(ctx, inv),
                Some(TimerPayload::RetryChild { wc, to_peer, to_method, placeholder }) => {
                    self.reissue_child(ctx, wc, to_peer, to_method, placeholder)
                }
                Some(TimerPayload::Submit { method, params }) => {
                    self.submit(ctx, &method, params);
                }
                Some(TimerPayload::Retransmit(id)) => self.retransmit(ctx, id),
                None => {}
            },
        }
    }

    fn on_reconnect(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        // Timers set while offline were discarded by the simulator:
        // re-arm the delivery layer or pending outbox entries would
        // never retransmit (and quiescence would never be reached).
        let ids: Vec<u64> = self.outbox.keys().copied().collect();
        for id in ids {
            // Retire the pre-disconnect timer's bookkeeping first — its
            // payload entry would otherwise leak, and a firing that beat
            // the disconnect would chain a second timer for this entry.
            if let Some(mut pending) = self.outbox.remove(&id) {
                self.clear_delivery_timer(ctx, &mut pending);
                let tag = self.alloc_payload_tag(TimerPayload::Retransmit(id));
                let timer = ctx.set_timer(self.config.retransmit_base, tag);
                pending.timer = Some((tag, timer));
                self.outbox.insert(id, pending);
            }
        }
        // Same for the keep-alive and stream loops.
        if self.config.ping_interval > 0 && !self.monitor.watched().is_empty() && !self.ping_running {
            self.ping_running = true;
            ctx.set_timer(self.config.ping_interval, TAG_PING);
        }
        if self.config.stream_interval.is_some() && !self.stream_running && !self.servings.is_empty() {
            self.maybe_start_stream(ctx);
        }
    }

    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        self.crash_recover(ctx);
    }

    fn sample_gauges(&self, out: &mut Vec<(&'static str, u64)>) {
        // The time-series plane (DESIGN.md §15): instantaneous queue and
        // state depths, read-only and in a fixed order so the sampled
        // series is replay-stable. `in_flight_txns` counts non-terminal
        // contexts (the backlog that still holds resources); terminal
        // contexts stay in the map for the oracle but are settled work.
        out.push(("outbox_depth", self.outbox.len() as u64));
        out.push(("in_flight_txns", self.contexts.values().filter(|tc| tc.state == TxnState::Active).count() as u64));
        out.push(("dedup_seen", self.seen_deliveries.len() as u64));
        out.push(("retransmit_timers", self.outbox.values().filter(|p| p.timer.is_some()).count() as u64));
        let wal = self.sink.stats();
        out.push(("wal_bytes", wal.bytes_appended));
        out.push(("wal_segments", wal.segments_rotated));
    }
}

impl AxmlPeer {
    /// Schedules a transaction submission at a future time (harness use).
    pub fn schedule_submit(&mut self, method: &str, params: Vec<(String, String)>) -> u64 {
        self.alloc_payload_tag(TimerPayload::Submit { method: method.to_string(), params })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_doc::ServiceDef;
    use axml_p2p::{FaultPlane, Sim, SimConfig};
    use axml_query::SelectQuery;

    fn fabric(n: u32) -> Vec<AxmlPeer> {
        (0..n).map(|i| AxmlPeer::new(PeerId(i), PeerConfig::default())).collect()
    }

    #[test]
    fn wsdl_catalog() {
        let mut w = WsdlCatalog::default();
        assert_eq!(w.hints("m"), None);
        w.publish("m", &["a", "b"]);
        assert_eq!(w.hints("m"), Some(vec!["a".to_string(), "b".to_string()]));
        w.publish("m", &["c"]);
        assert_eq!(w.hints("m"), Some(vec!["c".to_string()]), "re-publish replaces");
    }

    #[test]
    fn merge_chains_grafts_and_marks_super() {
        let mut a = ActiveList::new(PeerId(1), false);
        a.add_invocation(PeerId(1), PeerId(2), false);
        let mut b = ActiveList::new(PeerId(1), true);
        b.add_invocation(PeerId(1), PeerId(2), false);
        b.add_invocation(PeerId(2), PeerId(3), true);
        let m = merge_chains(&a, &b);
        assert!(m.contains(PeerId(3)));
        assert_eq!(m.parent_of(PeerId(3)), Some(PeerId(2)));
        assert!(m.all_peers().len() == 3);
        // Super flags flow across merges.
        assert!(crate::spheres::sphere_violations(&m).len() < 3);
        // Disjoint roots: ours wins.
        let other = ActiveList::new(PeerId(9), false);
        let m2 = merge_chains(&a, &other);
        assert_eq!(m2, a);
        // Merge is idempotent.
        assert_eq!(merge_chains(&m, &m), m);
    }

    /// Local nesting across peers: "the service call parameters may
    /// themselves be defined as service calls" — here the parameter call
    /// targets a *remote* peer, exercising the ParamFill wave machinery.
    #[test]
    fn remote_param_call_resolves_before_outer_invocation() {
        let mut peers = fabric(4);
        // AP1: origin; its doc embeds outer@AP2 with param = inner@AP3.
        peers[1]
            .repo
            .put_xml(
                "main",
                r#"<d><out>local</out>
                    <axml:sc mode="replace" serviceNameSpace="o" serviceURL="peer://ap2" methodName="outer">
                        <axml:params>
                            <axml:param name="in">
                                <axml:sc mode="replace" serviceNameSpace="i" serviceURL="peer://ap3" methodName="inner"/>
                            </axml:param>
                        </axml:params>
                    </axml:sc>
                </d>"#,
            )
            .unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        peers[1].wsdl.publish("outer", &["out"]);
        peers[1].wsdl.publish("inner", &["seed"]);
        // AP2: outer echoes its parameter.
        peers[2].registry.register(
            ServiceDef::function("outer", |params| {
                let p = params.iter().find(|(k, _)| k == "in").map(|(_, v)| v.clone()).unwrap_or_default();
                Ok(vec![Fragment::elem_text("out", format!("outer-got-{p}"))])
            })
            .with_results(&["out"]),
        );
        // AP3: inner supplies the seed value.
        peers[3].registry.register(
            ServiceDef::function("inner", |_| Ok(vec![Fragment::elem_text("seed", "42")])).with_results(&["seed"]),
        );
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("root".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        sim.run();
        let origin = sim.actor(PeerId(1));
        let outcome = origin.outcomes.first().expect("resolved");
        assert!(outcome.committed);
        let items = &origin.results[&outcome.txn];
        let text: String = items.iter().map(|f| f.to_xml()).collect();
        assert!(text.contains("outer-got-42"), "{text}");
        // Both providers served.
        assert_eq!(sim.actor(PeerId(2)).stats.completed, 1);
        assert_eq!(sim.actor(PeerId(3)).stats.completed, 1);
    }

    /// A fault in the *parameter* call follows the nested recovery
    /// protocol like any other child failure.
    #[test]
    fn param_call_fault_aborts_transaction() {
        let mut peers = fabric(4);
        peers[1]
            .repo
            .put_xml(
                "main",
                r#"<d><out>local</out>
                    <axml:sc mode="replace" serviceNameSpace="o" serviceURL="peer://ap2" methodName="outer">
                        <axml:params>
                            <axml:param name="in">
                                <axml:sc mode="replace" serviceNameSpace="i" serviceURL="peer://ap3" methodName="inner"/>
                            </axml:param>
                        </axml:params>
                    </axml:sc>
                </d>"#,
            )
            .unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        peers[2].registry.register(ServiceDef::function("outer", |_| Ok(vec![])).with_results(&["out"]));
        let mut inner = ServiceDef::function("inner", |_| Ok(vec![]));
        inner.injected_fault = Some(Fault::injected("param provider down"));
        peers[3].registry.register(inner);
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("root".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        sim.run();
        let origin = sim.actor(PeerId(1));
        assert!(!origin.outcomes.first().expect("resolved").committed);
        assert!(origin.is_quiescent());
    }

    #[test]
    fn unknown_service_faults_back() {
        let mut peers = fabric(3);
        peers[1]
            .repo
            .put_xml(
                "main",
                r#"<d><out>x</out><axml:sc serviceNameSpace="g" serviceURL="peer://ap2" methodName="ghost"/></d>"#,
            )
            .unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("root".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        sim.run();
        let origin = sim.actor(PeerId(1));
        assert!(!origin.outcomes.first().expect("resolved").committed);
    }

    #[test]
    fn submitting_unknown_local_method_resolves_aborted() {
        let mut peers = fabric(2);
        peers[1].repo.put_xml("main", "<d/>").unwrap();
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("nope".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        sim.run();
        let origin = sim.actor(PeerId(1));
        let outcome = origin.outcomes.first().expect("resolved");
        assert!(!outcome.committed);
        assert!(origin.is_quiescent());
    }

    /// Regression: an ack must retire the delivery's pending retransmit
    /// timer. Before the fix, the payload stayed in `timers` after the
    /// outbox entry was removed, and the stale timer fired into
    /// `retransmit` for a delivery that no longer existed.
    #[test]
    fn ack_clears_retransmit_timer_state() {
        let mut peers = fabric(3);
        peers[1]
            .repo
            .put_xml(
                "main",
                r#"<d><out>x</out><axml:sc mode="replace" serviceNameSpace="r" serviceURL="peer://ap2" methodName="fetch"/></d>"#,
            )
            .unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        peers[1].wsdl.publish("fetch", &["out"]);
        peers[2].registry.register(
            ServiceDef::function("fetch", |_| Ok(vec![Fragment::elem_text("out", "y")])).with_results(&["out"]),
        );
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("root".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        // Latency is 1..=5, so the Invoke's ack is back by t=10 — well
        // before its retransmit timer (base 16) would fire. At this
        // checkpoint every Retransmit payload must match a live outbox
        // entry; an orphaned payload is exactly the pre-fix stale state.
        sim.run_until(12);
        for id in [PeerId(1), PeerId(2)] {
            let p = sim.actor(id);
            let orphaned = p
                .timers
                .values()
                .filter(|t| matches!(t, TimerPayload::Retransmit(d) if !p.outbox.contains_key(d)))
                .count();
            assert_eq!(orphaned, 0, "{id}: acked deliveries left timer state behind");
        }
        sim.run();
        assert!(sim.actor(PeerId(1)).outcomes.first().expect("resolved").committed);
        assert!(sim.actor(PeerId(1)).outbox.is_empty());
    }

    /// Regression: with an extreme `retransmit_base`, the backoff must
    /// saturate instead of wrapping (`base << attempts` overflowed into a
    /// zero delay — a same-instant retransmit storm), and give-up must
    /// clear all pending timer state for the abandoned delivery.
    #[test]
    fn extreme_backoff_saturates_and_giveup_clears_timer_state() {
        let mut config = PeerConfig::default();
        config.retransmit_base = 1 << 62;
        config.max_retransmits = 3;
        config.ping_interval = 0; // isolate the delivery layer's timers
        let mut peers: Vec<AxmlPeer> = (0..3).map(|i| AxmlPeer::new(PeerId(i), config.clone())).collect();
        peers[1]
            .repo
            .put_xml(
                "main",
                r#"<d><out>x</out><axml:sc mode="replace" serviceNameSpace="r" serviceURL="peer://ap2" methodName="fetch"/></d>"#,
            )
            .unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        peers[1].wsdl.publish("fetch", &["out"]);
        peers[2].registry.register(
            ServiceDef::function("fetch", |_| Ok(vec![Fragment::elem_text("out", "y")])).with_results(&["out"]),
        );
        let mut sim_config = SimConfig::default();
        // Drop every message: the Invoke is never acked and the sender
        // must walk its full backoff schedule to the give-up.
        sim_config.fault = FaultPlane::probabilistic(7, 1.0, 0.0, 0.0, 0.0);
        let mut sim = Sim::new(sim_config, peers);
        sim.actor_mut(PeerId(1)).auto_submit = Some(("root".into(), vec![]));
        sim.schedule_timer(0, PeerId(1), 0);
        sim.run();
        let p1 = sim.actor(PeerId(1));
        assert!(p1.stats.retransmit_giveups >= 1, "delivery gave up");
        assert!(p1.stats.detections.iter().any(|d| d.how == DetectHow::AckTimeout), "give-up detected as ack timeout");
        assert!(p1.outbox.is_empty());
        let leftover = p1.timers.values().filter(|t| matches!(t, TimerPayload::Retransmit(_))).count();
        assert_eq!(leftover, 0, "give-up cleared its timer state");
        assert!(!p1.outcomes.first().expect("resolved").committed, "undeliverable invoke aborts");
        // Saturation: the doubled backoff pins to u64::MAX. The wrapping
        // shift instead produced zero delays, giving up at 3 * 2^62.
        assert_eq!(sim.now(), u64::MAX, "backoff saturated instead of wrapping");
    }

    #[test]
    fn schedule_submit_timer_payload() {
        let mut peers = fabric(2);
        peers[1].repo.put_xml("main", "<d><out>v</out></d>").unwrap();
        peers[1].registry.register(
            ServiceDef::query(
                "root",
                "main",
                SelectQuery::parse("Select v//out from v in d").expect("static query: Select v//out from v in d"),
            )
            .with_results(&["out"]),
        );
        let tag = peers[1].schedule_submit("root", vec![]);
        let mut sim = Sim::new(SimConfig::default(), peers);
        sim.schedule_timer(5, PeerId(1), tag);
        sim.run();
        assert_eq!(sim.actor(PeerId(1)).outcomes.len(), 1);
    }
}
