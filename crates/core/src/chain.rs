//! Active-peer lists — the "chaining" of §3.3.
//!
//! "The list of active peers is denoted as follows: `[APX → APY]` implies
//! an invocation of APY's service by APX. Parallel invocation of APY and
//! APZ s' services by APX is denoted as `[APX → [APY] || [APZ]]`. Finally,
//! super peers (trusted peers which do not disconnect) are highlighted by
//! an `*` following their identifiers."
//!
//! The list is the invocation tree of the transaction so far. Passing it
//! along with every invocation is what lets a peer that detects a
//! disconnection find the disconnected peer's parent, children, siblings,
//! the "next closest peer", and the "closest super peer" — without asking
//! anyone.

use axml_p2p::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One node of the active-peer list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainNode {
    /// The peer.
    pub peer: PeerId,
    /// `*` marker: a super peer.
    pub is_super: bool,
    /// Peers whose services this peer invoked.
    pub children: Vec<ChainNode>,
}

impl ChainNode {
    /// A leaf node.
    pub fn leaf(peer: PeerId, is_super: bool) -> ChainNode {
        ChainNode { peer, is_super, children: Vec::new() }
    }
}

/// The active-peer list of a transaction.
///
/// ```
/// use axml_core::ActiveList;
/// use axml_p2p::PeerId;
///
/// let mut list = ActiveList::new(PeerId(1), true);
/// list.add_invocation(PeerId(1), PeerId(2), false);
/// list.add_invocation(PeerId(2), PeerId(3), false);
/// assert_eq!(list.to_notation(), "[AP1* → AP2 → AP3]");
/// assert_eq!(list.parent_of(PeerId(3)), Some(PeerId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveList {
    /// The invocation-tree root (the origin peer).
    pub root: ChainNode,
}

impl ActiveList {
    /// A list containing only the origin.
    pub fn new(origin: PeerId, is_super: bool) -> ActiveList {
        ActiveList { root: ChainNode::leaf(origin, is_super) }
    }

    fn find(&self, peer: PeerId) -> Option<&ChainNode> {
        fn go(node: &ChainNode, peer: PeerId) -> Option<&ChainNode> {
            if node.peer == peer {
                return Some(node);
            }
            node.children.iter().find_map(|c| go(c, peer))
        }
        go(&self.root, peer)
    }

    fn find_mut(&mut self, peer: PeerId) -> Option<&mut ChainNode> {
        fn go(node: &mut ChainNode, peer: PeerId) -> Option<&mut ChainNode> {
            if node.peer == peer {
                return Some(node);
            }
            node.children.iter_mut().find_map(|c| go(c, peer))
        }
        go(&mut self.root, peer)
    }

    /// True if `peer` appears in the list.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.find(peer).is_some()
    }

    /// Records that `parent` invoked `child`'s service. No-op if the
    /// parent is unknown; duplicate children are ignored.
    pub fn add_invocation(&mut self, parent: PeerId, child: PeerId, child_is_super: bool) {
        if self.contains(child) {
            return;
        }
        if let Some(p) = self.find_mut(parent) {
            p.children.push(ChainNode::leaf(child, child_is_super));
        }
    }

    /// The parent of `peer` in the invocation tree.
    pub fn parent_of(&self, peer: PeerId) -> Option<PeerId> {
        fn go(node: &ChainNode, peer: PeerId) -> Option<PeerId> {
            for c in &node.children {
                if c.peer == peer {
                    return Some(node.peer);
                }
                if let Some(p) = go(c, peer) {
                    return Some(p);
                }
            }
            None
        }
        go(&self.root, peer)
    }

    /// The children of `peer`.
    pub fn children_of(&self, peer: PeerId) -> Vec<PeerId> {
        self.find(peer).map(|n| n.children.iter().map(|c| c.peer).collect()).unwrap_or_default()
    }

    /// The siblings of `peer` (same parent, excluding itself).
    pub fn siblings_of(&self, peer: PeerId) -> Vec<PeerId> {
        match self.parent_of(peer) {
            None => Vec::new(),
            Some(parent) => self.children_of(parent).into_iter().filter(|p| *p != peer).collect(),
        }
    }

    /// Ancestors of `peer`, nearest first ("the next closest peer" order
    /// of scenario (b)).
    pub fn ancestors_of(&self, peer: PeerId) -> Vec<PeerId> {
        let mut out = Vec::new();
        let mut cur = peer;
        while let Some(p) = self.parent_of(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// All descendants of `peer` (pre-order).
    pub fn descendants_of(&self, peer: PeerId) -> Vec<PeerId> {
        fn collect(node: &ChainNode, out: &mut Vec<PeerId>) {
            for c in &node.children {
                out.push(c.peer);
                collect(c, out);
            }
        }
        let mut out = Vec::new();
        if let Some(n) = self.find(peer) {
            collect(n, &mut out);
        }
        out
    }

    /// The grandparent of `peer`.
    pub fn grandparent_of(&self, peer: PeerId) -> Option<PeerId> {
        self.parent_of(peer).and_then(|p| self.parent_of(p))
    }

    /// The uncles of `peer` — its parent's siblings. Part of the paper's
    /// future-work **extended chaining** ("we are exploring the
    /// feasibility of extending the same to uncles, cousins, etc.").
    pub fn uncles_of(&self, peer: PeerId) -> Vec<PeerId> {
        match self.parent_of(peer) {
            None => Vec::new(),
            Some(parent) => self.siblings_of(parent),
        }
    }

    /// The cousins of `peer` — children of its uncles.
    pub fn cousins_of(&self, peer: PeerId) -> Vec<PeerId> {
        self.uncles_of(peer).into_iter().flat_map(|u| self.children_of(u)).collect()
    }

    /// The closest super-peer ancestor of `peer` (scenario (b): "AP6 can
    /// try the next closest peer (AP1) or the closest super peer").
    pub fn closest_super_ancestor(&self, peer: PeerId) -> Option<PeerId> {
        self.ancestors_of(peer).into_iter().find(|p| self.find(*p).map(|n| n.is_super).unwrap_or(false))
    }

    /// All peers in the list (pre-order, origin first).
    pub fn all_peers(&self) -> Vec<PeerId> {
        let mut out = vec![self.root.peer];
        out.extend(self.descendants_of(self.root.peer));
        out
    }

    /// True if every peer in the list is a super peer — the
    /// Spheres-of-Atomicity condition of §3.3.
    pub fn all_super(&self) -> bool {
        fn go(node: &ChainNode) -> bool {
            node.is_super && node.children.iter().all(go)
        }
        go(&self.root)
    }

    /// Marks a peer as super (used when building lists programmatically).
    pub fn mark_super(&mut self, peer: PeerId) {
        if let Some(n) = self.find_mut(peer) {
            n.is_super = true;
        }
    }

    /// Removes `peer`'s subtree from the list (after a confirmed
    /// disconnection). Returns true if something was removed.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        fn go(node: &mut ChainNode, peer: PeerId) -> bool {
            if let Some(pos) = node.children.iter().position(|c| c.peer == peer) {
                node.children.remove(pos);
                return true;
            }
            node.children.iter_mut().any(|c| go(c, peer))
        }
        go(&mut self.root, peer)
    }

    /// Parses the paper's notation back into a list — the inverse of
    /// [`ActiveList::to_notation`].
    ///
    /// ```
    /// use axml_core::ActiveList;
    ///
    /// let s = "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]";
    /// let list = ActiveList::parse_notation(s).unwrap();
    /// assert_eq!(list.to_notation(), s);
    /// ```
    pub fn parse_notation(s: &str) -> Result<ActiveList, String> {
        struct Parser<'a> {
            rest: &'a str,
        }
        impl Parser<'_> {
            fn ws(&mut self) {
                self.rest = self.rest.trim_start();
            }
            fn eat(&mut self, tok: &str) -> Result<(), String> {
                self.ws();
                match self.rest.strip_prefix(tok) {
                    Some(r) => {
                        self.rest = r;
                        Ok(())
                    }
                    None => Err(format!("expected `{tok}` at `{}`", self.rest)),
                }
            }
            fn peek(&mut self, tok: &str) -> bool {
                self.ws();
                self.rest.starts_with(tok)
            }
            fn node(&mut self) -> Result<ChainNode, String> {
                self.eat("AP")?;
                let digits: &str =
                    &self.rest[..self.rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(self.rest.len())];
                if digits.is_empty() {
                    return Err(format!("expected peer number at `{}`", self.rest));
                }
                let peer = PeerId(digits.parse().map_err(|_| format!("peer number `{digits}` out of range"))?);
                self.rest = &self.rest[digits.len()..];
                let is_super = if let Some(r) = self.rest.strip_prefix('*') {
                    self.rest = r;
                    true
                } else {
                    false
                };
                let mut node = ChainNode::leaf(peer, is_super);
                if self.peek("→") {
                    self.eat("→")?;
                    if self.peek("[") {
                        loop {
                            self.eat("[")?;
                            node.children.push(self.node()?);
                            self.eat("]")?;
                            if self.peek("||") {
                                self.eat("||")?;
                            } else {
                                break;
                            }
                        }
                    } else {
                        node.children.push(self.node()?);
                    }
                }
                Ok(node)
            }
        }
        let mut p = Parser { rest: s };
        p.eat("[")?;
        let root = p.node()?;
        p.eat("]")?;
        p.ws();
        if !p.rest.is_empty() {
            return Err(format!("trailing input `{}`", p.rest));
        }
        Ok(ActiveList { root })
    }

    /// Renders the paper's notation, e.g.
    /// `[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]`.
    pub fn to_notation(&self) -> String {
        fn node_str(n: &ChainNode) -> String {
            let me = format!("{}{}", n.peer, if n.is_super { "*" } else { "" });
            match n.children.len() {
                0 => me,
                1 => format!("{me} → {}", node_str(&n.children[0])),
                _ => {
                    let parts: Vec<String> = n.children.iter().map(|c| format!("[{}]", node_str(c))).collect();
                    format!("{me} → {}", parts.join(" || "))
                }
            }
        }
        format!("[{}]", node_str(&self.root))
    }
}

impl fmt::Display for ActiveList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact list from §3.3:
    /// `[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]`.
    fn fig2_list() -> ActiveList {
        let mut l = ActiveList::new(PeerId(1), true);
        l.add_invocation(PeerId(1), PeerId(2), false);
        l.add_invocation(PeerId(2), PeerId(3), false);
        l.add_invocation(PeerId(2), PeerId(4), false);
        l.add_invocation(PeerId(3), PeerId(6), false);
        l.add_invocation(PeerId(4), PeerId(5), false);
        l
    }

    #[test]
    fn paper_notation_matches() {
        assert_eq!(fig2_list().to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
    }

    #[test]
    fn single_chain_notation() {
        let mut l = ActiveList::new(PeerId(1), false);
        l.add_invocation(PeerId(1), PeerId(2), false);
        l.add_invocation(PeerId(2), PeerId(3), true);
        assert_eq!(l.to_notation(), "[AP1 → AP2 → AP3*]");
    }

    #[test]
    fn navigation() {
        let l = fig2_list();
        assert_eq!(l.parent_of(PeerId(6)), Some(PeerId(3)));
        assert_eq!(l.parent_of(PeerId(3)), Some(PeerId(2)));
        assert_eq!(l.parent_of(PeerId(1)), None);
        assert_eq!(l.children_of(PeerId(2)), vec![PeerId(3), PeerId(4)]);
        assert_eq!(l.siblings_of(PeerId(3)), vec![PeerId(4)]);
        assert_eq!(l.siblings_of(PeerId(1)), Vec::<PeerId>::new());
        assert_eq!(l.ancestors_of(PeerId(6)), vec![PeerId(3), PeerId(2), PeerId(1)]);
        assert_eq!(l.descendants_of(PeerId(2)), vec![PeerId(3), PeerId(6), PeerId(4), PeerId(5)]);
        assert_eq!(l.all_peers().len(), 6);
    }

    #[test]
    fn scenario_b_fallback_targets() {
        // AP6 detects AP3's disconnection: next closest = AP2, then AP1;
        // closest super peer = AP1.
        let l = fig2_list();
        let ancestors = l.ancestors_of(PeerId(6));
        assert_eq!(ancestors[0], PeerId(3), "disconnected parent itself");
        assert_eq!(ancestors[1], PeerId(2), "redirect target");
        assert_eq!(l.closest_super_ancestor(PeerId(6)), Some(PeerId(1)));
    }

    #[test]
    fn duplicate_and_unknown_invocations_ignored() {
        let mut l = fig2_list();
        l.add_invocation(PeerId(2), PeerId(3), false); // duplicate child
        assert_eq!(l.children_of(PeerId(2)).len(), 2);
        l.add_invocation(PeerId(99), PeerId(7), false); // unknown parent
        assert!(!l.contains(PeerId(7)));
    }

    #[test]
    fn all_super_condition() {
        let mut l = fig2_list();
        assert!(!l.all_super());
        for p in [2, 3, 4, 5, 6] {
            l.mark_super(PeerId(p));
        }
        assert!(l.all_super());
    }

    #[test]
    fn remove_subtree() {
        let mut l = fig2_list();
        assert!(l.remove(PeerId(3)));
        assert!(!l.contains(PeerId(3)));
        assert!(!l.contains(PeerId(6)), "descendants go with the subtree");
        assert!(l.contains(PeerId(4)));
        assert!(!l.remove(PeerId(3)), "already gone");
    }

    #[test]
    fn parse_notation_round_trips() {
        let mut deep = ActiveList::new(PeerId(1), false);
        deep.add_invocation(PeerId(1), PeerId(2), true);
        deep.add_invocation(PeerId(2), PeerId(3), false);
        deep.add_invocation(PeerId(2), PeerId(4), false);
        deep.add_invocation(PeerId(4), PeerId(5), true);
        deep.add_invocation(PeerId(4), PeerId(6), false);
        for list in [fig2_list(), ActiveList::new(PeerId(7), true), deep] {
            let notation = list.to_notation();
            let back = ActiveList::parse_notation(&notation).expect("parses");
            assert_eq!(back, list, "{notation}");
        }
    }

    #[test]
    fn parse_notation_rejects_malformed_input() {
        for bad in ["", "AP1", "[AP1", "[AP1 →]", "[XP1]", "[AP1] tail", "[AP1 → [AP2] ||]"] {
            assert!(ActiveList::parse_notation(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn serde_json_roundtrip() {
        let l = fig2_list();
        let json = serde_json::to_string(&l).unwrap();
        let back: ActiveList = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    /// Depth-3 binary tree: 1 → {2,3}, 2 → {4,5}, 3 → {6,7}.
    fn tree() -> ActiveList {
        let mut l = ActiveList::new(PeerId(1), false);
        l.add_invocation(PeerId(1), PeerId(2), false);
        l.add_invocation(PeerId(1), PeerId(3), false);
        l.add_invocation(PeerId(2), PeerId(4), false);
        l.add_invocation(PeerId(2), PeerId(5), false);
        l.add_invocation(PeerId(3), PeerId(6), false);
        l.add_invocation(PeerId(3), PeerId(7), false);
        l
    }

    #[test]
    fn grandparent() {
        let l = tree();
        assert_eq!(l.grandparent_of(PeerId(4)), Some(PeerId(1)));
        assert_eq!(l.grandparent_of(PeerId(2)), None);
        assert_eq!(l.grandparent_of(PeerId(1)), None);
    }

    #[test]
    fn uncles() {
        let l = tree();
        assert_eq!(l.uncles_of(PeerId(4)), vec![PeerId(3)]);
        assert_eq!(l.uncles_of(PeerId(6)), vec![PeerId(2)]);
        assert!(l.uncles_of(PeerId(2)).is_empty(), "the origin's children have no uncles");
        assert!(l.uncles_of(PeerId(1)).is_empty());
    }

    #[test]
    fn cousins() {
        let l = tree();
        assert_eq!(l.cousins_of(PeerId(4)), vec![PeerId(6), PeerId(7)]);
        assert_eq!(l.cousins_of(PeerId(7)), vec![PeerId(4), PeerId(5)]);
        assert!(l.cousins_of(PeerId(2)).is_empty());
    }
}
