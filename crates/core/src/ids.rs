//! Transaction and invocation identifiers.

use axml_p2p::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction id, unique per origin peer.
///
/// Displayed as `T<origin>.<n>` (the paper writes `TA`, `TX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId {
    /// The origin peer ("the peer at which a transaction TA is originally
    /// submitted").
    pub origin: PeerId,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Builds a transaction id.
    pub fn new(origin: PeerId, seq: u64) -> TxnId {
        TxnId { origin, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.seq)
    }
}

/// Identifies one service invocation within a transaction, unique per
/// *invoking* peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InvocationId {
    /// The peer that issued the invocation.
    pub invoker: PeerId,
    /// Per-invoker sequence number.
    pub seq: u64,
}

impl InvocationId {
    /// Builds an invocation id.
    pub fn new(invoker: PeerId, seq: u64) -> InvocationId {
        InvocationId { invoker, seq }
    }
}

impl fmt::Display for InvocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}.{}", self.invoker.0, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TxnId::new(PeerId(1), 0).to_string(), "T1.0");
        assert_eq!(InvocationId::new(PeerId(3), 7).to_string(), "inv3.7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = TxnId::new(PeerId(1), 0);
        let b = TxnId::new(PeerId(1), 1);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }
}
