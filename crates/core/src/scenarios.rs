//! Executable reproductions of the paper's figures, plus a general
//! invocation-tree scenario builder used by tests, examples and benches.
//!
//! - **Fig. 1** (nested recovery): `AP1 → {AP2, AP3}`, `AP3 → {AP4, AP5}`,
//!   `AP5 → AP6`; AP5 fails while processing S5.
//! - **Fig. 2** (peer disconnection): `AP1* → AP2 → {AP3 → AP6,
//!   AP4 → AP5}` with scenarios (a)–(d).
//!
//! Each peer `k` hosts document `d{k}` and service `S{k}`. Documents embed
//! `axml:sc` calls to the child peers of the tree; services are queries or
//! updates over the hosted document whose (lazy) evaluation requires those
//! embedded calls — so a transaction submitted at the origin naturally
//! unfolds into the paper's invocation tree.

use crate::context::{TxnOutcome, TxnState};
use crate::ids::TxnId;
use crate::messages::TxnMsg;
use crate::peer::{AxmlPeer, PeerConfig, PeerStats, WsdlCatalog};
use axml_doc::Fault;
use axml_p2p::{Directory, FaultPlane, NetMetrics, PeerId, Sim, SimConfig, Snapshot, TraceJournal, TraceSink};
use std::collections::BTreeMap;

/// What kind of service each peer exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flavor {
    /// Query services (`Select v//out from v in d`): effects come from
    /// materialization only.
    #[default]
    Query,
    /// Update services (replace the `slot` element): effects come from
    /// the update *and* materialization.
    Update,
}

/// Declarative description of an invocation-tree scenario.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    /// Invocation edges `(parent, child)`; the tree root is `origin`.
    pub edges: Vec<(u32, u32)>,
    /// The origin peer.
    pub origin: u32,
    /// Super peers.
    pub supers: Vec<u32>,
    /// Template configuration applied to every peer.
    pub config: PeerConfig,
    /// Service flavor.
    pub flavor: Flavor,
    /// Simulator seed.
    pub seed: u64,
    /// Service processing durations (defaults to 5).
    pub durations: BTreeMap<u32, u64>,
    /// Inject a fault into this peer's service (it fails *while
    /// processing*, i.e. after its own sub-invocations completed).
    pub inject_fault: Option<u32>,
    /// Fault handlers: `(peer, child, handler-xml)` attached to the
    /// `axml:sc` element in `peer`'s document that targets `child`.
    pub handlers: Vec<(u32, u32, String)>,
    /// Replicas: `(of, replica)` — peer `replica` hosts a copy of
    /// `d{of}` and provides `S{of}`.
    pub replicas: Vec<(u32, u32)>,
    /// Scheduled disconnects `(time, peer)`.
    pub disconnects: Vec<(u64, u32)>,
    /// When the transaction is submitted.
    pub submit_at: u64,
    /// Hard stop for the simulation.
    pub deadline: u64,
    /// Fault schedule for the simulated network (inert by default, so
    /// scenarios not opting in are byte-for-byte unaffected).
    pub fault: FaultPlane,
    /// Collect a lifecycle-event journal for the run (off by default:
    /// untraced runs pay nothing, and replays stay byte-identical).
    pub trace: bool,
    /// Gauge-sampling window width in sim-time units (0 = off, the
    /// default). Forwarded to [`SimConfig::sample_interval`]; only
    /// meaningful on traced/observed runs.
    pub sample_interval: u64,
}

impl ScenarioBuilder {
    /// A scenario over the given invocation tree.
    pub fn new(origin: u32, edges: &[(u32, u32)]) -> ScenarioBuilder {
        ScenarioBuilder {
            edges: edges.to_vec(),
            origin,
            supers: Vec::new(),
            config: PeerConfig::default(),
            flavor: Flavor::Update,
            seed: 7,
            durations: BTreeMap::new(),
            inject_fault: None,
            handlers: Vec::new(),
            replicas: Vec::new(),
            disconnects: Vec::new(),
            submit_at: 0,
            deadline: 100_000,
            fault: FaultPlane::default(),
            trace: false,
            sample_interval: 0,
        }
    }

    /// The paper's Fig. 1 tree: AP1 → {AP2, AP3}, AP3 → {AP4, AP5},
    /// AP5 → AP6.
    pub fn fig1() -> ScenarioBuilder {
        ScenarioBuilder::new(1, &[(1, 2), (1, 3), (3, 4), (3, 5), (5, 6)])
    }

    /// The paper's Fig. 2 tree: AP1* → AP2, AP2 → {AP3, AP4}, AP3 → AP6,
    /// AP4 → AP5 (AP1 is a super peer).
    pub fn fig2() -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new(1, &[(1, 2), (2, 3), (2, 4), (3, 6), (4, 5)]);
        b.supers.push(1);
        b
    }

    /// Builder: service flavor.
    pub fn flavor(mut self, flavor: Flavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Builder: mark a peer as a super peer.
    pub fn super_peer(mut self, peer: u32) -> Self {
        if !self.supers.contains(&peer) {
            self.supers.push(peer);
        }
        self
    }

    /// Builder: service processing duration for one peer.
    pub fn duration(mut self, peer: u32, ticks: u64) -> Self {
        self.durations.insert(peer, ticks);
        self
    }

    /// Builder: simulator latency seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: hard stop for the simulation.
    pub fn deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builder: peer configuration template.
    pub fn config(mut self, config: PeerConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: inject a processing fault at a peer.
    pub fn fault_at(mut self, peer: u32) -> Self {
        self.inject_fault = Some(peer);
        self
    }

    /// Builder: disconnect a peer at a time.
    pub fn disconnect(mut self, at: u64, peer: u32) -> Self {
        self.disconnects.push((at, peer));
        self
    }

    /// Builder: fault schedule for the simulated network (drops,
    /// duplication, reordering, spikes, partitions, crash-restarts).
    pub fn fault_plane(mut self, fault: FaultPlane) -> Self {
        self.fault = fault;
        self
    }

    /// Builder: collect a transaction-lifecycle trace journal.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder: sample per-peer gauges every `interval` sim-time units
    /// (the time-series plane; 0 turns sampling off).
    pub fn sampled(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Builder: add a replica of peer `of`'s document/service hosted on a
    /// fresh peer; returns its id.
    pub fn with_replica(mut self, of: u32) -> (Self, u32) {
        let max = self
            .edges
            .iter()
            .flat_map(|(a, b)| [*a, *b])
            .chain(self.replicas.iter().map(|(_, r)| *r))
            .chain([self.origin])
            .max()
            .unwrap_or(0);
        let replica = max + 1;
        self.replicas.push((of, replica));
        (self, replica)
    }

    /// Builder: attach an `axml:retry` handler on `peer`'s call to `child`.
    pub fn retry_handler(mut self, peer: u32, child: u32, fault_name: Option<&str>, times: u32, wait: u64) -> Self {
        let open = match fault_name {
            Some(f) => format!(r#"<axml:catch faultName="{f}">"#),
            None => "<axml:catchAll>".to_string(),
        };
        let close = match fault_name {
            Some(_) => "</axml:catch>",
            None => "</axml:catchAll>",
        };
        self.handlers.push((peer, child, format!(r#"{open}<axml:retry times="{times}" wait="{wait}"/>{close}"#)));
        self
    }

    /// Builder: attach a substitution handler (forward recovery with a
    /// default value) on `peer`'s call to `child`.
    pub fn substitute_handler(mut self, peer: u32, child: u32, fault_name: Option<&str>) -> Self {
        let open = match fault_name {
            Some(f) => format!(r#"<axml:catch faultName="{f}">"#),
            None => "<axml:catchAll>".to_string(),
        };
        let close = match fault_name {
            Some(_) => "</axml:catch>",
            None => "</axml:catchAll>",
        };
        self.handlers.push((peer, child, format!(r#"{open}<out>substituted-{peer}-{child}</out>{close}"#)));
        self
    }

    /// The children `peer` invokes, in edge order. Public so static
    /// analysis can walk the planned invocation tree without building the
    /// simulator.
    pub fn children_of(&self, peer: u32) -> Vec<u32> {
        self.edges.iter().filter(|(p, _)| *p == peer).map(|(_, c)| *c).collect()
    }

    /// Every peer the scenario involves (tree peers plus replicas),
    /// sorted and deduplicated.
    pub fn peers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .edges
            .iter()
            .flat_map(|(a, b)| [*a, *b])
            .chain([self.origin])
            .chain(self.replicas.iter().map(|(_, r)| *r))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The AXML document hosted by `peer`: its own data plus one
    /// `axml:sc` call (with any attached handlers) per invoked child.
    pub fn doc_xml(&self, peer: u32) -> String {
        let mut xml = format!("<d><slot>initial-{peer}</slot><out>base-{peer}</out>");
        for child in self.children_of(peer) {
            let handlers: String =
                self.handlers.iter().filter(|(p, c, _)| *p == peer && *c == child).map(|(_, _, h)| h.clone()).collect();
            xml.push_str(&format!(
                r#"<axml:sc mode="replace" serviceNameSpace="S{child}" serviceURL="peer://ap{child}" methodName="S{child}">{handlers}</axml:sc>"#
            ));
        }
        xml.push_str("</d>");
        xml
    }

    /// The active-peer list this scenario unfolds into when every
    /// invocation succeeds: the invocation tree reachable from the origin,
    /// with super peers marked. Replicas are excluded — they join only
    /// during recovery. Unreachable edges are simply not part of the
    /// chain (the well-formedness lints flag them).
    pub fn planned_chain(&self) -> crate::chain::ActiveList {
        let mut chain = crate::chain::ActiveList::new(PeerId(self.origin), self.supers.contains(&self.origin));
        let mut seen = std::collections::BTreeSet::from([self.origin]);
        let mut queue = std::collections::VecDeque::from([self.origin]);
        while let Some(p) = queue.pop_front() {
            for c in self.children_of(p) {
                if seen.insert(c) {
                    chain.add_invocation(PeerId(p), PeerId(c), self.supers.contains(&c));
                    queue.push_back(c);
                }
            }
        }
        chain
    }

    fn service_for(&self, peer: u32) -> axml_doc::ServiceDef {
        let doc = format!("d{peer}");
        match self.flavor {
            Flavor::Query => {
                let q = axml_query::SelectQuery::parse("Select v//out from v in d").expect("static query");
                axml_doc::ServiceDef::query(format!("S{peer}"), doc, q).with_results(&["out"])
            }
            Flavor::Update => {
                // The location query needs `out` data, so lazy evaluation
                // materializes the embedded calls; the written element is
                // named `done` so children's materialized results never
                // collide with the parent's own `slot` target.
                let loc = axml_query::Locator::parse("Select v/slot from v in d where exists v//out")
                    .expect("static locator");
                let action = axml_query::UpdateAction::replace(
                    loc,
                    vec![axml_xml::Fragment::elem_text("done", format!("done-{peer}"))],
                );
                axml_doc::ServiceDef::update(format!("S{peer}"), doc, action).with_results(&["done"])
            }
        }
    }

    /// Builds the simulator and supporting state.
    pub fn build(self) -> Scenario {
        let peers = self.peers();
        let n = peers.iter().max().copied().unwrap_or(0) as usize + 1;
        // Shared fabric knowledge.
        let mut wsdl = WsdlCatalog::default();
        let mut directory = Directory::new();
        for &p in &peers {
            let result = match self.flavor {
                Flavor::Query => "out",
                Flavor::Update => "slot",
            };
            wsdl.publish(format!("S{p}"), &[result]);
            directory.add_service_provider(format!("S{p}"), PeerId(p));
            directory.add_doc_replica(format!("d{p}"), PeerId(p));
        }
        for &(of, replica) in &self.replicas {
            directory.add_service_provider(format!("S{of}"), PeerId(replica));
            directory.add_doc_replica(format!("d{of}"), PeerId(replica));
        }
        // Actors.
        let mut actors = Vec::with_capacity(n);
        for idx in 0..n as u32 {
            let mut config = self.config.clone();
            config.is_super = self.supers.contains(&idx);
            let mut peer = AxmlPeer::new(PeerId(idx), config);
            peer.wsdl = wsdl.clone();
            peer.directory = directory.clone();
            if peers.contains(&idx) {
                let serves: Vec<u32> = std::iter::once(idx)
                    .filter(|i| self.edges.iter().any(|(a, b)| a == i || b == i) || *i == self.origin)
                    .chain(self.replicas.iter().filter(|(_, r)| *r == idx).map(|(of, _)| *of))
                    .collect();
                for of in serves {
                    peer.repo.put_xml(format!("d{of}"), &self.doc_xml(of)).expect("scenario doc parses");
                    let mut def = self.service_for(of);
                    if let Some(d) = self.durations.get(&of) {
                        def.duration = *d;
                    } else {
                        def.duration = 5;
                    }
                    if self.inject_fault == Some(idx) && of == idx {
                        def.injected_fault = Some(Fault::injected(format!("S{of} fails while processing")));
                    }
                    peer.registry.register(def);
                }
            }
            actors.push(peer);
        }
        let trace = if self.trace { TraceSink::Memory } else { TraceSink::Disabled };
        let mut sim = Sim::new(
            SimConfig {
                seed: self.seed,
                fault: self.fault.clone(),
                trace,
                sample_interval: self.sample_interval,
                ..Default::default()
            },
            actors,
        );
        for &s in &self.supers {
            sim.mark_super(PeerId(s));
        }
        for &(at, p) in &self.disconnects {
            sim.schedule_disconnect(at, PeerId(p));
        }
        // Submission.
        let origin = PeerId(self.origin);
        sim.actor_mut(origin).auto_submit = Some((format!("S{}", self.origin), vec![]));
        sim.schedule_timer(self.submit_at, origin, 0);
        // Baseline snapshot for atomicity checking.
        let mut baseline = BTreeMap::new();
        for &p in &peers {
            let actor = sim.actor(PeerId(p));
            for name in actor.repo.names() {
                baseline.insert((PeerId(p), name.to_string()), actor.repo.get(name).expect("listed").to_xml());
            }
        }
        Scenario {
            sim,
            origin,
            participants: peers.iter().map(|p| PeerId(*p)).collect(),
            baseline,
            deadline: self.deadline,
        }
    }
}

/// A built scenario, ready to run.
pub struct Scenario {
    /// The simulator (public: tests drive it directly when needed).
    pub sim: Sim<TxnMsg, AxmlPeer>,
    /// The origin peer.
    pub origin: PeerId,
    /// All participating peers (including replicas).
    pub participants: Vec<PeerId>,
    baseline: BTreeMap<(PeerId, String), String>,
    deadline: u64,
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The transaction (if the origin submitted one).
    pub txn: Option<TxnId>,
    /// The origin-side outcome (None if unresolved by the deadline).
    pub outcome: Option<TxnOutcome>,
    /// Network counters.
    pub metrics: NetMetrics,
    /// True if the all-or-nothing check holds (see
    /// [`Scenario::atomicity_holds`]).
    pub atomic: bool,
    /// Per-peer stats, indexed by peer id.
    pub stats: BTreeMap<PeerId, PeerStats>,
    /// Final logical time.
    pub finished_at: u64,
}

impl Scenario {
    /// Runs to quiescence (or the deadline) and reports.
    pub fn run(&mut self) -> ScenarioReport {
        let finished_at = self.sim.run_until(self.deadline);
        let outcome = self.sim.actor(self.origin).outcomes.first().cloned();
        let txn = outcome.as_ref().map(|o| o.txn).or_else(|| self.root_txn());
        let atomic = self.atomicity_holds();
        let mut stats = BTreeMap::new();
        for &p in &self.participants {
            stats.insert(p, self.sim.actor(p).stats.clone());
        }
        ScenarioReport { txn, outcome, metrics: self.sim.metrics().clone(), atomic, stats, finished_at }
    }

    /// The origin's root transaction: the least transaction id *originated
    /// at the origin* whose context has no parent. This is the
    /// deterministic fallback for [`ScenarioReport::txn`] when the origin
    /// never recorded an outcome — `known_txns()` can also hold contexts
    /// the origin merely served for other peers, and those sort first
    /// whenever the serving peer's id is lower, so "first known txn" was
    /// an arbitrary set-ordered pick, not the submitted transaction.
    fn root_txn(&self) -> Option<TxnId> {
        let actor = self.sim.actor(self.origin);
        actor
            .known_txns()
            .into_iter()
            .filter(|t| t.origin == self.origin)
            .filter(|t| actor.context(*t).is_some_and(|c| c.parent.is_none()))
            .min()
    }

    /// The all-or-nothing check:
    ///
    /// - committed → every *connected* participant context is `Committed`;
    /// - aborted → every connected participant's documents equal the
    ///   pre-transaction baseline (compensation really undid everything);
    /// - unresolved → not atomic.
    ///
    /// Disconnected peers are excluded: the paper is explicit that "it
    /// might not be possible to guarantee atomicity as long as peer
    /// disconnection is possible" — the Spheres-of-Atomicity experiment
    /// (E8) quantifies exactly this by comparing against
    /// [`crate::spheres::sphere_guarantees_atomicity`].
    pub fn atomicity_holds(&self) -> bool {
        let origin = self.sim.actor(self.origin);
        let Some(outcome) = origin.outcomes.first() else { return false };
        if outcome.committed {
            // Committed: no connected participant may hold *aborted yet
            // divergent* state (compensation must have run wherever an
            // abort was decided). A context still `Active` is tolerated:
            // its effects are part of the committed outcome; the peer
            // merely has not heard the decision (possible when the
            // committing chain is cut by disconnections and chaining is
            // off — one more benefit chaining buys, measured in E6).
            self.participants.iter().all(|&p| {
                if !self.sim.is_connected(p) {
                    return true;
                }
                let actor = self.sim.actor(p);
                let any_aborted = actor
                    .known_txns()
                    .iter()
                    .any(|t| actor.context(*t).map(|c| c.state == TxnState::Aborted).unwrap_or(false));
                if any_aborted {
                    self.peer_matches_baseline(p)
                } else {
                    true
                }
            })
        } else {
            self.participants.iter().all(|&p| !self.sim.is_connected(p) || self.peer_matches_baseline(p))
        }
    }

    /// True when `p`'s repository equals its pre-transaction baseline:
    /// the *name set* must match exactly (a document created during the
    /// transaction has no baseline entry — tolerating it would let an
    /// aborted transaction leak fresh documents past the oracle; a
    /// missing name means compensation dropped a document outright) and
    /// every document's bytes must match.
    fn peer_matches_baseline(&self, p: PeerId) -> bool {
        let actor = self.sim.actor(p);
        let names = actor.repo.names();
        let baseline_names: Vec<&str> =
            self.baseline.keys().filter(|(q, _)| *q == p).map(|(_, n)| n.as_str()).collect();
        if names != baseline_names {
            return false;
        }
        names.iter().all(|name| {
            self.baseline
                .get(&(p, (*name).to_string()))
                .map(|base| actor.repo.get(name).expect("listed").to_xml() == *base)
                .unwrap_or(false)
        })
    }

    /// The lifecycle-event journal, if the scenario was built with
    /// [`ScenarioBuilder::traced`].
    pub fn trace(&self) -> Option<&TraceJournal> {
        self.sim.trace()
    }

    /// One unified counter registry for the run: network counters
    /// (`net.*`) merged with every participant's protocol stats
    /// (`peer<k>.*`) and the fleet-wide durability-sink totals (`wal.*`).
    /// This is the snapshot trace dumps embed so a single artifact
    /// carries both the event stream and the totals.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = self.sim.metrics().snapshot();
        for &p in &self.participants {
            let actor = self.sim.actor(p);
            s.merge(&actor.stats.snapshot(p));
            let wal = actor.wal_stats();
            s.add("wal.segments_rotated", wal.segments_rotated);
            s.add("wal.bytes_appended", wal.bytes_appended);
            s.add("wal.recovery_entries", wal.recovery_entries);
            s.add("wal.torn_tails_discarded", wal.torn_tails_discarded);
            s.add("wal.append_faults", wal.append_faults);
        }
        s
    }

    /// Documents diverging from the baseline on connected peers
    /// (diagnostics for failed atomicity checks). A document with no
    /// baseline entry (created during the transaction) or a baseline
    /// entry with no surviving document (dropped by compensation) is
    /// divergence too.
    pub fn divergent_docs(&self) -> Vec<(PeerId, String)> {
        let mut out = Vec::new();
        for &p in &self.participants {
            if !self.sim.is_connected(p) {
                continue;
            }
            let actor = self.sim.actor(p);
            for name in actor.repo.names() {
                match self.baseline.get(&(p, name.to_string())) {
                    Some(base) => {
                        if actor.repo.get(name).expect("listed").to_xml() != *base {
                            out.push((p, name.to_string()));
                        }
                    }
                    None => out.push((p, format!("{name} (created during the transaction)"))),
                }
            }
            for (_, name) in self.baseline.keys().filter(|(q, _)| *q == p) {
                if actor.repo.get(name).is_none() {
                    out.push((p, format!("{name} (missing after the run)")));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::{DetectHow, RecoveryStyle};

    // ------------------------------------------------------------------
    // Happy path.
    // ------------------------------------------------------------------

    #[test]
    fn fig1_commits_without_faults() {
        let mut s = ScenarioBuilder::fig1().build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        assert!(outcome.committed);
        assert!(report.atomic);
        // Every participant executed its update.
        for p in [1u32, 2, 3, 4, 5, 6] {
            let actor = s.sim.actor(PeerId(p));
            let doc = actor.repo.get(&format!("d{p}")).unwrap();
            assert!(doc.to_xml().contains(&format!("done-{p}")), "{p}: {}", doc.to_xml());
        }
        // 5 invocations (S2, S3, S4, S5, S6).
        assert_eq!(report.metrics.kind("invoke"), 5);
        assert_eq!(report.metrics.kind("result"), 5);
        assert_eq!(report.metrics.kind("abort"), 0);
    }

    #[test]
    fn snapshot_exports_wal_counters() {
        // The unified registry carries the fleet's durability-sink
        // totals. Under the default in-memory sinks the append
        // accounting still runs (bytes flow through the same codec), so
        // the counters are live even before a disk-backed WAL attaches.
        let mut s = ScenarioBuilder::fig1().build();
        s.run();
        let snap = s.snapshot();
        assert!(snap.get("wal.bytes_appended") > 0, "appended journal bytes are accounted");
        assert_eq!(snap.get("wal.segments_rotated"), 0);
        assert_eq!(snap.get("wal.recovery_entries"), 0, "no crash, no recovery");
        assert_eq!(snap.get("wal.torn_tails_discarded"), 0);
        assert_eq!(snap.get("wal.append_faults"), 0);
    }

    #[test]
    fn fig1_query_flavor_commits_and_aggregates() {
        let mut s = ScenarioBuilder::fig1().flavor(Flavor::Query).build();
        let report = s.run();
        assert!(report.outcome.expect("resolved").committed);
        let origin = s.sim.actor(PeerId(1));
        let txn = report.txn.unwrap();
        let results = origin.results.get(&txn).expect("query results");
        // The origin's query sees its own base plus everything the tree
        // materialized upward.
        let text: String = results.iter().map(|f| f.to_xml()).collect();
        for p in [1u32, 2, 3, 4, 5, 6] {
            assert!(text.contains(&format!("base-{p}")), "missing base-{p} in {text}");
        }
    }

    // ------------------------------------------------------------------
    // E1: Fig. 1 nested recovery.
    // ------------------------------------------------------------------

    #[test]
    fn fig1_nested_recovery_backward_propagation() {
        // AP5 fails while processing S5 and no handlers exist anywhere:
        // the abort propagates to the origin, exactly §3.2 steps 1–4.
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        assert!(!outcome.committed, "transaction aborts");
        assert!(report.atomic, "all effects compensated: {:?}", s.divergent_docs());
        // Terminal states everywhere.
        for p in [1u32, 2, 3, 4, 5, 6] {
            let actor = s.sim.actor(PeerId(p));
            for t in actor.known_txns() {
                assert!(actor.context(t).unwrap().is_terminal(), "AP{p} context not terminal");
            }
        }
        // The failing peer compensated itself and sent aborts both ways.
        let ap5 = &report.stats[&PeerId(5)];
        assert_eq!(ap5.faults_raised, 1);
        assert!(ap5.aborts_sent >= 2, "to AP6 (down) and AP3 (up): {}", ap5.aborts_sent);
        // Fault messages climbed AP5 → AP3 → AP1.
        assert!(report.metrics.kind("fault") >= 2);
        // AP2's branch got aborted from the origin.
        let ap2 = &report.stats[&PeerId(2)];
        assert!(ap2.aborts_received >= 1);
    }

    #[test]
    fn fig1_forward_recovery_with_substitute_handler_at_ap3() {
        // AP3 defines a catchAll substitution for S5: the fault is
        // absorbed there ("the intermediate peers have the option of
        // performing forward recovery") and the transaction commits.
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None).config(cfg).build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        assert!(outcome.committed, "forward recovery absorbs the fault");
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.substitutions, 1);
        // The fault never reached AP1.
        let ap1 = &report.stats[&PeerId(1)];
        assert_eq!(ap1.aborts_received, 0);
    }

    #[test]
    fn fig1_retry_handler_retries_then_propagates() {
        // A retry handler on a permanently-failing service retries and
        // then propagates.
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).retry_handler(3, 5, None, 2, 3).config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.retries, 2);
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
    }

    #[test]
    fn fig1_alternative_provider_redoes_failed_service() {
        // A replica of AP5 exists: forward recovery re-invokes S5 there
        // ("a different peer … can only be a peer containing a replicated
        // copy of the affected AXML document").
        let (b, replica) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
        let mut s = b.build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        assert!(outcome.committed, "redo on the replica commits the transaction");
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.alternatives_used, 1);
        // The replica did the work.
        let rep = s.sim.actor(PeerId(replica));
        assert!(rep.repo.get("d5").unwrap().to_xml().contains("done-5"));
        assert!(report.atomic);
    }

    #[test]
    fn fig1_backward_only_never_tries_forward_recovery() {
        let mut cfg = PeerConfig::default();
        cfg.recovery = RecoveryStyle::BackwardOnly;
        let (b, _replica) = ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None).with_replica(5);
        let mut s = b.config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.substitutions, 0);
        assert_eq!(ap3.alternatives_used, 0);
        assert!(report.atomic);
    }

    #[test]
    fn fig1_peer_independent_compensation() {
        let mut cfg = PeerConfig::default();
        cfg.peer_independent = true;
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
        // Compensate messages were used.
        assert!(report.metrics.kind("compensate") >= 1, "metrics: {:?}", report.metrics.by_kind);
    }

    // ------------------------------------------------------------------
    // E2: Fig. 2 disconnection scenarios.
    // ------------------------------------------------------------------

    /// Instruments Fig. 2 so the target peer is mid-work when it drops:
    /// long service durations keep the tree busy.
    fn fig2_with(durations: &[(u32, u64)]) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::fig2();
        for (p, d) in durations {
            b.durations.insert(*p, *d);
        }
        b
    }

    #[test]
    fn fig2a_leaf_disconnection_detected_by_parent() {
        // (a) AP6 disconnects while processing S6; parent AP3 detects via
        // keep-alive and follows the nested recovery protocol.
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = fig2_with(&[(6, 500)]).disconnect(40, 6).config(cfg).build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        assert!(!outcome.committed);
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
        let ap3 = &report.stats[&PeerId(3)];
        let det = ap3.detections.iter().find(|d| d.disconnected == PeerId(6)).expect("AP3 detected AP6");
        assert!(matches!(det.how, DetectHow::PingTimeout));
    }

    #[test]
    fn fig2b_parent_disconnection_detected_by_child_with_chaining() {
        // (b) AP3 disconnects while AP6 is processing; AP6 detects it when
        // returning results and re-routes them to AP2 via the chain; AP2
        // performs forward recovery on a replica of AP3, reusing AP6's work.
        // Pings are slowed down so the chaining path (synchronous send
        // failure) is the first detector, as in the paper's narrative.
        let mut cfg = PeerConfig::default();
        cfg.ping_interval = 300;
        cfg.ping_timeout = 700;
        let (b, replica) = fig2_with(&[(6, 60)]).with_replica(3);
        let mut s = b.disconnect(30, 3).config(cfg).build();
        let report = s.run();
        let outcome = report.outcome.expect("resolved");
        let ap6 = &report.stats[&PeerId(6)];
        let det = ap6.detections.iter().find(|d| d.disconnected == PeerId(3)).expect("AP6 detected AP3");
        assert_eq!(det.how, DetectHow::SendFailure, "detected while trying to return the results");
        assert_eq!(ap6.redirects_sent, 1);
        let ap2 = &report.stats[&PeerId(2)];
        assert_eq!(ap2.redirects_received, 1);
        assert_eq!(ap2.alternatives_used, 1, "S3 redone on the replica");
        let rep = &report.stats[&PeerId(replica)];
        assert_eq!(rep.work_reused, 1, "AP6's results passed as materialized input");
        assert!(outcome.committed, "recovery completes the transaction");
    }

    #[test]
    fn fig2b_without_chaining_work_is_wasted() {
        // Same setup as the chaining variant, chaining off: AP6 discards
        // its completed work ("traditional recovery"), AP2's pings detect
        // AP3 much later, and the recovery on the replica redoes S6 from
        // scratch — no reuse.
        let mut cfg = PeerConfig::default();
        cfg.chaining = false;
        cfg.ping_interval = 300;
        cfg.ping_timeout = 700;
        let (b, _replica) = fig2_with(&[(6, 60)]).with_replica(3);
        let mut s = b.disconnect(30, 3).config(cfg).build();
        let report = s.run();
        let ap6 = &report.stats[&PeerId(6)];
        assert_eq!(ap6.redirects_sent, 0);
        assert!(ap6.work_wasted >= 1, "AP6 discards its work");
        for st in report.stats.values() {
            assert_eq!(st.work_reused, 0, "no reuse without chaining");
        }
        // Chaining's benefit shows as detection latency: compare with the
        // chaining run (see bench fig2_disconnection for the numbers).
        let first_detect = report
            .stats
            .values()
            .flat_map(|s| s.detections.iter())
            .filter(|d| d.disconnected == PeerId(3))
            .map(|d| d.at)
            .min()
            .expect("someone detects AP3");
        assert!(first_detect > 60, "without chaining, detection waits for slow pings (got {first_detect})");
    }

    #[test]
    fn fig2c_child_disconnection_notifies_descendants() {
        // (c) AP3 disconnects; parent AP2 detects it via keep-alive and
        // uses the chain to warn AP3's descendants (AP6), which stop
        // working.
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        // AP6 busy for a long time: without the notice it would keep going.
        let mut s = fig2_with(&[(6, 2000), (3, 3000)]).disconnect(50, 3).config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        let ap2 = &report.stats[&PeerId(2)];
        assert!(
            ap2.detections.iter().any(|d| d.disconnected == PeerId(3) && d.how == DetectHow::PingTimeout),
            "AP2 detects AP3 via pings"
        );
        let ap6 = &report.stats[&PeerId(6)];
        assert_eq!(ap6.orphan_stops, 1, "AP6 stopped early thanks to the notice");
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
    }

    #[test]
    fn fig2d_sibling_disconnection_via_streams() {
        // (d) AP3 and AP4 exchange subscription streams; AP3 disconnects
        // and AP4 notices the silence, then notifies AP3's parent and
        // children via the chain.
        let mut cfg = PeerConfig::default();
        cfg.stream_interval = Some(7);
        cfg.ping_interval = 400; // pings would otherwise detect first
        cfg.ping_timeout = 900;
        cfg.use_alternative_providers = false;
        let mut s = fig2_with(&[(3, 3000), (4, 3000), (5, 50), (6, 50)]).disconnect(60, 3).config(cfg).build();
        let report = s.run();
        let ap4 = &report.stats[&PeerId(4)];
        let det = ap4.detections.iter().find(|d| d.disconnected == PeerId(3)).expect("AP4 detected its sibling");
        assert!(
            matches!(det.how, DetectHow::StreamSilence | DetectHow::SendFailure),
            "stream-based detection, got {:?}",
            det.how
        );
        // The notice reached AP3's child (AP6) and parent (AP2).
        let ap6 = &report.stats[&PeerId(6)];
        assert!(
            ap6.detections.iter().any(|d| d.disconnected == PeerId(3) && d.how == DetectHow::Notice),
            "AP6 informed via the chain"
        );
        let ap2 = &report.stats[&PeerId(2)];
        assert!(ap2.detections.iter().any(|d| d.disconnected == PeerId(3)));
    }

    // ------------------------------------------------------------------
    // Crash-restart round trips (durability journal + presumed abort).
    // ------------------------------------------------------------------

    #[test]
    fn mid_transaction_crash_presumes_abort_and_stays_atomic() {
        // AP3 crashes while serving S3 (long duration keeps it in doubt):
        // its volatile state is wiped, the journal replay finds the
        // in-doubt context, compensates its effects, and pushes the abort
        // both ways — the whole transaction unwinds to the baseline.
        use axml_p2p::CrashEvent;
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut b = ScenarioBuilder::fig1().config(cfg);
        b.durations.insert(3, 50);
        let mut fault = FaultPlane::default();
        fault.crashes.push(CrashEvent { at: 30, peer: PeerId(3) });
        let mut s = b.fault_plane(fault).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed, "presumed abort reaches the origin");
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.crash_recoveries, 1);
        assert!(ap3.presumed_aborts >= 1, "the in-doubt context was presumed aborted");
        // The resolution was journaled, so the rebuilt context is terminal.
        let txn = report.txn.expect("known txn");
        let tc = s.sim.actor(PeerId(3)).context(txn).expect("replayed from journal");
        assert_eq!(tc.state, TxnState::Aborted);
        assert!(
            s.sim
                .actor(PeerId(3))
                .journal()
                .iter()
                .any(|e| matches!(e, crate::durability::JournalEntry::Resolved { committed: false, .. })),
            "presumed abort appended to the journal"
        );
    }

    #[test]
    fn post_commit_crash_replays_journal_without_recompensating() {
        // AP3 crashes long after the transaction committed: replay finds
        // only a terminal context, so nothing is compensated and the
        // committed effects survive the restart.
        use axml_p2p::CrashEvent;
        let mut fault = FaultPlane::default();
        fault.crashes.push(CrashEvent { at: 5000, peer: PeerId(3) });
        let mut s = ScenarioBuilder::fig1().fault_plane(fault).build();
        let report = s.run();
        assert!(report.outcome.expect("resolved").committed);
        let ap3 = &report.stats[&PeerId(3)];
        assert_eq!(ap3.crash_recoveries, 1);
        assert_eq!(ap3.presumed_aborts, 0, "terminal contexts are left untouched");
        let txn = report.txn.expect("known txn");
        let actor = s.sim.actor(PeerId(3));
        assert_eq!(actor.context(txn).expect("replayed").state, TxnState::Committed);
        assert!(actor.repo.get("d3").expect("doc").to_xml().contains("done-3"), "committed effects survive");
    }

    // ------------------------------------------------------------------
    // Lifecycle tracing.
    // ------------------------------------------------------------------

    #[test]
    fn traced_run_covers_the_lifecycle_and_replays_byte_identically() {
        let mut a = ScenarioBuilder::fig1().fault_at(5).traced().build();
        a.run();
        let journal = a.trace().expect("traced build collects a journal");
        // The fig1-with-fault run exercises the whole §3.2 lifecycle.
        for label in [
            "submit",
            "invoke",
            "serve",
            "materialize",
            "log-append",
            "fault-raise",
            "compensate-apply",
            "abort-propagate",
            "resolve",
        ] {
            assert!(journal.count(label) > 0, "no {label} events");
        }
        let lines = journal.to_json_lines();
        // Same scenario, same seed: the journal is replay-stable.
        let mut b = ScenarioBuilder::fig1().fault_at(5).traced().build();
        b.run();
        assert_eq!(lines, b.trace().unwrap().to_json_lines());
        // Untraced builds pay nothing and expose no journal.
        let mut c = ScenarioBuilder::fig1().fault_at(5).build();
        c.run();
        assert!(c.trace().is_none());
    }

    #[test]
    fn snapshot_unifies_net_and_peer_counters() {
        let mut s = ScenarioBuilder::fig1().fault_at(5).traced().build();
        let report = s.run();
        let snap = s.snapshot();
        assert_eq!(snap.get("net.sent.invoke"), report.metrics.kind("invoke"));
        assert_eq!(snap.get("peer.5.faults_raised"), 1);
        assert_eq!(snap.get("peer.1.served"), report.stats[&PeerId(1)].served);
        let rendered = snap.render();
        assert!(rendered.contains("net.sent"), "render lists net counters: {rendered}");
        assert!(rendered.contains("peer.5.faults_raised"), "render lists peer counters");
    }

    // ------------------------------------------------------------------
    // Spheres of atomicity sanity.
    // ------------------------------------------------------------------

    #[test]
    fn all_super_sphere_survives_scheduled_churn() {
        // Every participant is a super peer: scheduled disconnects are
        // ignored and atomicity is guaranteed.
        let mut b = ScenarioBuilder::fig2();
        b.supers = vec![1, 2, 3, 4, 5, 6];
        let mut s = b.disconnect(30, 3).disconnect(40, 6).build();
        let report = s.run();
        assert!(report.outcome.expect("resolved").committed);
        assert!(report.atomic);
        let txn = report.txn.unwrap();
        let chain = s.sim.actor(PeerId(1)).context(txn).unwrap().chain.clone();
        assert!(crate::spheres::sphere_guarantees_atomicity(&chain));
    }

    #[test]
    fn chain_notation_of_fig2_run() {
        let mut s = ScenarioBuilder::fig2().build();
        let report = s.run();
        let txn = report.txn.unwrap();
        let chain = &s.sim.actor(PeerId(1)).context(txn).unwrap().chain;
        assert_eq!(chain.to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
    }

    // ------------------------------------------------------------------
    // Oracle strictness: leaked and dropped documents.
    // ------------------------------------------------------------------

    #[test]
    fn aborted_txn_leaking_a_fresh_document_fails_the_oracle() {
        // An aborted transaction must leave the post-abort document *name
        // set* equal to the baseline name set. Services cannot create
        // documents today, so the leak is emulated the way a buggy
        // compensation path would produce it: a fresh document appears on
        // a participant during the run and survives the abort. Before the
        // name-set rule, `atomicity_holds` silently tolerated any
        // document without a baseline entry (`None => true`).
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        assert!(s.atomicity_holds(), "clean abort is atomic");
        s.sim.actor_mut(PeerId(4)).repo.put_xml("leaked-scratch", "<d><out>leak</out></d>").unwrap();
        assert!(!s.atomicity_holds(), "a document created during the transaction must fail an aborted oracle");
        assert!(
            s.divergent_docs().iter().any(|(p, n)| *p == PeerId(4) && n.contains("leaked-scratch")),
            "diagnostics name the leaked document: {:?}",
            s.divergent_docs()
        );
    }

    #[test]
    fn aborted_txn_dropping_a_baseline_document_fails_the_oracle() {
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
        let report = s.run();
        assert!(!report.outcome.expect("resolved").committed);
        s.sim.actor_mut(PeerId(2)).repo.remove("d2").expect("hosted");
        assert!(!s.atomicity_holds(), "a baseline document missing after the abort must fail the oracle");
        assert!(
            s.divergent_docs().iter().any(|(p, n)| *p == PeerId(2) && n.contains("missing")),
            "diagnostics name the dropped document: {:?}",
            s.divergent_docs()
        );
    }

    #[test]
    fn committed_txn_with_aborted_participant_leaking_a_document_fails_the_oracle() {
        // The committed branch applies the same name-set rule to any
        // participant that decided abort: its compensation must not leave
        // fresh documents behind either.
        let mut s = ScenarioBuilder::fig1().build();
        let report = s.run();
        assert!(report.outcome.expect("resolved").committed);
        assert!(s.atomicity_holds());
    }

    // ------------------------------------------------------------------
    // Deterministic txn fallback.
    // ------------------------------------------------------------------

    #[test]
    fn unresolved_report_txn_is_the_origin_root_transaction() {
        // Deadline short enough that the origin never records an outcome:
        // the report's txn must still resolve deterministically to the
        // origin's own root transaction (origin = AP1, epoch 0, seq 0) —
        // not whatever context happens to sort first at the origin.
        let mut b = ScenarioBuilder::fig1();
        b.deadline = 3;
        let mut s = b.build();
        let report = s.run();
        assert!(report.outcome.is_none(), "deadline precedes resolution");
        let txn = report.txn.expect("origin submitted before the deadline");
        assert_eq!(txn, TxnId::new(PeerId(1), 0));
        let ctx = s.sim.actor(PeerId(1)).context(txn).expect("root context");
        assert!(ctx.parent.is_none(), "the fallback txn is the root, parentless context");
        // Replay-stable: a second identical run picks the same txn.
        let mut b2 = ScenarioBuilder::fig1();
        b2.deadline = 3;
        assert_eq!(b2.build().run().txn, Some(txn));
    }

    #[test]
    fn planned_chain_matches_actual_run() {
        // The statically-predicted chain equals the chain a fault-free run
        // actually records at the origin.
        let builder = ScenarioBuilder::fig2();
        let planned = builder.planned_chain();
        assert_eq!(planned.to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
        let mut s = builder.build();
        let report = s.run();
        let txn = report.txn.unwrap();
        let actual = &s.sim.actor(PeerId(1)).context(txn).unwrap().chain;
        assert_eq!(*actual, planned);
    }
}

#[cfg(test)]
mod config_matrix_tests {
    use super::*;
    use crate::peer::ChainScope;
    use axml_doc::EvalMode;

    /// The happy path commits and stays atomic under every configuration
    /// knob combination.
    #[test]
    fn happy_path_commits_under_all_config_combinations() {
        for peer_independent in [false, true] {
            for chaining in [false, true] {
                for eval in [EvalMode::Lazy, EvalMode::Eager] {
                    for scope in [ChainScope::Standard, ChainScope::Extended] {
                        for isolation in [false, true] {
                            let mut cfg = PeerConfig::default();
                            cfg.peer_independent = peer_independent;
                            cfg.chaining = chaining;
                            cfg.eval = eval;
                            cfg.chain_scope = scope;
                            cfg.isolation = isolation;
                            let mut s = ScenarioBuilder::fig1().config(cfg).build();
                            let report = s.run();
                            let label = format!(
                                "pi={peer_independent} chain={chaining} eval={eval:?} scope={scope:?} iso={isolation}"
                            );
                            assert!(report.outcome.as_ref().map(|o| o.committed).unwrap_or(false), "{label}");
                            assert!(report.atomic, "{label}: {:?}", s.divergent_docs());
                        }
                    }
                }
            }
        }
    }

    /// A fault aborts atomically under every configuration combination.
    #[test]
    fn fault_aborts_atomically_under_all_config_combinations() {
        for peer_independent in [false, true] {
            for chaining in [false, true] {
                for scope in [ChainScope::Standard, ChainScope::Extended] {
                    let mut cfg = PeerConfig::default();
                    cfg.peer_independent = peer_independent;
                    cfg.chaining = chaining;
                    cfg.chain_scope = scope;
                    cfg.use_alternative_providers = false;
                    let mut s = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
                    let report = s.run();
                    let label = format!("pi={peer_independent} chain={chaining} scope={scope:?}");
                    assert!(!report.outcome.as_ref().map(|o| o.committed).unwrap_or(true), "{label}");
                    assert!(report.atomic, "{label}: {:?}", s.divergent_docs());
                }
            }
        }
    }

    /// Query flavor with peer-independent compensation: materialization
    /// effects on *intermediate* peers are compensated via shipped
    /// definitions.
    #[test]
    fn query_flavor_peer_independent_abort() {
        let mut cfg = PeerConfig::default();
        cfg.peer_independent = true;
        cfg.use_alternative_providers = false;
        let mut b = ScenarioBuilder::fig1().flavor(Flavor::Query).fault_at(2).config(cfg);
        b.durations.insert(2, 400); // AP3's subtree completes first
        let mut s = b.build();
        let report = s.run();
        assert!(!report.outcome.unwrap().committed);
        assert!(report.atomic, "divergent: {:?}", s.divergent_docs());
        assert!(report.metrics.kind("compensate") > 0);
    }

    /// Commit fan-out without chaining still reaches every participant
    /// through the invocation cascade.
    #[test]
    fn commit_cascade_without_chaining() {
        let mut cfg = PeerConfig::default();
        cfg.chaining = false;
        let mut s = ScenarioBuilder::fig1().config(cfg).build();
        let report = s.run();
        let txn = report.txn.unwrap();
        assert!(report.outcome.unwrap().committed);
        for p in [1u32, 2, 3, 4, 5, 6] {
            let tc = s.sim.actor(PeerId(p)).context(txn).expect("participated");
            assert_eq!(tc.state, crate::context::TxnState::Committed, "AP{p}");
        }
    }

    /// Extended chaining also runs the disconnection scenarios correctly
    /// (scenario (b) with reuse).
    #[test]
    fn extended_scope_scenario_b_still_reuses_work() {
        let mut cfg = PeerConfig::default();
        cfg.chain_scope = ChainScope::Extended;
        cfg.ping_interval = 300;
        cfg.ping_timeout = 700;
        let mut b = ScenarioBuilder::fig2();
        b.durations.insert(6, 60);
        let (b, replica) = b.with_replica(3);
        let mut s = b.disconnect(30, 3).config(cfg).build();
        let report = s.run();
        assert!(report.outcome.unwrap().committed);
        assert_eq!(report.stats[&PeerId(replica)].work_reused, 1);
    }
}
