#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's contribution: a transactional framework with relaxed
//! atomicity for ActiveXML systems.
//!
//! Three pieces, mapping 1:1 to the paper's §3:
//!
//! - **Dynamic compensation (§3.1)** — [`compensate`]: compensating
//!   operations are *constructed at run time from the log*, never
//!   pre-declared. Insert ⇄ delete (by unique node ID), replace →
//!   replace-back (logged old value), query → inverse of whatever its lazy
//!   materialization actually did. A [`compensate::StaticCompensator`]
//!   baseline implements the classical pre-declared model the paper argues
//!   against; experiment E3 measures where it breaks.
//! - **Nested + peer-independent recovery (§3.2)** — [`peer::AxmlPeer`]'s
//!   abort protocol: a failing peer aborts its transaction context,
//!   compensates its local effects and propagates `Abort TA` to its
//!   invoker and invokees; intermediate peers may absorb the fault with
//!   the embedded call's fault handlers (retry / replica / substitute —
//!   *forward recovery*) or keep propagating (*backward recovery*). In
//!   peer-independent mode every invocation result carries a
//!   [`compensate::CompensatingService`] definition, so any peer (e.g. the
//!   origin) can drive compensation directly — the original peers "do not
//!   even need to be aware that the services they are executing are,
//!   basically, compensating services".
//! - **Peer disconnection via chaining (§3.3)** — [`chain::ActiveList`]
//!   (the paper's `[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]` notation)
//!   travels with every invocation; the disconnection handlers in
//!   [`peer`] implement scenarios (a)–(d) — leaf, parent-detected-by-child
//!   (with result re-routing and work reuse), child-detected-by-parent
//!   (with orphan notification), and sibling (missed stream intervals).
//!   [`spheres`] implements the Spheres-of-Atomicity check: atomicity is
//!   guaranteed iff every participant is a super peer.
//!
//! The executable reproductions of the paper's Fig. 1 and Fig. 2 live in
//! [`scenarios`].

pub mod chain;
pub mod compensate;
pub mod context;
pub mod durability;
pub mod ids;
pub mod isolation;
pub mod messages;
pub mod peer;
pub mod scenarios;
pub mod spheres;

pub use chain::ActiveList;
pub use compensate::{compensation_for_effects, CompensatingService, StaticCompensator};
pub use context::{LogRecord, TransactionContext, TxnOutcome, TxnState};
pub use durability::{
    decode as decode_journal, encode as encode_journal, journal_of, recover_in_doubt, replay as replay_journal,
    DurabilitySink, JournalEntry, MemorySink, RecoveryOutcome, WalStats,
};
pub use ids::{InvocationId, TxnId};
pub use isolation::{Claim, Conflict, ConflictTable};
pub use messages::TxnMsg;
pub use peer::{AxmlPeer, ChainScope, DetectHow, Detection, PeerConfig, PeerStats, RecoveryStyle, WsdlCatalog};
pub use spheres::sphere_guarantees_atomicity;
