//! Isolation: per-peer, path-level conflict detection.
//!
//! The paper's framework claims *relaxed ACID* but §2 only argues why
//! lock-based XML protocols (refs \[5\], \[6\]) are "not well suited for AXML
//! systems" because of their active nature, leaving isolation to future
//! work ("related research tends to focus on the A, C, I and D
//! transactional properties independently"). This module supplies the
//! minimal isolation the atomicity protocol composes soundly with:
//! **first-writer-wins structural conflict detection**.
//!
//! Every logged [`Effect`] carries the structural address it touched. A
//! [`ConflictTable`] tracks, per document, which *active* transaction has
//! touched which subtree; a second transaction touching an overlapping
//! subtree (identical path, ancestor, or descendant) conflicts and is
//! refused with an `IsolationConflict` fault — which then flows through
//! the ordinary nested-recovery machinery (retry handlers, alternative
//! providers, or abort). Because writers are serialized per subtree and
//! compensation runs in reverse order, aborted writers restore exactly
//! the state the surviving writer expects.

use crate::ids::TxnId;
use axml_query::{Effect, NodePath};
use std::collections::BTreeMap;

/// A claimed subtree: who touched what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The owning transaction.
    pub txn: TxnId,
    /// Document name.
    pub doc: String,
    /// Structural address of the touched subtree.
    pub path: NodePath,
}

/// Why a claim was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The transaction that already owns the overlapping subtree.
    pub holder: TxnId,
    /// The overlapping claim.
    pub holder_path: NodePath,
    /// The refused path.
    pub requested: NodePath,
}

/// Per-peer table of subtree claims held by active transactions.
///
/// ```
/// use axml_core::{ConflictTable, TxnId};
/// use axml_p2p::PeerId;
/// use axml_query::NodePath;
///
/// let mut table = ConflictTable::new();
/// let t1 = TxnId::new(PeerId(1), 0);
/// let t2 = TxnId::new(PeerId(2), 0);
/// table.claim(t1, "doc", &NodePath(vec![0])).unwrap();
/// assert!(table.claim(t2, "doc", &NodePath(vec![0, 3])).is_err(), "subtree overlap");
/// table.release(t1);
/// assert!(table.claim(t2, "doc", &NodePath(vec![0, 3])).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConflictTable {
    claims: BTreeMap<String, Vec<(TxnId, NodePath)>>,
}

/// True if one path is the other (or an ancestor of it) — the overlap
/// rule: touching a node conflicts with anything touching its subtree or
/// any of its ancestors.
fn overlaps(a: &NodePath, b: &NodePath) -> bool {
    a == b || a.is_ancestor_of(b) || b.is_ancestor_of(a)
}

impl ConflictTable {
    /// An empty table.
    pub fn new() -> ConflictTable {
        ConflictTable::default()
    }

    /// Attempts to claim `path` in `doc` for `txn`. Claims held by the
    /// same transaction never conflict (re-entrant).
    pub fn claim(&mut self, txn: TxnId, doc: &str, path: &NodePath) -> Result<(), Conflict> {
        if let Some(claims) = self.claims.get(doc) {
            for (holder, held) in claims {
                if *holder != txn && overlaps(held, path) {
                    return Err(Conflict { holder: *holder, holder_path: held.clone(), requested: path.clone() });
                }
            }
        }
        self.claims.entry(doc.to_string()).or_default().push((txn, path.clone()));
        Ok(())
    }

    /// Claims the subtrees an effect batch touches (all-or-nothing: on
    /// conflict nothing new is recorded).
    pub fn claim_effects(&mut self, txn: TxnId, doc: &str, effects: &[Effect]) -> Result<(), Conflict> {
        // Validate first…
        for e in effects {
            let path = effect_path(e);
            if let Some(claims) = self.claims.get(doc) {
                for (holder, held) in claims {
                    if *holder != txn && overlaps(held, &path) {
                        return Err(Conflict { holder: *holder, holder_path: held.clone(), requested: path });
                    }
                }
            }
        }
        // …then record.
        for e in effects {
            self.claims.entry(doc.to_string()).or_default().push((txn, effect_path(e)));
        }
        Ok(())
    }

    /// Releases every claim of a transaction (commit or abort).
    pub fn release(&mut self, txn: TxnId) {
        for claims in self.claims.values_mut() {
            claims.retain(|(t, _)| *t != txn);
        }
        self.claims.retain(|_, v| !v.is_empty());
    }

    /// Claims currently held by a transaction.
    pub fn held_by(&self, txn: TxnId) -> Vec<Claim> {
        let mut out = Vec::new();
        for (doc, claims) in &self.claims {
            for (t, p) in claims {
                if *t == txn {
                    out.push(Claim { txn, doc: doc.clone(), path: p.clone() });
                }
            }
        }
        out
    }

    /// Total live claims (diagnostics).
    pub fn len(&self) -> usize {
        self.claims.values().map(Vec::len).sum()
    }

    /// True if no claims are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The structural address an effect touches: the affected subtree for
/// inserts, the vacated child *slot* for deletes.
///
/// Slot-level delete claims keep independent writers on sibling subtrees
/// from conflicting (the common replace-in-place case is a delete+insert
/// at one slot). The price is that a standalone delete shifts its later
/// siblings' positions without conflicting with claims on them; AXML
/// updates are replace-dominant, and the atomicity machinery addresses
/// compensation through the same log that created the claims, so replays
/// stay consistent — but fully general positional serializability would
/// need parent-level claims here.
pub fn effect_path(e: &Effect) -> NodePath {
    match e {
        Effect::Inserted { path, .. } => path.clone(),
        Effect::Deleted { parent_path, position, .. } => parent_path.child(*position),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_p2p::PeerId;
    use axml_query::{Locator, PathExpr, UpdateAction};
    use axml_xml::{Document, Fragment};

    fn t(n: u64) -> TxnId {
        TxnId::new(PeerId(1), n)
    }

    fn p(idxs: &[usize]) -> NodePath {
        NodePath(idxs.to_vec())
    }

    #[test]
    fn overlap_rule() {
        assert!(overlaps(&p(&[0]), &p(&[0])));
        assert!(overlaps(&p(&[0]), &p(&[0, 1])));
        assert!(overlaps(&p(&[0, 1]), &p(&[0])));
        assert!(!overlaps(&p(&[0]), &p(&[1])));
        assert!(!overlaps(&p(&[0, 1]), &p(&[0, 2])));
        assert!(overlaps(&NodePath::root(), &p(&[3, 4])), "root overlaps everything");
    }

    #[test]
    fn disjoint_claims_coexist() {
        let mut table = ConflictTable::new();
        table.claim(t(1), "d", &p(&[0])).unwrap();
        table.claim(t(2), "d", &p(&[1])).unwrap();
        table.claim(t(2), "other", &p(&[0])).unwrap();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn overlapping_claim_conflicts_first_writer_wins() {
        let mut table = ConflictTable::new();
        table.claim(t(1), "d", &p(&[0, 1])).unwrap();
        let err = table.claim(t(2), "d", &p(&[0])).unwrap_err();
        assert_eq!(err.holder, t(1));
        assert_eq!(err.requested, p(&[0]));
        // The loser recorded nothing.
        assert!(table.held_by(t(2)).is_empty());
    }

    #[test]
    fn same_txn_is_reentrant() {
        let mut table = ConflictTable::new();
        table.claim(t(1), "d", &p(&[0])).unwrap();
        table.claim(t(1), "d", &p(&[0, 3])).unwrap();
        assert_eq!(table.held_by(t(1)).len(), 2);
    }

    #[test]
    fn release_frees_subtrees() {
        let mut table = ConflictTable::new();
        table.claim(t(1), "d", &p(&[0])).unwrap();
        assert!(table.claim(t(2), "d", &p(&[0])).is_err());
        table.release(t(1));
        assert!(table.is_empty());
        table.claim(t(2), "d", &p(&[0])).unwrap();
    }

    #[test]
    fn claim_effects_is_all_or_nothing() {
        let mut doc = Document::parse("<r><a/><b/></r>").unwrap();
        let report = UpdateAction::insert(Locator::Path(PathExpr::parse("r/a").unwrap()), vec![Fragment::elem("x")])
            .apply(&mut doc)
            .unwrap();
        let report2 = UpdateAction::delete(Locator::Path(PathExpr::parse("r/b").unwrap())).apply(&mut doc).unwrap();
        let mut all = report.effects.clone();
        all.extend(report2.effects.clone());

        let mut table = ConflictTable::new();
        // Pre-claim the subtree the second effect touches.
        table.claim(t(9), "d", &effect_path(&report2.effects[0])).unwrap();
        let err = table.claim_effects(t(1), "d", &all).unwrap_err();
        assert_eq!(err.holder, t(9));
        assert!(table.held_by(t(1)).is_empty(), "nothing partially recorded");
        // Without the blocker everything claims.
        table.release(t(9));
        table.claim_effects(t(1), "d", &all).unwrap();
        assert_eq!(table.held_by(t(1)).len(), 2);
    }

    #[test]
    fn effect_paths() {
        let mut doc = Document::parse("<r><a/></r>").unwrap();
        let ins = UpdateAction::insert(Locator::Path(PathExpr::parse("r/a").unwrap()), vec![Fragment::elem("x")])
            .apply(&mut doc)
            .unwrap();
        assert_eq!(effect_path(&ins.effects[0]), p(&[0, 0]));
        let del = UpdateAction::delete(Locator::Path(PathExpr::parse("r/a").unwrap())).apply(&mut doc).unwrap();
        assert_eq!(effect_path(&del.effects[0]), p(&[0]), "delete claims the vacated slot");
    }
}
