//! Spheres of Atomicity (§3.3).
//!
//! "It might not be possible to guarantee atomicity as long as peer
//! disconnection is possible. Here, we can use the notions of Spheres of
//! Atomicity \[18\] to check if atomicity is guaranteed, e.g., atomicity may
//! still be guaranteed for a transaction if all the involved peers (for
//! that transaction) are super peers."

use crate::chain::ActiveList;
use axml_p2p::PeerId;

/// Static check: does the (planned or observed) participant set guarantee
/// atomicity under arbitrary churn?
///
/// True iff every peer in the active list is a super peer. Super peers do
/// not disconnect, so every compensation / abort message is deliverable
/// and the relaxed-atomicity protocol always terminates in a consistent
/// state.
pub fn sphere_guarantees_atomicity(chain: &ActiveList) -> bool {
    chain.all_super()
}

/// The subset of participants that break the sphere (non-super peers).
pub fn sphere_violations(chain: &ActiveList) -> Vec<PeerId> {
    chain
        .all_peers()
        .into_iter()
        .filter(|p| {
            // A peer not marked super in the list is a potential
            // disconnection point.
            !peer_is_super(chain, *p)
        })
        .collect()
}

fn peer_is_super(chain: &ActiveList, peer: PeerId) -> bool {
    fn go(node: &crate::chain::ChainNode, peer: PeerId) -> Option<bool> {
        if node.peer == peer {
            return Some(node.is_super);
        }
        node.children.iter().find_map(|c| go(c, peer))
    }
    go(&chain.root, peer).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_super_guarantees() {
        let mut l = ActiveList::new(PeerId(1), true);
        l.add_invocation(PeerId(1), PeerId(2), true);
        l.add_invocation(PeerId(2), PeerId(3), true);
        assert!(sphere_guarantees_atomicity(&l));
        assert!(sphere_violations(&l).is_empty());
    }

    #[test]
    fn one_regular_peer_breaks_the_sphere() {
        let mut l = ActiveList::new(PeerId(1), true);
        l.add_invocation(PeerId(1), PeerId(2), true);
        l.add_invocation(PeerId(2), PeerId(3), false);
        assert!(!sphere_guarantees_atomicity(&l));
        assert_eq!(sphere_violations(&l), vec![PeerId(3)]);
    }

    #[test]
    fn origin_counts_too() {
        let l = ActiveList::new(PeerId(1), false);
        assert!(!sphere_guarantees_atomicity(&l));
        assert_eq!(sphere_violations(&l), vec![PeerId(1)]);
    }
}
