//! Protocol messages exchanged between AXML peers.
//!
//! The vocabulary of §3.2/§3.3: service invocations (with the active-peer
//! list piggybacked — chaining), results (with compensating-service
//! definitions piggybacked — peer-independent compensation), `Abort TA`
//! messages, keep-alive pings, re-routed results, disconnection notices,
//! and sibling data streams.

use crate::chain::ActiveList;
use crate::compensate::{CompBundle, CompensatingService};
use crate::ids::{InvocationId, TxnId};
use axml_doc::Fault;
use axml_p2p::{Message, PeerId};
use axml_xml::Fragment;

/// A message of the transactional AXML protocol.
#[derive(Debug, Clone)]
pub enum TxnMsg {
    /// Invoke a service as part of a transaction.
    Invoke {
        /// The transaction.
        txn: TxnId,
        /// Invocation id (allocated by the invoker).
        inv: InvocationId,
        /// Method to invoke.
        method: String,
        /// Resolved parameters.
        params: Vec<(String, String)>,
        /// The active-peer list so far (chaining, §3.3). A singleton list
        /// when chaining is disabled.
        chain: ActiveList,
        /// Reused results from orphaned peers (work reuse, scenario (b)):
        /// `(method, items)` pairs the provider applies instead of
        /// re-invoking that method.
        prefilled: Vec<(String, Vec<Fragment>)>,
    },
    /// A successful invocation result.
    Result {
        /// The transaction.
        txn: TxnId,
        /// The invocation being answered.
        inv: InvocationId,
        /// Result items.
        items: Vec<Fragment>,
        /// Per-peer compensating-service bundle covering everything the
        /// provider (and its own subtree) did — peer-independent mode
        /// (empty otherwise).
        comp: CompBundle,
        /// The provider's (possibly extended) view of the active list.
        chain: ActiveList,
    },
    /// An invocation failed: the provider aborted its context. This is the
    /// upward "Abort TA" of the nested recovery protocol, carrying the
    /// fault so the invoker can consult the embedded call's handlers.
    Fault {
        /// The transaction.
        txn: TxnId,
        /// The invocation that failed.
        inv: InvocationId,
        /// Why.
        fault: Fault,
    },
    /// Downward "Abort TA": abort your context (self-compensating from
    /// your own log) and forward to your invokees.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// Finalize: the transaction committed.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// Peer-independent compensation: execute these compensating actions.
    /// "The original peers do not even need to be aware that the services
    /// they are executing are, basically, compensating services."
    Compensate {
        /// The transaction being compensated.
        txn: TxnId,
        /// What to run.
        service: CompensatingService,
    },
    /// Keep-alive probe.
    Ping,
    /// Keep-alive reply.
    Pong,
    /// Scenario (b): results re-routed to an ancestor because the direct
    /// parent disconnected.
    Redirected {
        /// The transaction.
        txn: TxnId,
        /// The disconnected parent the sender failed to reach.
        failed_parent: PeerId,
        /// The method whose results these are.
        method: String,
        /// The results.
        items: Vec<Fragment>,
        /// Compensating bundle, as in a normal result.
        comp: CompBundle,
    },
    /// Scenarios (b)/(c)/(d): `disconnected` was detected as gone; stop
    /// wasting effort / start recovery.
    DisconnectNotice {
        /// The transaction.
        txn: TxnId,
        /// The peer detected as disconnected.
        disconnected: PeerId,
    },
    /// Subscription-based continuous data between siblings (scenario (d)).
    StreamData {
        /// The transaction.
        txn: TxnId,
        /// Sequence number.
        seq: u64,
    },
    /// Chaining upkeep: a peer learned new invocation-tree edges and
    /// shares them with its parent, children, and siblings (the paper's
    /// "chaining mechanism is restricted to the parent, children and
    /// sibling peers"). Gossip converges because merging is monotone.
    ChainUpdate {
        /// The transaction.
        txn: TxnId,
        /// The sender's current active-peer list.
        chain: ActiveList,
    },
    /// At-least-once delivery envelope: the sender retransmits `inner`
    /// with bounded exponential backoff until the receiver acknowledges
    /// `id` (see [`crate::peer::PeerConfig::reliable`]). The receiver
    /// always acks — even re-deliveries — and suppresses duplicates by
    /// `(sender, id)` so the protocol survives drop *and* duplication.
    Reliable {
        /// Per-sender delivery id, epoch-namespaced across crash-restarts
        /// so a restarted sender never reuses a live id.
        id: u64,
        /// 0 on the first send; `> 0` marks a retransmission.
        attempt: u32,
        /// The payload.
        inner: Box<TxnMsg>,
    },
    /// Acknowledges receipt of a [`TxnMsg::Reliable`] delivery.
    Ack {
        /// The delivery id being acknowledged.
        id: u64,
    },
}

impl Message for TxnMsg {
    fn kind(&self) -> &'static str {
        match self {
            TxnMsg::Invoke { .. } => "invoke",
            TxnMsg::Result { .. } => "result",
            TxnMsg::Fault { .. } => "fault",
            TxnMsg::Abort { .. } => "abort",
            TxnMsg::Commit { .. } => "commit",
            TxnMsg::Compensate { .. } => "compensate",
            TxnMsg::Ping => "ping",
            TxnMsg::Pong => "pong",
            TxnMsg::Redirected { .. } => "redirected",
            TxnMsg::DisconnectNotice { .. } => "disconnect-notice",
            TxnMsg::StreamData { .. } => "stream",
            TxnMsg::ChainUpdate { .. } => "chain-update",
            // Transparent for metrics: a wrapped invoke still counts as
            // an invoke (the envelope is a delivery artifact, not a
            // protocol step).
            TxnMsg::Reliable { inner, .. } => inner.kind(),
            TxnMsg::Ack { .. } => "ack",
        }
    }

    fn is_retransmit(&self) -> bool {
        matches!(self, TxnMsg::Reliable { attempt, .. } if *attempt > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let txn = TxnId::new(PeerId(1), 0);
        let inv = InvocationId::new(PeerId(1), 0);
        let chain = ActiveList::new(PeerId(1), false);
        let msgs: Vec<TxnMsg> = vec![
            TxnMsg::Invoke { txn, inv, method: "m".into(), params: vec![], chain: chain.clone(), prefilled: vec![] },
            TxnMsg::Result { txn, inv, items: vec![], comp: vec![], chain },
            TxnMsg::Fault { txn, inv, fault: Fault::injected("x") },
            TxnMsg::Abort { txn },
            TxnMsg::Commit { txn },
            TxnMsg::Compensate { txn, service: CompensatingService::default() },
            TxnMsg::Ping,
            TxnMsg::Pong,
            TxnMsg::Redirected { txn, failed_parent: PeerId(3), method: "m".into(), items: vec![], comp: vec![] },
            TxnMsg::DisconnectNotice { txn, disconnected: PeerId(3) },
            TxnMsg::StreamData { txn, seq: 0 },
            TxnMsg::ChainUpdate { txn, chain: ActiveList::new(PeerId(1), false) },
            TxnMsg::Ack { id: 7 },
        ];
        let kinds: HashSet<&'static str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn reliable_envelope_is_transparent_for_kind_and_flags_retransmits() {
        let txn = TxnId::new(PeerId(1), 0);
        let first = TxnMsg::Reliable { id: 1, attempt: 0, inner: Box::new(TxnMsg::Abort { txn }) };
        let again = TxnMsg::Reliable { id: 1, attempt: 2, inner: Box::new(TxnMsg::Abort { txn }) };
        assert_eq!(first.kind(), "abort");
        assert!(!first.is_retransmit());
        assert!(again.is_retransmit());
        assert!(!TxnMsg::Ack { id: 1 }.is_retransmit());
    }
}
