//! Regression tests for the active-list chaining invariants (§3.3): the
//! list must stay a duplicate-free tree under `add_invocation`/`remove`,
//! its navigation views must stay mutually consistent, and the paper
//! notation must round-trip through `parse_notation`.

use axml_core::ActiveList;
use axml_p2p::PeerId;

/// Asserts the invariants the static analyzer's L-rules check at runtime:
/// peer uniqueness, `parent_of`/`children_of` mutual consistency, super
/// ancestry, and notation round-trip.
fn assert_tree_invariants(l: &ActiveList) {
    let peers = l.all_peers();
    let mut sorted = peers.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), peers.len(), "duplicate peer in {}", l.to_notation());
    for &p in &peers {
        for c in l.children_of(p) {
            assert_eq!(l.parent_of(c), Some(p), "child {c} of {p} disagrees about its parent");
        }
        if p != l.root.peer {
            let parent = l.parent_of(p).expect("non-root peer has a parent");
            assert!(l.children_of(parent).contains(&p), "{parent} does not list child {p}");
        }
        // Reference walk for the closest super ancestor.
        let by_walk = l.ancestors_of(p).into_iter().find(|a| is_super_in(l, *a));
        assert_eq!(l.closest_super_ancestor(p), by_walk);
    }
    let back = ActiveList::parse_notation(&l.to_notation()).expect("notation parses back");
    assert_eq!(&back, l, "round-trip through {}", l.to_notation());
}

fn is_super_in(l: &ActiveList, peer: PeerId) -> bool {
    fn go(n: &axml_core::chain::ChainNode, peer: PeerId) -> Option<bool> {
        if n.peer == peer {
            return Some(n.is_super);
        }
        n.children.iter().find_map(|c| go(c, peer))
    }
    go(&l.root, peer).unwrap_or(false)
}

fn fig2_list() -> ActiveList {
    let mut l = ActiveList::new(PeerId(1), true);
    l.add_invocation(PeerId(1), PeerId(2), false);
    l.add_invocation(PeerId(2), PeerId(3), false);
    l.add_invocation(PeerId(2), PeerId(4), false);
    l.add_invocation(PeerId(3), PeerId(6), false);
    l.add_invocation(PeerId(4), PeerId(5), false);
    l
}

#[test]
fn invariants_hold_while_growing() {
    let mut l = ActiveList::new(PeerId(1), true);
    assert_tree_invariants(&l);
    for (parent, child) in [(1u32, 2u32), (2, 3), (2, 4), (3, 6), (4, 5)] {
        l.add_invocation(PeerId(parent), PeerId(child), false);
        assert_tree_invariants(&l);
    }
    assert_eq!(l.to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
}

#[test]
fn duplicate_invocations_cannot_corrupt_the_tree() {
    let mut l = fig2_list();
    // A peer already in the list is never added again, even under a
    // different parent (re-invocation through another branch).
    l.add_invocation(PeerId(4), PeerId(3), false);
    l.add_invocation(PeerId(1), PeerId(5), false);
    assert_tree_invariants(&l);
    assert_eq!(l.parent_of(PeerId(3)), Some(PeerId(2)));
    assert_eq!(l.parent_of(PeerId(5)), Some(PeerId(4)));
}

#[test]
fn unknown_parent_invocations_are_ignored() {
    let mut l = fig2_list();
    l.add_invocation(PeerId(42), PeerId(7), false);
    assert!(!l.contains(PeerId(7)));
    assert_tree_invariants(&l);
}

#[test]
fn remove_keeps_invariants_and_drops_descendants() {
    let mut l = fig2_list();
    assert!(l.remove(PeerId(3)));
    assert_tree_invariants(&l);
    assert!(!l.contains(PeerId(3)));
    assert!(!l.contains(PeerId(6)), "descendants leave with the subtree");
    assert_eq!(l.to_notation(), "[AP1* → AP2 → AP4 → AP5]");
    // Removing everything below the root leaves a singleton list.
    assert!(l.remove(PeerId(2)));
    assert_tree_invariants(&l);
    assert_eq!(l.to_notation(), "[AP1*]");
    assert!(!l.remove(PeerId(2)), "already gone");
}

#[test]
fn notation_round_trips_after_mutation() {
    let mut l = fig2_list();
    l.mark_super(PeerId(4));
    l.remove(PeerId(6));
    l.add_invocation(PeerId(5), PeerId(8), true);
    let notation = l.to_notation();
    let back = ActiveList::parse_notation(&notation).unwrap();
    assert_eq!(back, l);
    assert_eq!(back.to_notation(), notation);
}
