//! The deterministic time-series plane: fixed-window integer gauge
//! series recovered from journal [`EventKind::Gauge`] events.
//!
//! The simulator samples every live actor's gauges at fixed sim-time
//! window boundaries (`SimConfig::sample_interval`), emitting one
//! `Gauge` event per (peer, metric, boundary). This module folds those
//! events into a [`SeriesRegistry`]: `metric → peer → boundary → value`,
//! all `BTreeMap`s, so iteration (and every rendering) is byte-stable.
//! Registries from different runs combine with [`SeriesRegistry::absorb`]
//! — a pointwise sum, which is commutative and associative, so a
//! parallel sweep merged in canonical case order produces the same
//! registry as a serial one regardless of worker interleaving.

use axml_trace::{EventKind, TraceJournal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deterministic registry of sampled gauge series.
///
/// Values are plain `u64` sums: a single run's registry holds the
/// sampled readings themselves; an N-run aggregate holds the pointwise
/// sum over runs (total backlog across the fleet at each boundary).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesRegistry {
    /// `metric → peer → window boundary (sim time) → value`.
    pub series: BTreeMap<String, BTreeMap<u32, BTreeMap<u64, u64>>>,
}

/// One flattened point of a [`SeriesRegistry`] — the JSON wire form
/// (the in-memory nested maps are integer-keyed, which the exposition
/// grammar and JSON object keys both handle poorly).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Metric name.
    pub metric: String,
    /// Sampled peer.
    pub peer: u32,
    /// Window boundary (sim time).
    pub at: u64,
    /// Gauge value (summed across absorbed registries).
    pub value: u64,
}

impl SeriesRegistry {
    /// Adds `value` to the point for (`metric`, `peer`, `at`).
    pub fn record(&mut self, metric: &str, peer: u32, at: u64, value: u64) {
        let slot = self.series.entry(metric.to_string()).or_default().entry(peer).or_default().entry(at).or_default();
        *slot = slot.saturating_add(value);
    }

    /// Builds a registry from a journal's [`EventKind::Gauge`] events.
    pub fn from_journal(journal: &TraceJournal) -> Self {
        let mut reg = Self::default();
        for e in journal.events() {
            if let EventKind::Gauge { name, value } = &e.kind {
                reg.record(name, e.peer, e.at, *value);
            }
        }
        reg
    }

    /// Pointwise sum of another registry into this one. Commutative and
    /// associative, so aggregation order never shows in the result.
    pub fn absorb(&mut self, other: &SeriesRegistry) {
        for (metric, peers) in &other.series {
            for (peer, points) in peers {
                for (at, value) in points {
                    self.record(metric, *peer, *at, *value);
                }
            }
        }
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Total number of (metric, peer, boundary) points.
    pub fn points(&self) -> usize {
        self.series.values().flat_map(|peers| peers.values()).map(|pts| pts.len()).sum()
    }

    /// The flattened wire form, in (metric, peer, boundary) order.
    pub fn to_points(&self) -> Vec<SeriesPoint> {
        let mut out = Vec::with_capacity(self.points());
        for (metric, peers) in &self.series {
            for (peer, points) in peers {
                for (at, value) in points {
                    out.push(SeriesPoint { metric: metric.clone(), peer: *peer, at: *at, value: *value });
                }
            }
        }
        out
    }

    /// Stable JSON rendering: one [`SeriesPoint`] per line, in
    /// (metric, peer, boundary) order — byte-identical for equal
    /// registries, diff-friendly across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for p in self.to_points() {
            let _ = writeln!(out, "{}", serde_json::to_string(&p).expect("series point serializes"));
        }
        out
    }

    /// Parses a registry back from [`Self::to_json`] output (blank
    /// lines ignored; points are re-absorbed, so duplicates sum).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut reg = Self::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let p: SeriesPoint = serde_json::from_str(line).map_err(|e| format!("series line {}: {e}", lineno + 1))?;
            reg.record(&p.metric, p.peer, p.at, p.value);
        }
        Ok(reg)
    }

    /// One summary line per metric: peers, points, and the peak value
    /// with the (peer, boundary) where it was observed.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:>6} {:>7}  peak", "series", "peers", "points");
        for (metric, peers) in &self.series {
            let points: usize = peers.values().map(|p| p.len()).sum();
            let mut peak = (0u64, 0u32, 0u64); // (value, peer, at)
            for (peer, pts) in peers {
                for (at, value) in pts {
                    if *value > peak.0 {
                        peak = (*value, *peer, *at);
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>7}  {} (AP{} @ t={})",
                metric,
                peers.len(),
                points,
                peak.0,
                peak.1,
                peak.2
            );
        }
        if self.series.is_empty() {
            out.push_str("(no gauge samples recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> TraceJournal {
        let mut j = TraceJournal::default();
        j.record(25, 0, 0, None, None, None, EventKind::Gauge { name: "outbox_depth".into(), value: 2 });
        j.record(25, 1, 0, None, None, None, EventKind::Gauge { name: "outbox_depth".into(), value: 0 });
        j.record(25, 0, 0, None, None, None, EventKind::Gauge { name: "wal_bytes".into(), value: 512 });
        j.record(50, 0, 0, None, None, None, EventKind::Gauge { name: "outbox_depth".into(), value: 1 });
        j
    }

    #[test]
    fn journal_gauges_fold_into_per_peer_series() {
        let reg = SeriesRegistry::from_journal(&journal());
        assert_eq!(reg.points(), 4);
        assert_eq!(reg.series["outbox_depth"][&0][&25], 2);
        assert_eq!(reg.series["outbox_depth"][&0][&50], 1);
        assert_eq!(reg.series["outbox_depth"][&1][&25], 0);
        assert_eq!(reg.series["wal_bytes"][&0][&25], 512);
    }

    #[test]
    fn absorb_is_a_pointwise_sum_and_commutes() {
        let mut a = SeriesRegistry::default();
        a.record("outbox_depth", 0, 25, 2);
        a.record("dedup_seen", 1, 25, 4);
        let mut b = SeriesRegistry::default();
        b.record("outbox_depth", 0, 25, 3);
        b.record("outbox_depth", 0, 50, 1);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba, "absorb commutes");
        assert_eq!(ab.series["outbox_depth"][&0][&25], 5, "shared points sum");
        assert_eq!(ab.series["outbox_depth"][&0][&50], 1);
        assert_eq!(ab.series["dedup_seen"][&1][&25], 4);
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let reg = SeriesRegistry::from_journal(&journal());
        let text = reg.to_json();
        assert_eq!(text, reg.to_json(), "rendering is stable");
        let back = SeriesRegistry::from_json(&text).unwrap();
        assert_eq!(back, reg);
        assert!(SeriesRegistry::from_json("not json").is_err());
    }

    #[test]
    fn summary_names_the_peak_point() {
        let reg = SeriesRegistry::from_journal(&journal());
        let text = reg.render_summary();
        assert!(text.contains("outbox_depth"), "{text}");
        assert!(text.contains("2 (AP0 @ t=25)"), "{text}");
        assert_eq!(
            SeriesRegistry::default().render_summary(),
            format!("{:<24} {:>6} {:>7}  peak\n(no gauge samples recorded)\n", "series", "peers", "points")
        );
    }
}
