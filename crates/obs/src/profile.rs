//! Per-transaction phase profiler: where a transaction's sim time goes.
//!
//! Derived entirely from a stored [`TraceJournal`], so the breakdown is
//! a pure function of the journal and replay-stable. Each transaction's
//! lifecycle events are bucketed into the paper's protocol phases —
//! invoke (submit + downstream invocations), serve (service execution,
//! materialization, logging, result return), decide (commit/abort
//! resolution), compensate (the abort wave and undo work), recover
//! (crash, restart, and failure detection) — and the invocation tree's
//! critical path is walked to attribute *self-time* to each span on it:
//! the portion of the end-to-end latency that span alone accounts for
//! (head start before its critical child begins, plus tail after the
//! child's subtree finishes). Self-times telescope: they sum exactly to
//! the transaction's critical-path length, giving a per-peer breakdown
//! of who bounds the latency.

use crate::hist::Histogram;
use axml_trace::{EventKind, TraceEvent, TraceJournal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Canonical phase order for rendering and aggregation.
pub const PHASES: [&str; 5] = ["invoke", "serve", "decide", "compensate", "recover"];

/// Maps a lifecycle event onto its protocol phase; `None` for transport
/// and substrate events (acks, retransmits, dedup, gauges, churn that
/// carries no transaction).
pub fn phase_of(kind: &EventKind) -> Option<&'static str> {
    match kind {
        EventKind::Submit { .. } | EventKind::Invoke { .. } => Some("invoke"),
        EventKind::Serve { .. }
        | EventKind::Materialize { .. }
        | EventKind::LogAppend { .. }
        | EventKind::ResultReturn { .. } => Some("serve"),
        EventKind::Resolve { .. } => Some("decide"),
        EventKind::FaultRaise { .. }
        | EventKind::AbortPropagate { .. }
        | EventKind::CompensateDerive { .. }
        | EventKind::CompensateOp { .. }
        | EventKind::CompensateApply { .. } => Some("compensate"),
        EventKind::Crash | EventKind::Restart { .. } | EventKind::Detect { .. } => Some("recover"),
        _ => None,
    }
}

/// One phase's observed window within a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// First event of the phase (sim time).
    pub first: u64,
    /// Last event of the phase (sim time).
    pub last: u64,
    /// Events bucketed into the phase.
    pub events: u64,
}

impl PhaseWindow {
    /// Window width in ticks (0 for a single-event phase).
    pub fn width(&self) -> u64 {
        self.last - self.first
    }
}

/// One span on a transaction's critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathStep {
    /// Invocation span id (`I1.0`).
    pub span: String,
    /// Peer the span executed on.
    pub peer: u32,
    /// First event of the span.
    pub first: u64,
    /// Deepest finish of the span's subtree.
    pub deep_last: u64,
    /// Ticks of the critical path this span alone accounts for.
    pub self_time: u64,
}

/// One peer's share of a transaction's critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerSelfTime {
    /// Peer id.
    pub peer: u32,
    /// Summed self-time of this peer's spans on the critical path.
    pub ticks: u64,
}

/// One transaction's profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnProfile {
    /// Transaction id (`T1.0`).
    pub txn: String,
    /// `committed`, `aborted`, or `unresolved`.
    pub outcome: String,
    /// First lifecycle event (sim time).
    pub first: u64,
    /// Last lifecycle event (sim time).
    pub last: u64,
    /// Phase windows, keyed by phase name (absent phases omitted).
    pub phases: BTreeMap<String, PhaseWindow>,
    /// Critical path, root to leaf, with self-time attribution.
    pub path: Vec<PathStep>,
    /// Per-peer sum of critical-path self-times, ordered by peer id.
    pub peer_self: Vec<PeerSelfTime>,
}

impl TxnProfile {
    /// End-to-end width in ticks.
    pub fn total(&self) -> u64 {
        self.last - self.first
    }
}

/// The whole journal's profile: one [`TxnProfile`] per transaction, in
/// transaction-id order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-transaction profiles, ordered by transaction id.
    pub txns: Vec<TxnProfile>,
}

/// Span aggregate for the critical-path walk. Every field is a pure
/// function of the span's event multiset (never of journal order), so
/// a permuted journal profiles identically.
struct SpanAgg {
    /// (at, peer)-minimal event's peer — the *invoking* side for a
    /// remote span, since the parent stamps the `Invoke` record before
    /// the callee serves.
    peer: u32,
    /// Time `peer` was taken from (the multiset tie-break anchor).
    peer_at: u64,
    /// The serving peer — (at, peer)-minimal over `Serve`/`Submit`
    /// events. Self-time is attributed here: the invocation *executes*
    /// on the serving peer.
    serve_peer: Option<(u64, u32)>,
    first: u64,
    last: u64,
    parent: Option<String>,
}

impl SpanAgg {
    fn executing_peer(&self) -> u32 {
        self.serve_peer.map(|(_, p)| p).unwrap_or(self.peer)
    }
}

fn deep_last(
    span: &str,
    spans: &BTreeMap<String, SpanAgg>,
    children: &BTreeMap<&str, Vec<&str>>,
    memo: &mut BTreeMap<String, u64>,
) -> u64 {
    if let Some(&v) = memo.get(span) {
        return v;
    }
    // Seed before recursing so a malformed journal with a parent cycle
    // terminates instead of overflowing (same guard as `critical_paths`).
    memo.insert(span.to_string(), spans[span].last);
    let mut last = spans[span].last;
    if let Some(cs) = children.get(span) {
        for c in cs {
            last = last.max(deep_last(c, spans, children, memo));
        }
    }
    memo.insert(span.to_string(), last);
    last
}

/// Walks one transaction's invocation tree and returns the critical
/// path with self-time attribution. Tie-breaking matches
/// [`crate::critical_paths`]: deepest finish wins, then the
/// lexicographically smallest span id.
fn critical_path(events: &[&TraceEvent]) -> Vec<PathStep> {
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for e in events {
        let Some(s) = &e.span else { continue };
        let agg = spans.entry(s.clone()).or_insert(SpanAgg {
            peer: e.peer,
            peer_at: e.at,
            serve_peer: None,
            first: e.at,
            last: e.at,
            parent: None,
        });
        agg.first = agg.first.min(e.at);
        agg.last = agg.last.max(e.at);
        if (e.at, e.peer) < (agg.peer_at, agg.peer) {
            agg.peer = e.peer;
            agg.peer_at = e.at;
        }
        if let Some(p) = &e.parent {
            match &mut agg.parent {
                Some(cur) => {
                    if p < cur {
                        *cur = p.clone();
                    }
                }
                slot @ None => *slot = Some(p.clone()),
            }
        }
        if matches!(e.kind, EventKind::Serve { .. } | EventKind::Submit { .. })
            && agg.serve_peer.is_none_or(|sp| (e.at, e.peer) < sp)
        {
            agg.serve_peer = Some((e.at, e.peer));
        }
    }
    if spans.is_empty() {
        return Vec::new();
    }
    let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut roots: Vec<&str> = Vec::new();
    for (name, agg) in &spans {
        match agg.parent.as_deref().filter(|p| spans.contains_key(*p)) {
            Some(p) => children.entry(p).or_default().push(name),
            None => roots.push(name),
        }
    }
    let mut memo = BTreeMap::new();
    roots.sort_by_key(|r| (deep_last(r, &spans, &children, &mut memo), std::cmp::Reverse(*r)));
    let Some(mut cur) = roots.last().copied() else { return Vec::new() };
    // Collect the chain first, then attribute self-time between
    // consecutive steps.
    let mut chain: Vec<&str> = vec![cur];
    while let Some(c) = children.get(cur).and_then(|cs| {
        cs.iter().copied().max_by_key(|c| (deep_last(c, &spans, &children, &mut memo), std::cmp::Reverse(*c)))
    }) {
        chain.push(c);
        cur = c;
    }
    let mut steps = Vec::with_capacity(chain.len());
    for (i, span) in chain.iter().enumerate() {
        let agg = &spans[*span];
        let end = deep_last(span, &spans, &children, &mut memo);
        // Self-time: head before the critical child starts, plus tail
        // after the child's subtree finishes. The leaf keeps its whole
        // extent. Telescoping, the chain sums to end₀ − first₀.
        let self_time = match chain.get(i + 1) {
            Some(child) => {
                let child_agg = &spans[*child];
                let child_end = deep_last(child, &spans, &children, &mut memo);
                child_agg.first.saturating_sub(agg.first) + end.saturating_sub(child_end)
            }
            None => end.saturating_sub(agg.first),
        };
        steps.push(PathStep {
            span: (*span).to_string(),
            peer: agg.executing_peer(),
            first: agg.first,
            deep_last: end,
            self_time,
        });
    }
    steps
}

impl ProfileReport {
    /// Profiles every transaction in the journal.
    pub fn from_journal(journal: &TraceJournal) -> Self {
        let mut by_txn: BTreeMap<String, Vec<&TraceEvent>> = BTreeMap::new();
        for e in journal.events() {
            if let Some(t) = &e.txn {
                by_txn.entry(t.clone()).or_default().push(e);
            }
        }
        let mut txns = Vec::with_capacity(by_txn.len());
        for (txn, events) in &by_txn {
            let first = events.iter().map(|e| e.at).min().unwrap_or(0);
            let last = events.iter().map(|e| e.at).max().unwrap_or(0);
            let mut outcome = "unresolved";
            let mut phases: BTreeMap<String, PhaseWindow> = BTreeMap::new();
            for e in events {
                if let EventKind::Resolve { committed } = &e.kind {
                    if outcome == "unresolved" {
                        outcome = if *committed { "committed" } else { "aborted" };
                    }
                }
                if let Some(phase) = phase_of(&e.kind) {
                    let w =
                        phases.entry(phase.to_string()).or_insert(PhaseWindow { first: e.at, last: e.at, events: 0 });
                    w.first = w.first.min(e.at);
                    w.last = w.last.max(e.at);
                    w.events += 1;
                }
            }
            let path = critical_path(events);
            let mut by_peer: BTreeMap<u32, u64> = BTreeMap::new();
            for step in &path {
                *by_peer.entry(step.peer).or_default() += step.self_time;
            }
            let peer_self = by_peer.into_iter().map(|(peer, ticks)| PeerSelfTime { peer, ticks }).collect();
            txns.push(TxnProfile {
                txn: txn.clone(),
                outcome: outcome.to_string(),
                first,
                last,
                phases,
                path,
                peer_self,
            });
        }
        ProfileReport { txns }
    }

    /// Folds every transaction's phase widths (and end-to-end totals)
    /// into histograms: `phase_<name>` per phase plus `txn_total`.
    /// Merging two reports' histograms equals histogramming the
    /// concatenated reports, so sweep aggregation is order-free.
    pub fn phase_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for phase in PHASES {
            out.insert(format!("phase_{phase}"), Histogram::default());
        }
        out.insert("txn_total".to_string(), Histogram::default());
        for t in &self.txns {
            for (phase, w) in &t.phases {
                if let Some(h) = out.get_mut(&format!("phase_{phase}")) {
                    h.observe(w.width());
                }
            }
            if let Some(h) = out.get_mut("txn_total") {
                h.observe(t.total());
            }
        }
        out
    }

    /// Stable JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile report serializes")
    }

    /// Human rendering: one block per transaction — outcome and extent,
    /// phase windows in canonical order, the critical path with
    /// self-times, and the per-peer attribution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.txns {
            let _ = writeln!(out, "{}: {} in {} ticks [{}..{}]", t.txn, t.outcome, t.total(), t.first, t.last);
            let mut line = String::from("  phases:");
            for phase in PHASES {
                if let Some(w) = t.phases.get(phase) {
                    let _ = write!(line, " {phase}[{}..{}] {}t/{}ev", w.first, w.last, w.width(), w.events);
                }
            }
            let _ = writeln!(out, "{line}");
            if !t.path.is_empty() {
                let mut line = String::from("  critical path:");
                for (i, s) in t.path.iter().enumerate() {
                    let _ = write!(
                        line,
                        "{}{}@AP{} self={}",
                        if i == 0 { " " } else { " -> " },
                        s.span,
                        s.peer,
                        s.self_time
                    );
                }
                let _ = writeln!(out, "{line}");
                let mut line = String::from("  peer self-time:");
                for p in &t.peer_self {
                    let _ = write!(line, " AP{}={}", p.peer, p.ticks);
                }
                let _ = writeln!(out, "{line}");
            }
        }
        if self.txns.is_empty() {
            out.push_str("(no transactions in journal)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analytics-test journal: a clean two-peer commit.
    fn journal() -> TraceJournal {
        let mut j = TraceJournal::default();
        let t = || Some("T1.0".to_string());
        j.record(0, 1, 0, t(), Some("I1.0".into()), None, EventKind::Submit { method: "m".into() });
        j.record(
            2,
            1,
            0,
            t(),
            Some("I1.1".into()),
            Some("I1.0".into()),
            EventKind::Invoke { to: 2, method: "m".into() },
        );
        j.record(5, 2, 0, t(), Some("I1.1".into()), None, EventKind::Serve { from: 1, method: "m".into() });
        j.record(20, 2, 0, t(), Some("I1.1".into()), None, EventKind::ResultReturn { to: 1 });
        j.record(24, 1, 0, t(), Some("I1.0".into()), None, EventKind::Resolve { committed: true });
        j
    }

    #[test]
    fn phases_partition_the_lifecycle() {
        assert_eq!(phase_of(&EventKind::Submit { method: "m".into() }), Some("invoke"));
        assert_eq!(phase_of(&EventKind::Resolve { committed: false }), Some("decide"));
        assert_eq!(phase_of(&EventKind::CompensateApply { actions: 1 }), Some("compensate"));
        assert_eq!(phase_of(&EventKind::Crash), Some("recover"));
        assert_eq!(phase_of(&EventKind::AckSend { to: 0, id: 1 }), None, "transport is phase-free");
        assert_eq!(phase_of(&EventKind::Gauge { name: "x".into(), value: 0 }), None);
    }

    #[test]
    fn profile_breaks_a_commit_into_phases() {
        let report = ProfileReport::from_journal(&journal());
        assert_eq!(report.txns.len(), 1);
        let t = &report.txns[0];
        assert_eq!(t.txn, "T1.0");
        assert_eq!(t.outcome, "committed");
        assert_eq!(t.total(), 24);
        assert_eq!(t.phases["invoke"], PhaseWindow { first: 0, last: 2, events: 2 });
        assert_eq!(t.phases["serve"], PhaseWindow { first: 5, last: 20, events: 2 });
        assert_eq!(t.phases["decide"], PhaseWindow { first: 24, last: 24, events: 1 });
        assert!(!t.phases.contains_key("compensate"));
    }

    #[test]
    fn self_times_telescope_to_the_critical_path_length() {
        let report = ProfileReport::from_journal(&journal());
        let t = &report.txns[0];
        assert_eq!(t.path.len(), 2);
        // Root I1.0 spans [0..24], child I1.1 spans [2..20]: the root's
        // self-time is the head (2-0) plus the tail (24-20) = 6; the
        // leaf keeps its whole extent (20-2) = 18.
        assert_eq!((t.path[0].span.as_str(), t.path[0].self_time), ("I1.0", 6));
        assert_eq!((t.path[1].span.as_str(), t.path[1].self_time), ("I1.1", 18));
        let total: u64 = t.path.iter().map(|s| s.self_time).sum();
        assert_eq!(total, t.path[0].deep_last - t.path[0].first, "self-times telescope");
        assert_eq!(t.peer_self, vec![PeerSelfTime { peer: 1, ticks: 6 }, PeerSelfTime { peer: 2, ticks: 18 }]);
    }

    #[test]
    fn phase_histograms_cover_all_phases_and_totals() {
        let h = ProfileReport::from_journal(&journal()).phase_histograms();
        assert_eq!(h["phase_invoke"].count(), 1);
        assert_eq!(h["phase_invoke"].sum(), 2);
        assert_eq!(h["phase_serve"].sum(), 15);
        assert_eq!(h["phase_decide"].sum(), 0, "single-event phase has zero width");
        assert_eq!(h["phase_compensate"].count(), 0);
        assert_eq!(h["txn_total"].sum(), 24);
        assert_eq!(h.len(), PHASES.len() + 1);
    }

    #[test]
    fn render_and_json_are_deterministic() {
        let report = ProfileReport::from_journal(&journal());
        let text = report.render();
        assert!(text.contains("T1.0: committed in 24 ticks [0..24]"), "{text}");
        assert!(text.contains("invoke[0..2] 2t/2ev"), "{text}");
        assert!(text.contains("I1.0@AP1 self=6 -> I1.1@AP2 self=18"), "{text}");
        assert!(text.contains("peer self-time: AP1=6 AP2=18"), "{text}");
        assert_eq!(text, report.render());
        let back: ProfileReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(ProfileReport::default().render(), "(no transactions in journal)\n");
    }
}
