//! `axml-obs` — trace analytics over a stored JSON-lines journal.
//!
//! ```text
//! axml-obs [JOURNAL] [--prom FILE]
//! ```
//!
//! Reads the journal from `JOURNAL` (or stdin when omitted or `-`),
//! prints per-transaction critical paths, the latency percentile table,
//! and every online-monitor finding found by offline replay. `--prom
//! FILE` additionally writes the Prometheus text exposition. Exits
//! nonzero when the monitor reports any finding, so CI can gate on a
//! clean protocol run.

#![forbid(unsafe_code)]

use axml_obs::{critical_paths, derive_histograms, percentile_table, render_prometheus, Monitor};
use axml_trace::TraceJournal;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: axml-obs [JOURNAL|-] [--prom FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut journal_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--prom" => match args.next() {
                Some(p) => prom_path = Some(p),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("axml-obs: critical paths, percentile table, and protocol-monitor replay");
                println!("usage: axml-obs [JOURNAL|-] [--prom FILE]");
                return ExitCode::SUCCESS;
            }
            _ if journal_path.is_none() => journal_path = Some(a),
            _ => return usage(),
        }
    }

    let text = match journal_path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("axml-obs: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("axml-obs: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let journal = match TraceJournal::from_json_lines(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("axml-obs: parsing journal: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("== journal: {} events, digest {:016x}", journal.len(), journal.digest());
    println!();
    println!("== critical paths");
    print!("{}", critical_paths(&journal));
    println!();
    println!("== latency percentiles (sim-time ticks)");
    let hists = derive_histograms(&journal);
    print!("{}", percentile_table(&hists));

    if let Some(path) = prom_path {
        if let Err(e) = std::fs::write(&path, render_prometheus(&hists)) {
            eprintln!("axml-obs: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("== prometheus exposition written to {path}");
    }

    println!();
    let findings = Monitor::replay(&journal);
    if findings.is_empty() {
        println!("== monitor: clean (0 findings)");
        ExitCode::SUCCESS
    } else {
        println!("== monitor: {} finding(s)", findings.len());
        for f in &findings {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}
