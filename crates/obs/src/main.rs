//! `axml-obs` — trace analytics over a stored JSON-lines journal.
//!
//! ```text
//! axml-obs [JOURNAL] [--prom FILE]
//! axml-obs profile [JOURNAL] [--json FILE]
//! ```
//!
//! The default mode reads the journal from `JOURNAL` (or stdin when
//! omitted or `-`), prints per-transaction critical paths, the latency
//! percentile table, and every online-monitor finding found by offline
//! replay. `--prom FILE` additionally writes the Prometheus text
//! exposition. Exits nonzero when the monitor reports any finding, so
//! CI can gate on a clean protocol run.
//!
//! `profile` instead prints the per-transaction phase breakdown
//! (invoke/serve/decide/compensate/recover windows, the critical path
//! with self-time attribution, per-peer self-times), the journal's
//! sampled gauge series summary, and the aggregated phase percentile
//! table; `--json FILE` writes the structured [`ProfileReport`].

#![forbid(unsafe_code)]

use axml_obs::{
    critical_paths, derive_histograms, percentile_table, render_prometheus, Monitor, ProfileReport, SeriesRegistry,
};
use axml_trace::TraceJournal;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: axml-obs [JOURNAL|-] [--prom FILE]");
    eprintln!("       axml-obs profile [JOURNAL|-] [--json FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut journal_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut profile_mode = false;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("profile") {
        profile_mode = true;
        args.next();
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--prom" if !profile_mode => match args.next() {
                Some(p) => prom_path = Some(p),
                None => return usage(),
            },
            "--json" if profile_mode => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("axml-obs: critical paths, percentile table, and protocol-monitor replay");
                println!("usage: axml-obs [JOURNAL|-] [--prom FILE]");
                println!("       axml-obs profile [JOURNAL|-] [--json FILE]");
                return ExitCode::SUCCESS;
            }
            _ if journal_path.is_none() => journal_path = Some(a),
            _ => return usage(),
        }
    }

    let text = match journal_path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("axml-obs: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("axml-obs: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let journal = match TraceJournal::from_json_lines(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("axml-obs: parsing journal: {e}");
            return ExitCode::FAILURE;
        }
    };

    if profile_mode {
        let report = ProfileReport::from_journal(&journal);
        let series = SeriesRegistry::from_journal(&journal);
        println!("== journal: {} events, digest {:016x}", journal.len(), journal.digest());
        println!();
        println!("== phase profile ({} transactions)", report.txns.len());
        print!("{}", report.render());
        println!();
        println!("== gauge series");
        print!("{}", series.render_summary());
        println!();
        println!("== phase percentiles (sim-time ticks)");
        print!("{}", percentile_table(&report.phase_histograms()));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("axml-obs: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!();
            println!("== profile json written to {path}");
        }
        return ExitCode::SUCCESS;
    }

    println!("== journal: {} events, digest {:016x}", journal.len(), journal.digest());
    println!();
    println!("== critical paths");
    print!("{}", critical_paths(&journal));
    println!();
    println!("== latency percentiles (sim-time ticks)");
    let hists = derive_histograms(&journal);
    print!("{}", percentile_table(&hists));

    if let Some(path) = prom_path {
        if let Err(e) = std::fs::write(&path, render_prometheus(&hists)) {
            eprintln!("axml-obs: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("== prometheus exposition written to {path}");
    }

    println!();
    let findings = Monitor::replay(&journal);
    if findings.is_empty() {
        println!("== monitor: clean (0 findings)");
        ExitCode::SUCCESS
    } else {
        println!("== monitor: {} finding(s)", findings.len());
        for f in &findings {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}
