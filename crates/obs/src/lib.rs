//! Observability for the recovery pipeline.
//!
//! Three layers on top of `axml-trace`'s event stream, all deterministic
//! so seeded replays agree byte-for-byte:
//!
//! - [`hist`] — fixed-layout log-bucketed [`Histogram`]s with
//!   replay-stable merges, percentile tables, and a Prometheus text
//!   exposition renderer.
//! - [`monitor`] — the online protocol [`Monitor`], an event sink that
//!   checks the paper's runtime invariants (reverse compensation order,
//!   terminal-state finality, at-most-once delivery processing, abort
//!   reachability) as the simulation runs and reports
//!   [`MonitorFinding`]s.
//! - [`analytics`] — offline journal analytics: latency histogram
//!   derivation and per-transaction critical paths.
//!
//! The `axml-obs` binary reads a JSON-lines journal (as written by
//! `axml-chaos trace --journal`) and prints critical paths, a percentile
//! table, and monitor findings; `--prom FILE` writes the Prometheus
//! exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod hist;
pub mod monitor;

pub use analytics::{critical_paths, derive_histograms};
pub use hist::{
    bucket_bound, percentile_table, render_prometheus, render_snapshot_prometheus, Histogram, HistogramSummary,
    FINITE_BUCKETS,
};
pub use monitor::{Monitor, MonitorFinding};
