//! Observability for the recovery pipeline.
//!
//! Several layers on top of `axml-trace`'s event stream, all
//! deterministic so seeded replays agree byte-for-byte:
//!
//! - [`hist`] — fixed-layout log-bucketed [`Histogram`]s with
//!   replay-stable merges and percentile tables.
//! - [`monitor`] — the online protocol [`Monitor`], an event sink that
//!   checks the paper's runtime invariants (reverse compensation order,
//!   terminal-state finality, at-most-once delivery processing, abort
//!   reachability) as the simulation runs and reports
//!   [`MonitorFinding`]s.
//! - [`analytics`] — offline journal analytics: latency histogram
//!   derivation and per-transaction critical paths.
//! - [`series`] — the time-series plane: fixed-window gauge series
//!   ([`SeriesRegistry`]) folded from the simulator's sampled `Gauge`
//!   events, with order-free aggregation across runs.
//! - [`profile`] — the per-transaction phase profiler
//!   ([`ProfileReport`]): invoke/serve/decide/compensate/recover
//!   windows plus critical-path self-time attribution.
//! - [`flight`] — the violation [`FlightRecorder`]: bounded per-peer
//!   rings of recent events, dumped when a chaos run goes wrong.
//! - [`exposition`] — the single Prometheus text renderer/parser all of
//!   the above share.
//!
//! The `axml-obs` binary reads a JSON-lines journal (as written by
//! `axml-chaos trace --journal`) and prints critical paths, a percentile
//! table, and monitor findings; `--prom FILE` writes the Prometheus
//! exposition; `axml-obs profile` prints the phase profiler's view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod exposition;
pub mod flight;
pub mod hist;
pub mod monitor;
pub mod profile;
pub mod series;

pub use analytics::{critical_paths, derive_histograms};
pub use exposition::{
    metric_name, parse_exposition, render_prometheus, render_series_prometheus, render_snapshot_prometheus,
};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{bucket_bound, percentile_table, Histogram, HistogramSummary, FINITE_BUCKETS};
pub use monitor::{Monitor, MonitorFinding};
pub use profile::{phase_of, PhaseWindow, ProfileReport, TxnProfile, PHASES};
pub use series::SeriesRegistry;
