//! Prometheus text exposition — the one place every renderer shares
//! naming, escaping, and ordering rules.
//!
//! Three families of data render here: latency [`Histogram`]s (as
//! `histogram` families with the fixed `le` bucket layout), counter
//! registry [`Snapshot`]s (as `counter`/`gauge` families), and the
//! time-series plane's [`SeriesRegistry`] (as `gauge` families with
//! `peer`/`t` labels). All three go through [`metric_name`], so a metric
//! spelled `wal.bytes_appended` internally is `axml_wal_bytes_appended`
//! everywhere it is exposed. [`parse_exposition`] is the matching
//! reader used by the round-trip tests (and handy for ad-hoc diffing):
//! rendering and re-parsing recovers every sample exactly.

use crate::hist::{bucket_bound, Histogram};
use crate::series::SeriesRegistry;
use axml_trace::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps an internal metric name onto its Prometheus family name:
/// `axml_` prefix, with dashes, dots, and spaces folded to underscores
/// (the only characters our dot-scoped registry names use that the
/// exposition grammar forbids).
pub fn metric_name(name: &str) -> String {
    format!("axml_{}", name.replace(['-', '.', ' '], "_"))
}

/// Renders `name → histogram` in the Prometheus text exposition format
/// (one `histogram` family per metric, `axml_` prefix, `le` labels from
/// the fixed bucket layout). Sim time has no wall-clock unit; the values
/// are logical-clock ticks.
pub fn render_prometheus(metrics: &BTreeMap<String, Histogram>) -> String {
    let mut out = String::new();
    for (name, h) in metrics {
        let metric = metric_name(name);
        let _ = writeln!(out, "# HELP {metric} {name} distribution (sim-time ticks)");
        let _ = writeln!(out, "# TYPE {metric} histogram");
        for (i, cum) in h.cumulative_counts().enumerate() {
            let _ = writeln!(out, "{metric}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{metric}_sum {}", h.sum());
        let _ = writeln!(out, "{metric}_count {}", h.count());
    }
    out
}

/// Renders a counter registry [`Snapshot`] in the Prometheus text
/// exposition format: one family per entry, `axml_` prefix, dots and
/// dashes mapped to underscores. Plain registry entries (`net.sent`,
/// `wal.bytes_appended`, …) are monotone and render as `counter`s;
/// `*_peak` names are high-water marks ([`Snapshot::merge`] takes their
/// max, not their sum), so they render as `gauge`s.
pub fn render_snapshot_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = metric_name(name);
        let kind = if name.ends_with("_peak") { "gauge" } else { "counter" };
        let _ = writeln!(out, "# HELP {metric} {name}");
        let _ = writeln!(out, "# TYPE {metric} {kind}");
        let _ = writeln!(out, "{metric} {value}");
    }
    out
}

/// Renders the time-series plane in the Prometheus text exposition
/// format: one `gauge` family per sampled metric, a sample per
/// `(peer, window boundary)` point, with the boundary carried in the
/// `t` label (sim time has no wall clock to use as a scrape timestamp).
/// Ordering is the registry's own (metric, peer, boundary) order, so
/// output is byte-stable for a given registry.
pub fn render_series_prometheus(series: &SeriesRegistry) -> String {
    let mut out = String::new();
    for (name, peers) in &series.series {
        let metric = format!("{}_series", metric_name(name));
        let _ = writeln!(out, "# HELP {metric} {name} sampled at fixed sim-time windows");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (peer, points) in peers {
            for (at, value) in points {
                let _ = writeln!(out, "{metric}{{peer=\"{peer}\",t=\"{at}\"}} {value}");
            }
        }
    }
    out
}

/// Parses a text exposition back into `sample id → value`, where the
/// sample id is the full series string including labels
/// (`axml_x_bucket{le="4"}`). Comment and blank lines are skipped.
/// Strict enough for round-trip tests over our own renderers; returns
/// `Err` on any malformed sample line.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((id, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no sample value: {line:?}", lineno + 1));
        };
        let value: u64 = value.parse().map_err(|e| format!("line {}: bad value {value:?}: {e}", lineno + 1))?;
        if out.insert(id.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate sample id {id:?}", lineno + 1));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::FINITE_BUCKETS;

    #[test]
    fn metric_names_share_one_sanitizer() {
        assert_eq!(metric_name("commit_latency"), "axml_commit_latency");
        assert_eq!(metric_name("wal.bytes_appended"), "axml_wal_bytes_appended");
        assert_eq!(metric_name("abort-drain now"), "axml_abort_drain_now");
    }

    #[test]
    fn snapshot_counters_render_as_prometheus_counters() {
        // The four WAL counters the Snapshot registry exports must come
        // out as well-formed counter families; peak names stay gauges.
        let mut s = Snapshot::default();
        s.add("wal.segments_rotated", 3);
        s.add("wal.bytes_appended", 4096);
        s.add("wal.recovery_entries", 17);
        s.add("wal.torn_tails_discarded", 1);
        s.add("peer.3.seen_peak", 9);
        assert_eq!(s.get("wal.bytes_appended"), 4096);
        let text = render_snapshot_prometheus(&s);
        for (metric, v) in [
            ("axml_wal_segments_rotated", 3),
            ("axml_wal_bytes_appended", 4096),
            ("axml_wal_recovery_entries", 17),
            ("axml_wal_torn_tails_discarded", 1),
        ] {
            assert!(text.contains(&format!("# TYPE {metric} counter")), "{text}");
            assert!(text.contains(&format!("{metric} {v}\n")), "{text}");
        }
        assert!(text.contains("# TYPE axml_peer_3_seen_peak gauge"), "{text}");
        assert!(text.contains("axml_peer_3_seen_peak 9\n"), "{text}");
    }

    #[test]
    fn histogram_exposition_round_trips_through_the_parser() {
        let mut h = Histogram::default();
        for v in [1, 2, 2, 300, 5_000_000] {
            h.observe(v);
        }
        let mut m = BTreeMap::new();
        m.insert("commit_latency".to_string(), h.clone());
        let parsed = parse_exposition(&render_prometheus(&m)).unwrap();
        // Every finite bucket, +Inf, sum, and count recover exactly.
        for (i, cum) in h.cumulative_counts().enumerate() {
            let id = format!("axml_commit_latency_bucket{{le=\"{}\"}}", bucket_bound(i));
            assert_eq!(parsed[&id], cum, "{id}");
        }
        assert_eq!(parsed["axml_commit_latency_bucket{le=\"+Inf\"}"], h.count());
        assert_eq!(parsed["axml_commit_latency_sum"], h.sum());
        assert_eq!(parsed["axml_commit_latency_count"], h.count());
        assert_eq!(parsed.len(), FINITE_BUCKETS + 3);
    }

    #[test]
    fn snapshot_and_series_expositions_round_trip_through_the_parser() {
        let mut s = Snapshot::default();
        s.add("net.sent", 40);
        s.add("peer.1.seen_peak", 6);
        let parsed = parse_exposition(&render_snapshot_prometheus(&s)).unwrap();
        assert_eq!(parsed["axml_net_sent"], 40);
        assert_eq!(parsed["axml_peer_1_seen_peak"], 6);

        let mut reg = SeriesRegistry::default();
        reg.record("outbox_depth", 0, 25, 3);
        reg.record("outbox_depth", 1, 50, 7);
        let parsed = parse_exposition(&render_series_prometheus(&reg)).unwrap();
        assert_eq!(parsed["axml_outbox_depth_series{peer=\"0\",t=\"25\"}"], 3);
        assert_eq!(parsed["axml_outbox_depth_series{peer=\"1\",t=\"50\"}"], 7);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("axml_x").is_err(), "no value");
        assert!(parse_exposition("axml_x abc").is_err(), "non-integer value");
        assert!(parse_exposition("axml_x 1\naxml_x 2").is_err(), "duplicate id");
        assert_eq!(parse_exposition("# HELP x\n\n").unwrap().len(), 0);
    }
}
