//! Trace analytics: latency histograms and per-transaction critical
//! paths derived from a stored [`TraceJournal`].
//!
//! Everything here is a pure function of the journal, so replaying the
//! same seeded scenario yields byte-identical tables and expositions.
//! Five distributions are extracted:
//!
//! - `commit_latency` — submit → commit resolve at the origin peer.
//! - `abort_drain` — width of a transaction's abort wave: first to last
//!   event among fault raises, abort propagations, compensation
//!   activity, and abort resolves.
//! - `compensation_lag` — each compensation application's distance from
//!   the start of its transaction's abort wave (how long undo work
//!   straggles behind the decision).
//! - `detect_latency` — crash/disconnect → the first detection of that
//!   peer (the failure detector's reaction time).
//! - `retransmits_per_delivery` — retransmission attempts per reliable
//!   delivery, zeros included (acknowledged-first-try deliveries count).

use crate::hist::Histogram;
use axml_trace::{EventKind, TraceEvent, TraceJournal};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether an event belongs to a transaction's abort wave.
fn in_abort_wave(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::FaultRaise { .. }
            | EventKind::AbortPropagate { .. }
            | EventKind::CompensateDerive { .. }
            | EventKind::CompensateOp { .. }
            | EventKind::CompensateApply { .. }
            | EventKind::Resolve { committed: false }
    )
}

/// Derives the standard latency histograms from a journal.
pub fn derive_histograms(journal: &TraceJournal) -> BTreeMap<String, Histogram> {
    let mut commit = Histogram::default();
    let mut drain = Histogram::default();
    let mut lag = Histogram::default();
    let mut detect = Histogram::default();
    let mut retrans = Histogram::default();

    // txn → (origin peer, submit time) from its first Submit.
    let mut submitted: BTreeMap<String, (u32, u64)> = BTreeMap::new();
    // txn → (wave start, wave end) over abort-wave events.
    let mut wave: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    // txn → compensation application times (lag needs the wave start,
    // which may move earlier as the wave is discovered — defer).
    let mut applies: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    // peer → latest crash/disconnect not yet detected.
    let mut churned_at: BTreeMap<u32, u64> = BTreeMap::new();
    // (sender, receiver, id) → retransmit attempts.
    let mut deliveries: BTreeMap<(u32, u32, u64), u64> = BTreeMap::new();

    for e in journal.events() {
        if let Some(t) = &e.txn {
            if in_abort_wave(&e.kind) {
                let w = wave.entry(t.clone()).or_insert((e.at, e.at));
                w.0 = w.0.min(e.at);
                w.1 = w.1.max(e.at);
            }
        }
        match &e.kind {
            EventKind::Submit { .. } => {
                if let Some(t) = &e.txn {
                    submitted.entry(t.clone()).or_insert((e.peer, e.at));
                }
            }
            EventKind::Resolve { committed: true } => {
                if let Some(t) = &e.txn {
                    if let Some(&(origin, at0)) = submitted.get(t) {
                        if origin == e.peer {
                            commit.observe(e.at - at0);
                        }
                    }
                }
            }
            EventKind::CompensateApply { .. } => {
                if let Some(t) = &e.txn {
                    applies.entry(t.clone()).or_default().push(e.at);
                }
            }
            EventKind::Crash | EventKind::Disconnect => {
                churned_at.insert(e.peer, e.at);
            }
            EventKind::Detect { peer, .. } => {
                if let Some(at0) = churned_at.remove(peer) {
                    detect.observe(e.at.saturating_sub(at0));
                }
            }
            EventKind::AckSend { to, id } => {
                // Receiver-side: the delivery (sender=to, receiver=peer).
                deliveries.entry((*to, e.peer, *id)).or_insert(0);
            }
            EventKind::Retransmit { to, id, .. } => {
                // Sender-side: the delivery (sender=peer, receiver=to).
                *deliveries.entry((e.peer, *to, *id)).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    for (start, end) in wave.values() {
        drain.observe(end - start);
    }
    for (t, times) in &applies {
        if let Some(&(start, _)) = wave.get(t) {
            for at in times {
                lag.observe(at.saturating_sub(start));
            }
        }
    }
    for attempts in deliveries.values() {
        retrans.observe(*attempts);
    }

    let mut out = BTreeMap::new();
    out.insert("commit_latency".to_string(), commit);
    out.insert("abort_drain".to_string(), drain);
    out.insert("compensation_lag".to_string(), lag);
    out.insert("detect_latency".to_string(), detect);
    out.insert("retransmits_per_delivery".to_string(), retrans);
    out
}

/// One span's aggregate on a transaction's invocation tree.
#[derive(Debug, Clone)]
struct SpanAgg {
    peer: u32,
    /// Time of the event `peer` was taken from — the (at, peer)-minimal
    /// event, so the choice is a pure function of the event multiset,
    /// not of journal order.
    peer_at: u64,
    first: u64,
    last: u64,
    parent: Option<String>,
}

fn span_aggregates(events: &[&TraceEvent]) -> BTreeMap<String, SpanAgg> {
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for e in events {
        let Some(s) = &e.span else { continue };
        let agg = spans.entry(s.clone()).or_insert(SpanAgg {
            peer: e.peer,
            peer_at: e.at,
            first: e.at,
            last: e.at,
            parent: None,
        });
        agg.first = agg.first.min(e.at);
        agg.last = agg.last.max(e.at);
        if (e.at, e.peer) < (agg.peer_at, agg.peer) {
            agg.peer = e.peer;
            agg.peer_at = e.at;
        }
        // Smallest named parent wins — again multiset-pure. Real
        // journals name at most one parent per span (its Invoke).
        if let Some(p) = &e.parent {
            match &mut agg.parent {
                Some(cur) => {
                    if p < cur {
                        *cur = p.clone();
                    }
                }
                slot @ None => *slot = Some(p.clone()),
            }
        }
    }
    spans
}

/// Renders each transaction's critical path: the root-to-leaf chain of
/// invocation spans that finishes last, i.e. the chain that bounds the
/// transaction's wall-clock (sim-time) duration.
pub fn critical_paths(journal: &TraceJournal) -> String {
    // Group events per transaction, preserving emission order.
    let mut by_txn: BTreeMap<String, Vec<&TraceEvent>> = BTreeMap::new();
    for e in journal.events() {
        if let Some(t) = &e.txn {
            by_txn.entry(t.clone()).or_default().push(e);
        }
    }
    let mut out = String::new();
    for (txn, events) in &by_txn {
        let spans = span_aggregates(events);
        if spans.is_empty() {
            continue;
        }
        // Children index; roots are spans whose parent is unknown or
        // outside the recorded span set.
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for (name, agg) in &spans {
            match agg.parent.as_deref().filter(|p| spans.contains_key(*p)) {
                Some(p) => children.entry(p).or_default().push(name),
                None => roots.push(name),
            }
        }
        // A span's completion is bounded by its whole subtree (an abort
        // can resolve the root while compensation still runs below it),
        // so rank by the deepest finish, not a span's own last event.
        fn deep_last(
            span: &str,
            spans: &BTreeMap<String, SpanAgg>,
            children: &BTreeMap<&str, Vec<&str>>,
            memo: &mut BTreeMap<String, u64>,
        ) -> u64 {
            if let Some(&v) = memo.get(span) {
                return v;
            }
            // Seed the memo before recursing so a malformed journal with
            // a parent cycle terminates instead of overflowing.
            memo.insert(span.to_string(), spans[span].last);
            let mut last = spans[span].last;
            if let Some(cs) = children.get(span) {
                for c in cs {
                    last = last.max(deep_last(c, spans, children, memo));
                }
            }
            memo.insert(span.to_string(), last);
            last
        }
        let mut memo = BTreeMap::new();
        // The critical root is the one whose subtree finishes last.
        roots.sort_by_key(|r| (deep_last(r, &spans, &children, &mut memo), std::cmp::Reverse(*r)));
        let Some(mut cur) = roots.last().copied() else { continue };
        let t0 = spans[cur].first;
        let t_end = deep_last(cur, &spans, &children, &mut memo);
        let _ = write!(out, "{txn}: critical path {} ticks\n  ", t_end - t0);
        loop {
            let a = &spans[cur];
            let _ = write!(out, "{cur}@AP{} [{}..{}]", a.peer, a.first, a.last);
            // Greedy descent: the child whose subtree finishes last
            // bounds the parent's completion.
            let next = children.get(cur).and_then(|cs| {
                cs.iter().copied().max_by_key(|c| (deep_last(c, &spans, &children, &mut memo), std::cmp::Reverse(*c)))
            });
            match next {
                Some(c) => {
                    let _ = write!(out, " -> ");
                    cur = c;
                }
                None => break,
            }
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn journal() -> TraceJournal {
        let mut j = TraceJournal::default();
        let t = || Some("T1.0".to_string());
        j.record(0, 1, 0, t(), Some("I1.0".into()), None, EventKind::Submit { method: "m".into() });
        j.record(
            2,
            1,
            0,
            t(),
            Some("I1.1".into()),
            Some("I1.0".into()),
            EventKind::Invoke { to: 2, method: "m".into() },
        );
        j.record(5, 2, 0, t(), Some("I1.1".into()), None, EventKind::Serve { from: 1, method: "m".into() });
        j.record(5, 2, 0, t(), None, None, EventKind::AckSend { to: 1, id: 1 });
        j.record(9, 1, 0, t(), Some("I1.1".into()), None, EventKind::Retransmit { to: 2, id: 2, attempt: 1 });
        j.record(20, 2, 0, t(), Some("I1.1".into()), None, EventKind::ResultReturn { to: 1 });
        j.record(24, 1, 0, t(), Some("I1.0".into()), None, EventKind::Resolve { committed: true });
        j
    }

    #[test]
    fn commit_latency_is_submit_to_origin_resolve() {
        let h = derive_histograms(&journal());
        assert_eq!(h["commit_latency"].count(), 1);
        assert_eq!(h["commit_latency"].sum(), 24);
        assert_eq!(h["abort_drain"].count(), 0, "no abort wave in a clean commit");
    }

    #[test]
    fn retransmits_per_delivery_includes_zeros() {
        let h = derive_histograms(&journal());
        // Delivery (1→2, id=1) acked with no retransmit: a zero sample.
        // Delivery (1→2, id=2) retransmitted once.
        assert_eq!(h["retransmits_per_delivery"].count(), 2);
        assert_eq!(h["retransmits_per_delivery"].sum(), 1);
        assert_eq!(h["retransmits_per_delivery"].min(), Some(0));
    }

    #[test]
    fn abort_wave_and_detection_metrics() {
        let mut j = TraceJournal::default();
        let t = || Some("T2.0".to_string());
        j.record(10, 3, 0, t(), None, None, EventKind::FaultRaise { to: 1 });
        j.record(14, 1, 0, t(), None, None, EventKind::AbortPropagate { to: 2 });
        j.record(18, 2, 0, t(), None, None, EventKind::CompensateApply { actions: 2 });
        j.record(22, 2, 0, t(), None, None, EventKind::Resolve { committed: false });
        j.record(30, 4, 0, None, None, None, EventKind::Crash);
        j.record(55, 1, 0, None, None, None, EventKind::Detect { peer: 4, how: "ack-timeout".into() });
        let h = derive_histograms(&j);
        assert_eq!(h["abort_drain"].count(), 1);
        assert_eq!(h["abort_drain"].sum(), 12, "wave spans t=10..22");
        assert_eq!(h["compensation_lag"].count(), 1);
        assert_eq!(h["compensation_lag"].sum(), 8, "apply at 18, wave start 10");
        assert_eq!(h["detect_latency"].sum(), 25);
        assert_eq!(h["commit_latency"].count(), 0);
    }

    proptest! {
        #[test]
        fn critical_paths_is_invariant_under_event_permutation(
            events in prop::collection::vec((0usize..6, 0u32..4, 0u64..1000), 1..24),
            swaps in prop::collection::vec((0usize..32, 0usize..32), 0..64),
        ) {
            // Tie-breaking must be a pure function of the span
            // aggregates, never of journal order: feeding the same
            // events in any permutation selects a byte-identical path.
            // Span k's parent is span (k-1)/2 (a small binary tree);
            // every event of a span carries the same parent id, so the
            // span graph itself is permutation-independent.
            let canon: Vec<(u64, u32, String, Option<String>)> = events
                .iter()
                .map(|&(k, peer, at)| {
                    let parent = (k > 0).then(|| format!("S{}", (k - 1) / 2));
                    (at, peer, format!("S{k}"), parent)
                })
                .collect();
            let mut permuted = canon.clone();
            let n = permuted.len();
            for &(a, b) in &swaps {
                permuted.swap(a % n, b % n);
            }
            let journal_of = |evs: &[(u64, u32, String, Option<String>)]| {
                let mut j = TraceJournal::default();
                for (at, peer, span, parent) in evs {
                    j.record(
                        *at,
                        *peer,
                        0,
                        Some("T1.0".to_string()),
                        Some(span.clone()),
                        parent.clone(),
                        EventKind::Serve { from: 0, method: "m".into() },
                    );
                }
                j
            };
            prop_assert_eq!(
                critical_paths(&journal_of(&canon)),
                critical_paths(&journal_of(&permuted))
            );
        }
    }

    #[test]
    fn critical_path_follows_latest_finishing_chain() {
        let text = critical_paths(&journal());
        assert!(text.contains("T1.0: critical path 24 ticks"), "{text}");
        assert!(text.contains("I1.0@AP1 [0..24] -> I1.1@AP"), "{text}");
        assert_eq!(text, critical_paths(&journal()), "rendering is deterministic");
        assert_eq!(critical_paths(&TraceJournal::default()), "(no spans recorded)\n");
    }
}
