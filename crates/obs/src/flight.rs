//! The violation flight recorder: bounded per-peer rings of recent
//! trace events, dumped when a chaos run goes wrong.
//!
//! A [`FlightRecorder`] is an [`EventSink`] the chaos harness attaches
//! to *every* run (traced or not): each stamped event lands in its
//! emitting peer's [`EventRing`], so at any moment the recorder holds
//! the last ≤ `capacity` events per peer and a count of how much older
//! history was evicted. When an oracle violation, monitor finding, or
//! conformance break surfaces, [`FlightRecorder::dump`] renders that
//! context — what each peer was doing just before the failure — and the
//! harness files it next to the shrunk reproducer and inside `corpus/`
//! entries. Recording is observation-only: the sink never touches the
//! event schedule, so a recorded run is byte-identical to a bare one.

use axml_trace::{EventRing, EventSink, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default ring capacity per peer — enough to hold a whole abort wave
/// on any scenario in the matrix while keeping dumps skimmable.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// Bounded per-peer recent-event recorder.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, EventRing>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events per peer.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { capacity, rings: BTreeMap::new() }
    }

    /// Events currently held across all peers.
    pub fn len(&self) -> usize {
        self.rings.values().map(|r| r.len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted across all peers.
    pub fn dropped(&self) -> u64 {
        self.rings.values().map(|r| r.dropped()).sum()
    }

    /// Renders the recorder: a header, then one section per peer with
    /// its kept events oldest-first. Deterministic (peer order, ring
    /// order), so a replayed failure dumps byte-identical context.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last <={} events per peer ({} peers, {} kept, {} dropped)",
            self.capacity,
            self.rings.len(),
            self.len(),
            self.dropped()
        );
        for (peer, ring) in &self.rings {
            let _ = writeln!(out, "-- AP{peer}: {} kept, {} dropped", ring.len(), ring.dropped());
            for e in ring.iter() {
                let mut line = e.render();
                if let Some(txn) = &e.txn {
                    let _ = write!(line, " txn={txn}");
                }
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

impl EventSink for FlightRecorder {
    fn on_event(&mut self, event: &TraceEvent) {
        self.rings.entry(event.peer).or_insert_with(|| EventRing::new(self.capacity)).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_trace::EventKind;

    fn event(at: u64, peer: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { seq: at, at, peer, epoch: 0, txn: Some("T1.0".into()), span: None, parent: None, kind }
    }

    #[test]
    fn recorder_keeps_the_last_n_events_per_peer() {
        let mut fr = FlightRecorder::new(2);
        for at in 0..5 {
            fr.on_event(&event(at, 0, EventKind::Crash));
        }
        fr.on_event(&event(9, 1, EventKind::Reconnect));
        assert_eq!(fr.len(), 3, "peer 0 capped at 2, peer 1 holds 1");
        assert_eq!(fr.dropped(), 3);
        let dump = fr.dump();
        assert!(dump.starts_with("flight recorder: last <=2 events per peer (2 peers, 3 kept, 3 dropped)"), "{dump}");
        assert!(dump.contains("-- AP0: 2 kept, 3 dropped"), "{dump}");
        assert!(dump.contains("[t=    3 AP0 e0] crash txn=T1.0"), "{dump}");
        assert!(dump.contains("[t=    4 AP0 e0] crash"), "{dump}");
        assert!(!dump.contains("[t=    1 AP0"), "oldest events evicted: {dump}");
        assert!(dump.contains("-- AP1: 1 kept, 0 dropped"), "{dump}");
        assert_eq!(dump, fr.dump(), "dump is deterministic");
    }

    #[test]
    fn empty_recorder_dumps_a_bare_header() {
        let fr = FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY);
        assert!(fr.is_empty());
        assert_eq!(fr.dump(), "flight recorder: last <=64 events per peer (0 peers, 0 kept, 0 dropped)\n");
    }
}
