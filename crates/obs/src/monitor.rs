//! Online protocol monitor: runtime invariants over the event stream.
//!
//! Where `axml-analyze` checks recovery rules *statically* and the chaos
//! oracle checks atomicity as a *final-state* predicate, the monitor
//! watches the protocol *as it runs* — it is an [`EventSink`] attached to
//! the simulator, so every lifecycle event flows through it in emission
//! order. Four rules, mapped to the paper:
//!
//! - **M001 — reverse compensation order (§3.1).** Within one
//!   (peer, txn), self-compensation batches must undo forward log
//!   records in strictly decreasing index order (`compensate-op` events
//!   carry the index). A re-serve after an abort (forward-recovery
//!   re-join) starts a fresh log and resets the rule.
//! - **M002 — terminal means terminal (§3.2).** After a peer resolves a
//!   transaction, no forward-progress event for that (peer, txn) may
//!   follow: nothing after a commit; after an abort only the delivery
//!   substrate and a legitimate re-join (`serve`, which re-arms the
//!   rule) are allowed.
//! - **M003 — at-most-once processing (§8 delivery layer).** A reliable
//!   delivery `(sender, id)` must be *processed* at most once per
//!   receiver epoch: a repeated `ack-send` for a known delivery must be
//!   followed by its `dedup-suppress`, unless the transaction is already
//!   terminal at the receiver (late no-op deliveries after the dedup set
//!   was pruned).
//! - **M004 — abort reachability (§3.2 step 4).** Every `abort-propagate
//!   T → Q` must eventually be matched by a terminal resolve of `T` at
//!   `Q`, unless the silence is *absorbed*: `Q` crashed or disconnected,
//!   someone detected `Q` as failed, or the sender's retransmission gave
//!   up (`ack-timeout` — the failure-detection path took over).
//!
//! Call [`Monitor::finish`] after the run to flush end-of-run rules
//! (M004, unresolved M003 obligations). Findings are deterministic: they
//! are a pure function of the event stream.

use axml_trace::{EventKind, EventSink, TraceEvent, TraceJournal};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One invariant violation observed by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorFinding {
    /// Rule id (`M001` … `M004`).
    pub rule: &'static str,
    /// Sequence number of the offending event (journal order), or of the
    /// last event for end-of-run rules.
    pub seq: u64,
    /// Sim time of the offending event.
    pub at: u64,
    /// Peer the rule fired at.
    pub peer: u32,
    /// Transaction involved, if any.
    pub txn: Option<String>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for MonitorFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [t={} AP{}", self.rule, self.at, self.peer)?;
        if let Some(t) = &self.txn {
            write!(f, " {t}")?;
        }
        write!(f, "] {}", self.detail)
    }
}

/// Per-(peer, txn) terminal state, as the monitor has observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    Committed,
    Aborted,
}

/// An unresolved M003 obligation: a repeated `ack-send` whose
/// `dedup-suppress` has not (yet) been seen.
#[derive(Debug, Clone)]
struct PendingDup {
    key: (u32, u64, u32, u64), // (receiver, receiver-epoch, sender, id)
    seq: u64,
    at: u64,
    txn: Option<String>,
}

/// The online monitor. Attach with `Sim::attach_observer` (or feed a
/// stored journal through [`Monitor::replay`]) and read
/// [`Monitor::finish`].
#[derive(Debug, Default)]
pub struct Monitor {
    findings: Vec<MonitorFinding>,
    finished: bool,
    // M001: last `undoes` index per (peer, txn).
    last_undo: BTreeMap<(u32, String), u64>,
    // M002 (also M003's "already terminal" excuse): per (peer, txn) state.
    state: BTreeMap<(u32, String), Terminal>,
    // M003: deliveries already processed, keyed by receiver epoch, plus
    // the at-most-one outstanding repeat obligation per receiver.
    processed: BTreeSet<(u32, u64, u32, u64)>,
    pending_dup: BTreeMap<u32, PendingDup>,
    // M004: propagated aborts (txn, target), resolves seen (txn → peers),
    // give-ups (txn, target), and per-peer churn/detection excuses.
    abort_targets: BTreeMap<(String, u32), (u64, u64, u32)>, // → (seq, at, sender)
    resolved: BTreeMap<String, BTreeSet<u32>>,
    gave_up: BTreeSet<(String, u32)>,
    churned: BTreeSet<u32>,
    detected: BTreeSet<u32>,
    last_seq: u64,
    last_at: u64,
}

impl Monitor {
    /// A fresh monitor with no observations.
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// Findings so far (before end-of-run rules — prefer
    /// [`Monitor::finish`] once the run is over).
    pub fn findings(&self) -> &[MonitorFinding] {
        &self.findings
    }

    /// Flushes end-of-run rules (M004 reachability, M003 obligations the
    /// stream ended on) and returns every finding. Idempotent.
    pub fn finish(&mut self) -> &[MonitorFinding] {
        if self.finished {
            return &self.findings;
        }
        self.finished = true;
        // Outstanding M003 obligations: the stream ended before the
        // suppress could appear.
        let pending: Vec<PendingDup> = std::mem::take(&mut self.pending_dup).into_values().collect();
        for p in pending {
            self.flag_unsuppressed(&p);
        }
        // M004: every propagated abort must have reached its target or
        // been absorbed by the failure-detection machinery.
        let targets = std::mem::take(&mut self.abort_targets);
        for ((txn, target), (seq, at, sender)) in targets {
            let reached = self.resolved.get(&txn).is_some_and(|peers| peers.contains(&target));
            let absorbed = self.gave_up.contains(&(txn.clone(), target))
                || self.churned.contains(&target)
                || self.detected.contains(&target);
            if !reached && !absorbed {
                self.findings.push(MonitorFinding {
                    rule: "M004",
                    seq: self.last_seq.max(seq),
                    at: self.last_at.max(at),
                    peer: target,
                    txn: Some(txn.clone()),
                    detail: format!(
                        "abort of {txn} propagated by AP{sender} (t={at}) never reached AP{target}: \
                         no terminal resolve there and no crash/disconnect/detection/give-up to absorb it"
                    ),
                });
            }
        }
        &self.findings
    }

    /// Replays a stored journal through a fresh monitor (the offline
    /// `axml-obs` path) and returns its findings.
    pub fn replay(journal: &TraceJournal) -> Vec<MonitorFinding> {
        let mut m = Monitor::new();
        for e in journal.events() {
            m.on_event(e);
        }
        m.finish();
        m.findings
    }

    fn flag_unsuppressed(&mut self, p: &PendingDup) {
        let (receiver, _epoch, sender, id) = p.key;
        // Excused when the transaction was already terminal at the
        // receiver: the dedup entry was legitimately pruned and the
        // late duplicate is absorbed by the terminal-state no-op paths.
        let terminal = p.txn.as_ref().is_some_and(|t| self.state.contains_key(&(receiver, t.clone())));
        if terminal {
            return;
        }
        self.findings.push(MonitorFinding {
            rule: "M003",
            seq: p.seq,
            at: p.at,
            peer: receiver,
            txn: p.txn.clone(),
            detail: format!(
                "reliable delivery (AP{sender}, id={id}) processed more than once at AP{receiver}: \
                 repeated ack-send with no dedup-suppress and the transaction still live"
            ),
        });
    }

    fn step(&mut self, e: &TraceEvent) {
        self.last_seq = e.seq;
        self.last_at = e.at;
        // Resolve any outstanding M003 obligation at this receiver: the
        // suppress, when it comes, is the very next event the receiver
        // emits after the repeated ack.
        if let Some(p) = self.pending_dup.remove(&e.peer) {
            let suppressed = matches!(
                &e.kind,
                EventKind::DedupSuppress { from, id } if (*from, *id) == (p.key.2, p.key.3)
            );
            if !suppressed {
                self.flag_unsuppressed(&p);
            }
        }
        let txn_key = |t: &String| (e.peer, t.clone());
        match &e.kind {
            EventKind::Serve { .. } => {
                if let Some(t) = &e.txn {
                    match self.state.get(&txn_key(t)) {
                        Some(Terminal::Committed) => self.findings.push(MonitorFinding {
                            rule: "M002",
                            seq: e.seq,
                            at: e.at,
                            peer: e.peer,
                            txn: e.txn.clone(),
                            detail: format!("serve of {t} after it committed at AP{}", e.peer),
                        }),
                        Some(Terminal::Aborted) => {
                            // Legitimate forward-recovery re-join: fresh
                            // context, fresh log — re-arm M001 and M002.
                            self.state.remove(&txn_key(t));
                            self.last_undo.remove(&txn_key(t));
                        }
                        None => {}
                    }
                }
            }
            EventKind::Submit { .. } | EventKind::Materialize { .. } | EventKind::CompensateDerive { .. } => {
                if let Some(t) = &e.txn {
                    if self.state.get(&txn_key(t)) == Some(&Terminal::Committed) {
                        self.findings.push(MonitorFinding {
                            rule: "M002",
                            seq: e.seq,
                            at: e.at,
                            peer: e.peer,
                            txn: e.txn.clone(),
                            detail: format!("{} for {t} after it committed at AP{}", e.kind.label(), e.peer),
                        });
                    }
                }
            }
            EventKind::CompensateOp { undoes, .. } => {
                if let Some(t) = &e.txn {
                    if self.state.get(&txn_key(t)) == Some(&Terminal::Committed) {
                        self.findings.push(MonitorFinding {
                            rule: "M002",
                            seq: e.seq,
                            at: e.at,
                            peer: e.peer,
                            txn: e.txn.clone(),
                            detail: format!("compensation of {t} after it committed at AP{}", e.peer),
                        });
                    }
                    match self.last_undo.get(&txn_key(t)) {
                        Some(&prev) if *undoes >= prev => self.findings.push(MonitorFinding {
                            rule: "M001",
                            seq: e.seq,
                            at: e.at,
                            peer: e.peer,
                            txn: e.txn.clone(),
                            detail: format!(
                                "compensation out of order at AP{}: batch undoing log record {undoes} \
                                 applied after record {prev} (must be strictly decreasing — §3.1)",
                                e.peer
                            ),
                        }),
                        _ => {}
                    }
                    self.last_undo.insert(txn_key(t), *undoes);
                }
            }
            EventKind::Resolve { committed } => {
                if let Some(t) = &e.txn {
                    match self.state.get(&txn_key(t)) {
                        Some(prev) => {
                            let was = if *prev == Terminal::Committed { "committed" } else { "aborted" };
                            let now = if *committed { "commit" } else { "abort" };
                            self.findings.push(MonitorFinding {
                                rule: "M002",
                                seq: e.seq,
                                at: e.at,
                                peer: e.peer,
                                txn: e.txn.clone(),
                                detail: format!(
                                    "second terminal decision for {t} at AP{}: {now} after it already {was}",
                                    e.peer
                                ),
                            });
                        }
                        None => {
                            self.state
                                .insert(txn_key(t), if *committed { Terminal::Committed } else { Terminal::Aborted });
                        }
                    }
                    self.resolved.entry(t.clone()).or_default().insert(e.peer);
                }
            }
            EventKind::AckSend { to, id } => {
                let key = (e.peer, e.epoch, *to, *id);
                if !self.processed.insert(key) {
                    // Second ack for a known delivery: either the
                    // suppress follows immediately, or this was really
                    // processed twice. Defer the verdict to the
                    // receiver's next event (or end of run).
                    self.pending_dup.insert(e.peer, PendingDup { key, seq: e.seq, at: e.at, txn: e.txn.clone() });
                }
            }
            EventKind::AbortPropagate { to } => {
                if let Some(t) = &e.txn {
                    self.abort_targets.entry((t.clone(), *to)).or_insert((e.seq, e.at, e.peer));
                }
            }
            EventKind::RetransmitGiveUp { to, .. } => {
                if let Some(t) = &e.txn {
                    self.gave_up.insert((t.clone(), *to));
                }
                // Give-up is also a detection of the silent peer.
                self.detected.insert(*to);
            }
            EventKind::Detect { peer, .. } => {
                self.detected.insert(*peer);
            }
            EventKind::Crash | EventKind::Disconnect => {
                self.churned.insert(e.peer);
                // A crash wipes volatile state: per-(peer, txn) rule
                // state from the dead epoch no longer binds the new one.
                if matches!(e.kind, EventKind::Crash) {
                    self.last_undo.retain(|(p, _), _| *p != e.peer);
                    self.state.retain(|(p, _), _| *p != e.peer);
                }
            }
            _ => {}
        }
    }
}

impl EventSink for Monitor {
    fn on_event(&mut self, event: &TraceEvent) {
        self.step(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at: u64, peer: u32, txn: Option<&str>, kind: EventKind) -> TraceEvent {
        TraceEvent { seq, at, peer, epoch: 0, txn: txn.map(str::to_string), span: None, parent: None, kind }
    }

    fn run(events: Vec<TraceEvent>) -> Vec<MonitorFinding> {
        let mut m = Monitor::new();
        for e in &events {
            m.on_event(e);
        }
        m.finish().to_vec()
    }

    #[test]
    fn clean_commit_yields_no_findings() {
        let f = run(vec![
            ev(0, 0, 1, Some("T1.0"), EventKind::Submit { method: "m".into() }),
            ev(1, 5, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            ev(2, 9, 1, Some("T1.0"), EventKind::Resolve { committed: true }),
            ev(3, 12, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m001_catches_forward_order_compensation() {
        let comp =
            |seq, undoes| ev(seq, 20, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes, actions: 1 });
        // Reverse order (2, 1, 0): clean.
        assert!(run(vec![comp(0, 2), comp(1, 1), comp(2, 0)]).is_empty());
        // Forward order (0, 1): flagged.
        let f = run(vec![comp(0, 0), comp(1, 1)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M001");
        assert!(f[0].detail.contains("out of order"));
        // Equal index repeated: also flagged (strictly decreasing).
        assert_eq!(run(vec![comp(0, 1), comp(1, 1)])[0].rule, "M001");
    }

    #[test]
    fn m001_resets_on_rejoin_serve() {
        let f = run(vec![
            ev(0, 10, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes: 0, actions: 1 }),
            ev(1, 11, 3, Some("T1.0"), EventKind::Resolve { committed: false }),
            // Forward recovery re-invokes: fresh log, indices restart.
            ev(2, 20, 3, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            ev(3, 30, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes: 1, actions: 1 }),
            ev(4, 30, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes: 0, actions: 1 }),
        ]);
        assert!(f.is_empty(), "re-join resets the order rule: {f:?}");
    }

    #[test]
    fn m002_catches_activity_after_terminal() {
        // Serve after commit.
        let f = run(vec![
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "M002");
        // Double resolve without an intervening re-join.
        let f = run(vec![
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        ]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("second terminal decision"), "{f:?}");
        // Abort → re-serve → abort again is the legitimate recovery shape.
        let f = run(vec![
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            ev(2, 12, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m003_repeat_ack_needs_suppress_or_terminal() {
        let ack = |seq, at| ev(seq, at, 2, Some("T1.0"), EventKind::AckSend { to: 1, id: 7 });
        // Ack, repeat ack, immediate suppress: the dedup layer worked.
        let f = run(vec![ack(0, 5), ack(1, 9), ev(2, 9, 2, Some("T1.0"), EventKind::DedupSuppress { from: 1, id: 7 })]);
        assert!(f.is_empty(), "{f:?}");
        // Repeat ack, next receiver event is something else: processed twice.
        let f = run(vec![
            ack(0, 5),
            ack(1, 9),
            ev(2, 9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M003");
        // Repeat ack at end of stream, no suppress: same verdict.
        let f = run(vec![ack(0, 5), ack(1, 9)]);
        assert_eq!(f.len(), 1);
        // But if the transaction already resolved at the receiver, the
        // late duplicate is a pruned-entry no-op: excused.
        let f = run(vec![ack(0, 5), ev(1, 6, 2, Some("T1.0"), EventKind::Resolve { committed: true }), ack(2, 30)]);
        assert!(f.is_empty(), "{f:?}");
        // A new receiver epoch is a fresh dedup set: no obligation.
        let mut crashed = ev(3, 40, 2, Some("T1.0"), EventKind::AckSend { to: 1, id: 7 });
        crashed.epoch = 1;
        let f = run(vec![ack(0, 5), crashed]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m004_propagated_abort_must_land_or_be_absorbed() {
        let prop = ev(0, 10, 1, Some("T1.0"), EventKind::AbortPropagate { to: 4 });
        // Unreached, unexcused: flagged at finish.
        let f = run(vec![prop.clone()]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M004");
        assert_eq!(f[0].peer, 4);
        // Reached: the target resolves.
        let f = run(vec![prop.clone(), ev(1, 30, 4, Some("T1.0"), EventKind::Resolve { committed: false })]);
        assert!(f.is_empty(), "{f:?}");
        // Absorbed: the sender's retransmission gave up.
        let f = run(vec![prop.clone(), ev(1, 90, 1, Some("T1.0"), EventKind::RetransmitGiveUp { to: 4, id: 9 })]);
        assert!(f.is_empty(), "{f:?}");
        // Absorbed: the target crashed.
        let f = run(vec![prop, ev(1, 50, 4, None, EventKind::Crash)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn replay_matches_online() {
        let mut j = TraceJournal::default();
        j.record(5, 2, 0, Some("T1.0".into()), None, None, EventKind::Resolve { committed: true });
        j.record(9, 2, 0, Some("T1.0".into()), None, None, EventKind::Serve { from: 1, method: "m".into() });
        let offline = Monitor::replay(&j);
        let online = run(j.events().to_vec());
        assert_eq!(offline, online);
        assert_eq!(offline.len(), 1);
    }
}
