//! Deterministic sim-time histograms with fixed log-spaced buckets.
//!
//! Every histogram in the workspace shares one bucket layout (powers of
//! two up to 2²⁰, then +Inf), so merging two histograms is plain
//! counter addition and a percentile query is a pure function of the
//! counts — replaying the same seeded scenario yields byte-identical
//! percentile tables and Prometheus expositions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of finite buckets (`le = 2^0 … 2^20`); the implicit +Inf
/// bucket is everything past [`bucket_bound`]`(FINITE_BUCKETS - 1)`.
pub const FINITE_BUCKETS: usize = 21;

/// Upper bound (inclusive) of finite bucket `i`: `2^i`.
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a value falls into (`FINITE_BUCKETS` = +Inf).
fn bucket_of(v: u64) -> usize {
    (0..FINITE_BUCKETS).find(|&i| v <= bucket_bound(i)).unwrap_or(FINITE_BUCKETS)
}

/// A log-bucketed histogram over `u64` sim-time samples.
///
/// Bucket boundaries are fixed for the whole workspace, so merges and
/// percentile queries are replay-stable: no floating point, no
/// data-dependent layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: Vec<u64>, // FINITE_BUCKETS + 1 entries once non-empty
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; FINITE_BUCKETS + 1];
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Absorbs another histogram (same fixed layout ⇒ plain addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank percentile (`p` in 0..=100), resolved to the upper
    /// bound of the bucket holding that rank, clamped to the observed
    /// max — integer-only, so replays agree to the byte. Returns 0 on an
    /// empty histogram. The edges are exact rather than bucket-resolved:
    /// p0 is the observed min and p100 the observed max (the old
    /// bucket-walk returned the first bucket's *bound* for p0, reporting
    /// a minimum that was never observed).
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.min(100);
        if p == 0 {
            return self.min;
        }
        if p == 100 {
            return self.max;
        }
        // Nearest rank: ceil(p/100 × count), at least 1.
        let rank = ((p * self.count).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = if i < FINITE_BUCKETS { bucket_bound(i) } else { u64::MAX };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Cumulative count of samples ≤ the bound of finite bucket `i`.
    ///
    /// One query is inherently O(i); rendering **all** buckets through
    /// this per-bucket API is how the old Prometheus path went quadratic
    /// in the bucket count. Full-table consumers should walk
    /// [`Self::cumulative_counts`] instead — one prefix-sum pass.
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts.iter().take(i + 1).sum()
    }

    /// Running cumulative counts over the finite buckets, in bucket
    /// order: item `i` equals [`Self::cumulative`]`(i)`. A single prefix
    /// sum, computed lazily — rendering every bucket of every metric is
    /// linear again. Yields `FINITE_BUCKETS` items even on an empty
    /// histogram (all zeros).
    pub fn cumulative_counts(&self) -> impl Iterator<Item = u64> + '_ {
        (0..FINITE_BUCKETS).scan(0u64, |cum, i| {
            *cum += self.counts.get(i).copied().unwrap_or(0);
            Some(*cum)
        })
    }

    /// The embeddable summary (p50/p90/p99 plus the moments).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(50),
            p90: self.percentile(90),
            p99: self.percentile(99),
        }
    }
}

/// A histogram's fixed-point summary, embedded in `BENCH_<id>.json`
/// reports. All fields are integers so reports stay `Eq`-comparable and
/// byte-stable across replays.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (nearest-rank, bucket-resolved).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Renders `name → histogram` as a fixed-width percentile table
/// (p50/p90/p99/max per metric), deterministically ordered by name.
pub fn percentile_table(metrics: &BTreeMap<String, Histogram>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "metric", "count", "sum", "p50", "p90", "p99", "max"
    );
    for (name, h) in metrics {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7}",
            name,
            h.count(),
            h.sum(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
            h.max().unwrap_or(0)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn percentiles_are_bucket_bounds_clamped_to_max() {
        let mut h = Histogram::default();
        for v in [3, 5, 7, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(100));
        // Ranks: p50 → 2nd sample → bucket le=8 (5 falls in (4,8]).
        assert_eq!(h.percentile(50), 8);
        // p99 → 4th sample → bucket le=128, clamped to observed max 100.
        assert_eq!(h.percentile(99), 100);
        assert_eq!(h.percentile(0), 3, "p0 is the observed min, not a bucket bound");
        assert_eq!(h.percentile(100), 100, "p100 is the observed max");
        assert_eq!(Histogram::default().percentile(50), 0);
    }

    #[test]
    fn percentile_edges_are_exact_on_single_bucket_histograms() {
        // Regression: p0 used to return the first occupied bucket's
        // upper bound (8 here), a value never observed. When every
        // sample shares one bucket, the whole summary must still stay
        // inside the observed [min..max] envelope.
        let mut h = Histogram::default();
        for v in [5, 6, 7] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0), 5);
        assert_eq!(h.percentile(100), 7);
        let s = h.summary();
        assert_eq!((s.min, s.max), (5, 7));
        assert!(s.p50 >= s.min && s.p50 <= 8, "interior ranks stay bucket-resolved");
        // A single-sample histogram collapses every percentile to it.
        let mut one = Histogram::default();
        one.observe(9);
        for p in [0, 1, 50, 99, 100, 777] {
            assert_eq!(one.percentile(p), 9, "p{p}");
        }
    }

    #[test]
    fn merge_is_count_addition_and_extrema() {
        let mut a = Histogram::default();
        a.observe(2);
        a.observe(9);
        let mut b = Histogram::default();
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1011);
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.min(), Some(2));
        // Merging into empty copies; merging empty is a no-op.
        let mut c = Histogram::default();
        c.merge(&a);
        assert_eq!(c, a);
        c.merge(&Histogram::default());
        assert_eq!(c, a);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = Histogram::default();
        h.observe(17);
        h.observe(40);
        let s = h.summary();
        let text = serde_json::to_string(&s).unwrap();
        let back: HistogramSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.count, 2);
        assert_eq!(back.p50, 32, "rank 1 → sample 17 → bucket le=32, under the max of 40");
    }

    #[test]
    fn prefix_sums_match_per_bucket_cumulative() {
        // The single-pass prefix sum must pin the exact values the old
        // per-bucket re-summing produced, including the empty case and a
        // histogram with an +Inf-bucket sample (which cumulative counts
        // over finite buckets must exclude).
        let empty = Histogram::default();
        assert_eq!(empty.cumulative_counts().collect::<Vec<_>>(), vec![0; FINITE_BUCKETS]);
        let mut h = Histogram::default();
        for v in [1, 2, 2, 300, 5_000_000] {
            h.observe(v);
        }
        let sums: Vec<u64> = h.cumulative_counts().collect();
        assert_eq!(sums.len(), FINITE_BUCKETS);
        for (i, &cum) in sums.iter().enumerate() {
            assert_eq!(cum, h.cumulative(i), "bucket {i}");
        }
        assert_eq!(sums[0], 1, "le=1 holds the 1");
        assert_eq!(sums[1], 3, "le=2 adds both 2s");
        assert_eq!(sums[FINITE_BUCKETS - 1], 4, "the +Inf sample stays out of the finite buckets");
        assert_eq!(h.count(), 5);
        // And the percentile table built on the same counts is unchanged
        // by construction — pin one row's numbers.
        assert_eq!((h.percentile(50), h.percentile(90), h.percentile(99)), (2, 5_000_000, 5_000_000));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut m = BTreeMap::new();
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(300);
        m.insert("commit_latency".to_string(), h);
        let t1 = percentile_table(&m);
        let t2 = percentile_table(&m);
        assert_eq!(t1, t2);
        assert!(t1.contains("commit_latency"), "{t1}");
        let p = crate::exposition::render_prometheus(&m);
        assert!(p.contains("# TYPE axml_commit_latency histogram"), "{p}");
        assert!(p.contains("axml_commit_latency_bucket{le=\"+Inf\"} 2"), "{p}");
        assert!(p.contains("axml_commit_latency_sum 303"), "{p}");
        assert_eq!(p, crate::exposition::render_prometheus(&m));
    }
}
