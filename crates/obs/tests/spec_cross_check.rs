//! Monitor ↔ spec cross-check: the online monitor's rules M001–M004 are
//! corollaries of the reference model's invariants (axml-spec). On the
//! same journal, the two checkers must agree — identical clean verdicts,
//! and when something is wrong, findings and divergences that point at
//! the same offending event under the documented rule mapping:
//!
//! | Monitor | Spec invariant |
//! |---------|----------------|
//! | M001    | I2 (rule R08)  |
//! | M002    | I3             |
//! | M003    | I5             |
//! | M004    | I4             |

#![forbid(unsafe_code)]

use axml_obs::Monitor;
use axml_spec::check_journal;
use axml_trace::{EventKind, TraceJournal};

/// The spec invariant each monitor rule corresponds to.
fn mapped(rule: &str) -> &'static str {
    match rule {
        "M001" => "I2",
        "M002" => "I3",
        "M003" => "I5",
        "M004" => "I4",
        other => panic!("unknown monitor rule {other}"),
    }
}

/// Builds a journal from (at, peer, txn, kind) tuples.
fn journal(events: &[(u64, u32, Option<&str>, EventKind)]) -> TraceJournal {
    let mut j = TraceJournal::default();
    for (at, peer, txn, kind) in events {
        j.record(*at, *peer, 0, txn.map(str::to_string), None, None, kind.clone());
    }
    j
}

/// Asserts the monitor and the spec conformance checker agree on `j`.
fn cross_check(name: &str, j: &TraceJournal) {
    let findings = Monitor::replay(j);
    let verdict = check_journal(j);
    assert_eq!(findings.is_empty(), verdict.is_clean(), "{name}: monitor={findings:?} spec={}", verdict.render_text());
    // Every monitor finding must have a spec divergence at the same
    // event, under the mapped invariant.
    for f in &findings {
        let hit =
            verdict.divergences.iter().find(|d| d.seq == f.seq && d.peer == f.peer && d.invariant == mapped(f.rule));
        assert!(hit.is_some(), "{name}: monitor {f:?} has no matching spec divergence in {:?}", verdict.divergences);
    }
    assert_eq!(findings.len(), verdict.divergences.len(), "{name}: checker cardinalities diverge");
}

#[test]
fn clean_lifecycle_agrees() {
    let j = journal(&[
        (0, 1, Some("T1.0"), EventKind::Submit { method: "m".into() }),
        (2, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
        (4, 2, Some("T1.0"), EventKind::ResultReturn { to: 1 }),
        (6, 1, Some("T1.0"), EventKind::Materialize { doc: "d1".into(), items: 1 }),
        (8, 1, Some("T1.0"), EventKind::Resolve { committed: true }),
        (9, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
    ]);
    cross_check("clean commit", &j);
}

#[test]
fn clean_abort_with_compensation_agrees() {
    let comp = |undoes| EventKind::CompensateOp { doc: "d3".into(), undoes, actions: 1 };
    let j = journal(&[
        (0, 1, Some("T1.0"), EventKind::Submit { method: "m".into() }),
        (2, 3, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
        (5, 3, Some("T1.0"), EventKind::FaultRaise { to: 1 }),
        (6, 1, Some("T1.0"), EventKind::AbortPropagate { to: 3 }),
        (7, 3, Some("T1.0"), comp(1)),
        (7, 3, Some("T1.0"), comp(0)),
        (8, 3, Some("T1.0"), EventKind::Resolve { committed: false }),
        (9, 1, Some("T1.0"), EventKind::Resolve { committed: false }),
    ]);
    cross_check("clean abort", &j);
}

#[test]
fn m001_maps_to_i2() {
    let comp = |undoes| EventKind::CompensateOp { doc: "d3".into(), undoes, actions: 1 };
    let j = journal(&[(7, 3, Some("T1.0"), comp(0)), (8, 3, Some("T1.0"), comp(1))]);
    cross_check("forward-order compensation", &j);
}

#[test]
fn m002_maps_to_i3() {
    // Serve after commit.
    let j = journal(&[
        (5, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        (9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
    ]);
    cross_check("serve after commit", &j);
    // Materialize after commit.
    let j = journal(&[
        (5, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        (9, 2, Some("T1.0"), EventKind::Materialize { doc: "d2".into(), items: 1 }),
    ]);
    cross_check("materialize after commit", &j);
    // Double resolve.
    let j = journal(&[
        (5, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
        (9, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
    ]);
    cross_check("double resolve", &j);
}

#[test]
fn m003_maps_to_i5() {
    let ack = EventKind::AckSend { to: 1, id: 7 };
    let j = journal(&[(5, 2, Some("T1.0"), ack.clone()), (9, 2, Some("T1.0"), ack)]);
    cross_check("repeated ack without suppress", &j);
}

#[test]
fn m004_maps_to_i4() {
    let j = journal(&[(10, 1, Some("T1.0"), EventKind::AbortPropagate { to: 4 })]);
    cross_check("unlanded abort", &j);
}

#[test]
fn churn_excuses_agree() {
    // Crash absorbs the abort and resets per-peer obligations for both
    // checkers.
    let comp = |undoes| EventKind::CompensateOp { doc: "d4".into(), undoes, actions: 1 };
    let j = journal(&[
        (10, 1, Some("T1.0"), EventKind::AbortPropagate { to: 4 }),
        (12, 4, Some("T1.0"), comp(0)),
        (15, 4, None, EventKind::Crash),
        (20, 4, Some("T1.0"), comp(1)),
        (20, 4, Some("T1.0"), comp(0)),
    ]);
    cross_check("crash epoch reset", &j);
}
