//! Regression guards for the checked-in reproducer corpus and for the
//! shrinker's storage-profile soundness.
//!
//! Every violation the generated sweep ever surfaced lands in
//! `corpus/` as a shrunk scripted plane. Entries marked `pass` replay
//! bugs that were fixed — they must stay clean forever. Entries marked
//! `violation` are tracked open issues — they must still reproduce, so
//! fixing the bug forces the entry (and its note) to be updated rather
//! than silently forgotten.

use axml_chaos::{load_corpus, run_with_plane, shrink_failure, CaseConfig, Profile};
use axml_p2p::{FaultPlane, StorageFaultPlane};
use std::path::Path;

#[test]
fn every_corpus_entry_replays_as_expected() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let entries = load_corpus(&dir).expect("corpus directory loads");
    assert!(!entries.is_empty(), "corpus is empty — expected checked-in reproducers in {}", dir.display());
    for (name, entry) in &entries {
        if let Err(reason) = entry.replay() {
            panic!("{name}: {reason}\nnote: {}", entry.note);
        }
    }
}

/// The shrinker must carry the failing run's storage fault plane into
/// the reproducer verbatim: a violation found under `Storage` owes its
/// schedule to torn appends and sync failures, and a shrunk plane that
/// silently dropped those knobs would replay clean and be rejected —
/// or worse, reproduce a *different* failure. Uses the deliberately
/// broken no-dedup delivery layer to guarantee failures exist.
#[test]
fn shrinker_preserves_storage_profile() {
    let storage = StorageFaultPlane { torn_append_prob: 0.04, sync_failure_prob: 0.04, partial_segment_on_crash: true };
    let mut checked = 0;
    for seed in 0..40 {
        let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
        case.dedup = false;
        let mut plane = FaultPlane::probabilistic(seed, 0.0, 0.15, 0.0, 0.0);
        plane.storage = storage.clone();
        let result = run_with_plane(&case, plane);
        if result.verdict.ok {
            continue;
        }
        let minimal = shrink_failure(&case, &result).expect("scripted replay reproduces the violation");
        assert_eq!(minimal.storage, storage, "{}: shrinker dropped the storage fault plane", case.label());
        let replay = run_with_plane(&case, minimal.clone());
        assert!(!replay.verdict.ok, "{}: shrunk reproducer no longer fails", case.label());
        // Shrinking the already-minimal reproducer must be a fixpoint.
        let again = shrink_failure(&case, &replay).expect("minimal plane still reproduces");
        assert_eq!(again, minimal, "{}: shrink is not idempotent", case.label());
        checked += 1;
        if checked >= 3 {
            return;
        }
    }
    panic!("no violations found in 40 no-dedup seeds — the oracle lost its teeth");
}
