//! Properties of the generated scenario space.
//!
//! 1. The parallel runner stays invisible on generated matrices too:
//!    `gen:<seed>` scenarios resolve through `builder_for` inside the
//!    workers, so a nondeterministic generator (or a merge reorder)
//!    would show up here as a digest mismatch between `--jobs` values.
//! 2. Lint-cleanliness is by construction for the *whole* seed space,
//!    not just the dense prefix the unit test walks: sparse random
//!    seeds drawn from all of `u64` must generate scenarios that pass
//!    every analyzer rule.

use axml_chaos::{gen_scenario_names, sweep_jobs, GenConfig, GenScenario, Profile};
use proptest::prelude::*;

#[test]
fn generated_sweep_parallel_matches_serial() {
    let scenarios = gen_scenario_names(0, 12);
    let profiles = Profile::all().to_vec();

    let serial = sweep_jobs(&scenarios, &profiles, 0..2, true, 1);
    let parallel = sweep_jobs(&scenarios, &profiles, 0..2, true, 6);

    assert_eq!(serial.digest, parallel.digest);
    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(serial.committed, parallel.committed);
    assert_eq!(serial.aborted, parallel.aborted);
    assert_eq!(serial.snapshot, parallel.snapshot);
    assert_eq!(serial.histograms, parallel.histograms);
    assert_eq!(serial.findings, parallel.findings);
    assert_eq!(serial.violations.len(), parallel.violations.len());
    for (s, p) in serial.violations.iter().zip(parallel.violations.iter()) {
        assert_eq!(s.case.label(), p.case.label());
        assert_eq!(s.reason, p.reason);
        assert_eq!(s.reproducer, p.reproducer);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_seeds_generate_lint_clean_scenarios(seed in any::<u64>()) {
        let g = GenScenario::generate(seed, &GenConfig::default());
        let report = axml_analysis::analyze_all(&g.builder());
        prop_assert!(
            report.is_clean(),
            "gen:{} not lint-clean:\n{}",
            seed,
            report.render_text()
        );
    }

    #[test]
    fn sparse_seeds_generate_byte_stable_specs(seed in any::<u64>()) {
        let a = GenScenario::generate(seed, &GenConfig::default());
        let b = GenScenario::generate(seed, &GenConfig::default());
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
