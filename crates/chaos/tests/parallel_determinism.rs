//! Property: the parallel sweep runner is invisible in the output.
//!
//! For random small fault matrices (any subset of scenarios and
//! profiles, any small seed range, dedup on or off), `--jobs 8` must
//! produce exactly the same sweep digest, merged snapshot, merged
//! histograms, monitor findings, and violation set as the serial run.
//! Workers complete in nondeterministic order; the fold in canonical
//! case order is what makes that invisible, and this test is the
//! regression tripwire for anyone reordering the merge.

use axml_chaos::{sweep_jobs, Profile, SCENARIOS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_sweep_matches_serial_for_random_matrices(
        scenario_mask in 1u64..16,
        profile_mask in 1u64..16,
        seeds in 1u64..4,
        dedup in proptest::bool::ANY,
    ) {
        let scenarios: Vec<String> = SCENARIOS
            .iter()
            .enumerate()
            .filter(|(i, _)| scenario_mask & (1 << i) != 0)
            .map(|(_, s)| s.to_string())
            .collect();
        let profiles: Vec<Profile> = Profile::all()
            .iter()
            .enumerate()
            .filter(|(i, _)| profile_mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();

        let serial = sweep_jobs(&scenarios, &profiles, 0..seeds, dedup, 1);
        let parallel = sweep_jobs(&scenarios, &profiles, 0..seeds, dedup, 8);

        prop_assert_eq!(serial.digest, parallel.digest);
        prop_assert_eq!(serial.runs, parallel.runs);
        prop_assert_eq!(serial.committed, parallel.committed);
        prop_assert_eq!(serial.aborted, parallel.aborted);
        prop_assert_eq!(&serial.snapshot, &parallel.snapshot);
        prop_assert_eq!(serial.snapshot.render(), parallel.snapshot.render());
        prop_assert_eq!(&serial.histograms, &parallel.histograms);
        prop_assert_eq!(&serial.findings, &parallel.findings);
        prop_assert_eq!(serial.violations.len(), parallel.violations.len());
        for (s, p) in serial.violations.iter().zip(parallel.violations.iter()) {
            prop_assert_eq!(s.case.label(), p.case.label());
            prop_assert_eq!(&s.reason, &p.reason);
            prop_assert_eq!(&s.reproducer, &p.reproducer);
        }
    }
}
