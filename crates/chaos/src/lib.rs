#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Chaos harness for the transactional AXML protocol.
//!
//! Sweeps seeded fault schedules ([`axml_p2p::FaultPlane`]) over the
//! paper's scenarios and checks every run against an **atomicity
//! oracle** stricter than the scenario-level all-or-nothing check:
//!
//! - the transaction must resolve by the deadline;
//! - aborted → every connected participant's documents equal the
//!   pre-transaction baseline (compensation really undid everything);
//! - committed → no connected participant may hold an aborted context
//!   at all, *unless* the run involved crash-restarts, disconnections,
//!   or failure detections — the paper's acknowledged atomicity limit
//!   under churn. Pure message-level faults (drop / duplicate /
//!   reorder / delay) are **not** an excuse: the at-least-once delivery
//!   layer must absorb them completely.
//!
//! Runs are fully deterministic: the same scenario + seeds + fault
//! profile produce the same metrics and the same [`run digest`](run_case).
//! Every probabilistic run records its injected faults as a trace of
//! [`ScriptedFault`]s; a failing run is replayed from that trace and
//! [shrunk](shrink_failure) to a minimal scripted schedule that still
//! violates the oracle — a printable, RNG-free reproducer.

use axml_core::context::TxnState;
use axml_core::scenarios::{Scenario, ScenarioBuilder, ScenarioReport};
use axml_obs::{
    derive_histograms, FlightRecorder, Histogram, Monitor, MonitorFinding, ProfileReport, SeriesRegistry,
    DEFAULT_FLIGHT_CAPACITY,
};
use axml_p2p::{CrashEvent, FaultPlane, NetMetrics, Partition, PeerId, ScriptedFault, Snapshot, StorageFaultPlane};
use axml_spec::Conformance;
use axml_store::{WalConfig, WalSink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

pub mod gen;
mod parallel;
pub use gen::{gen_scenario_names, GenAction, GenConfig, GenHandler, GenScenario};
pub use parallel::par_map;

/// Scenario names the harness knows how to build.
pub const SCENARIOS: &[&str] = &["fig1", "fig2", "fig1-abort", "deep", "fig1-crash"];

/// Gauge-sampling window width (sim-time ticks) for traced runs. Every
/// traced run samples each peer's gauges (outbox depth, in-flight
/// contexts, dedup-set size, retransmit timers, WAL bytes/segments) at
/// multiples of this interval; the resulting `Gauge` events fold into
/// the sweep's [`SeriesRegistry`]. Sampling is observation-only — it
/// never perturbs the seeded event schedule or the run digest.
pub const SAMPLE_INTERVAL: u64 = 25;

/// Builds the named scenario's tree (fault plane and config not yet
/// applied). Returns `None` for unknown names.
pub fn builder_for(name: &str) -> Option<ScenarioBuilder> {
    match name {
        // Fig. 1 happy path: the full six-peer invocation tree commits.
        "fig1" => Some(ScenarioBuilder::fig1()),
        // Fig. 2: same protocol under a super-peer topology.
        "fig2" => Some(ScenarioBuilder::fig2()),
        // Fig. 1 with S5 failing while processing: the nested recovery
        // (backward) path — compensation everywhere — under fire. With
        // no replica around, provider re-lookup would just re-invoke the
        // faulty peer, so alternative providers are off: the abort path
        // stays an abort path.
        "fig1-abort" => {
            let mut b = ScenarioBuilder::fig1().fault_at(5);
            b.config.use_alternative_providers = false;
            Some(b)
        }
        // A four-deep chain: maximal nesting depth per message.
        "deep" => Some(ScenarioBuilder::new(1, &[(1, 2), (2, 3), (3, 4)])),
        // Fig. 1 with S2 slow and faulty, so the AP3 subtree completes
        // before the abort arrives and AP3 has real compensation work to
        // do — then AP3 crash-restarts while doing it (the scenario's
        // defining crash lives in the builder's own fault plane; the
        // sweep merges it into whatever profile plane it applies). Every
        // peer runs a disk-backed WAL: the restarted peer must rebuild
        // its mid-compensation state purely from its segments.
        "fig1-crash" => {
            let mut b = ScenarioBuilder::fig1().fault_at(2);
            b.durations.insert(2, 60);
            b.config.use_alternative_providers = false;
            b.fault.crashes.push(CrashEvent { at: 70, peer: PeerId(3) });
            Some(b)
        }
        name => name.strip_prefix("gen:").and_then(|spec| GenScenario::from_name_suffix(spec).map(|g| g.builder())),
    }
}

/// A named probabilistic fault mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Message drops only.
    Drops,
    /// Message duplication only — the at-least-once hazard in isolation.
    Dups,
    /// Drops + duplication + reordering + delay spikes.
    Mixed,
    /// Everything: the mixed message faults plus a windowed partition
    /// and a crash-restart, both placed deterministically from the seed.
    Storm,
    /// Storage faults: every peer runs a disk-backed WAL whose appends
    /// draw torn writes and sync failures from the seed, plus mixed
    /// message faults and a seeded crash-restart that leaves a
    /// partial-segment artifact for recovery to discard.
    Storage,
}

impl Profile {
    /// All profiles, in sweep order.
    pub fn all() -> &'static [Profile] {
        &[Profile::Drops, Profile::Dups, Profile::Mixed, Profile::Storm, Profile::Storage]
    }

    /// Parses a profile name (`drops` / `dups` / `mixed` / `storm` / `storage`).
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "drops" => Some(Profile::Drops),
            "dups" => Some(Profile::Dups),
            "mixed" => Some(Profile::Mixed),
            "storm" => Some(Profile::Storm),
            "storage" => Some(Profile::Storage),
            _ => None,
        }
    }

    /// The profile's sweep label.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Drops => "drops",
            Profile::Dups => "dups",
            Profile::Mixed => "mixed",
            Profile::Storm => "storm",
            Profile::Storage => "storage",
        }
    }
}

/// The fault plane for one `(profile, seed)` cell, over the given
/// scenario peers. Partition membership and the crash victim are derived
/// deterministically from the seed so the whole schedule is replayable.
pub fn plane_for(profile: Profile, seed: u64, peers: &[u32]) -> FaultPlane {
    match profile {
        Profile::Drops => FaultPlane::probabilistic(seed, 0.06, 0.0, 0.0, 0.0),
        Profile::Dups => FaultPlane::probabilistic(seed, 0.0, 0.15, 0.0, 0.0),
        Profile::Mixed => FaultPlane::probabilistic(seed, 0.04, 0.06, 0.06, 0.02),
        Profile::Storm => {
            let mut p = FaultPlane::probabilistic(seed, 0.03, 0.05, 0.05, 0.02);
            let k = peers.len() as u64;
            let cut = peers[(seed % k) as usize];
            let rest: Vec<PeerId> = peers.iter().filter(|q| **q != cut).map(|q| PeerId(*q)).collect();
            let start = 20 + (seed * 7) % 60;
            p.partitions.push(Partition { start, end: start + 120, a: vec![PeerId(cut)], b: rest });
            let victim = peers[((seed / 3) % k) as usize];
            p.crashes.push(CrashEvent { at: 15 + (seed * 11) % 80, peer: PeerId(victim) });
            p
        }
        Profile::Storage => {
            // Mild message faults so the storage plane does the damage:
            // torn appends and sync failures on every peer's WAL while
            // the protocol is in flight, plus a seeded crash whose
            // restart must recover from the segments on disk (including
            // the partial-segment garbage the crash leaves behind).
            let mut p = FaultPlane::probabilistic(seed, 0.02, 0.04, 0.04, 0.01);
            p.storage =
                StorageFaultPlane { torn_append_prob: 0.04, sync_failure_prob: 0.04, partial_segment_on_crash: true };
            let k = peers.len() as u64;
            let victim = peers[((seed / 2) % k) as usize];
            p.crashes.push(CrashEvent { at: 12 + (seed * 13) % 70, peer: PeerId(victim) });
            p
        }
    }
}

/// One cell of the sweep matrix.
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// Scenario name (see [`SCENARIOS`]).
    pub scenario: String,
    /// Fault mix.
    pub profile: Profile,
    /// Seed for both the fault RNG and (offset) the latency RNG.
    pub seed: u64,
    /// Duplicate suppression in the delivery layer. `false` is the
    /// deliberately broken variant the oracle must catch under `Dups`.
    pub dedup: bool,
}

impl CaseConfig {
    /// A case with the delivery layer fully enabled.
    pub fn new(scenario: &str, profile: Profile, seed: u64) -> CaseConfig {
        CaseConfig { scenario: scenario.to_string(), profile, seed, dedup: true }
    }

    /// Compact label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/seed={}{}",
            self.scenario,
            self.profile.name(),
            self.seed,
            if self.dedup { "" } else { "/no-dedup" }
        )
    }
}

/// The oracle's verdict on one run.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// True if atomicity held.
    pub ok: bool,
    /// Why not, when it did not.
    pub reason: String,
}

impl Verdict {
    fn ok() -> Verdict {
        Verdict { ok: true, reason: String::new() }
    }

    fn violation(reason: impl Into<String>) -> Verdict {
        Verdict { ok: false, reason: reason.into() }
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The origin-side decision (`None` = unresolved by the deadline).
    pub committed: Option<bool>,
    /// The oracle's verdict.
    pub verdict: Verdict,
    /// Deterministic digest of the run: outcome, metrics, final document
    /// state, and the injected-fault trace. Equal digests ⇔ equal runs.
    pub digest: u64,
    /// Digest of the final document state alone ([`doc_state_digest`]) —
    /// what a crash-recovered run is diffed against its uncrashed
    /// reference on.
    pub doc_digest: u64,
    /// Every per-message fault the plane injected, as a replayable script.
    pub trace: Vec<ScriptedFault>,
    /// The plane the run used.
    pub plane: FaultPlane,
    /// Network counters.
    pub metrics: NetMetrics,
    /// Everything the online protocol monitor flagged. Always collected
    /// (the monitor rides every run as a sim observer); when the
    /// atomicity oracle passes but the monitor does not, the verdict is
    /// downgraded to a violation.
    pub findings: Vec<MonitorFinding>,
    /// The unified `net.*` + `peer.*` counter registry of the finished
    /// run. Counter-additive ([`Snapshot::merge`]), which is what lets a
    /// parallel sweep recombine per-case snapshots into the same merged
    /// registry a serial sweep produces.
    pub snapshot: Snapshot,
    /// Trace conformance against the executable reference model
    /// (`axml-spec`): the journal of a traced run replayed against the
    /// model's permitted transitions. `None` for untraced runs (no
    /// journal to check); divergences downgrade a clean verdict exactly
    /// like monitor findings do.
    pub conformance: Option<axml_spec::Conformance>,
    /// The flight recorder's rendered dump — the last ≤64 trace events
    /// per peer at the moment the run ended. Present exactly when the
    /// verdict is a violation (oracle, monitor, or conformance), so
    /// every failure ships with its immediate event context. The
    /// recorder rides every run, traced or not, as a sim observer;
    /// recording never perturbs the seeded schedule or the digest.
    pub flight: Option<String>,
}

/// The atomicity oracle (see the crate docs for the exact rule).
pub fn check_atomicity(s: &Scenario, report: &ScenarioReport) -> Verdict {
    let Some(outcome) = &report.outcome else {
        return Verdict::violation("transaction unresolved at the deadline");
    };
    if !s.atomicity_holds() {
        return Verdict::violation(format!(
            "{} but divergent documents remain: {:?}",
            if outcome.committed { "committed" } else { "aborted" },
            s.divergent_docs()
        ));
    }
    if outcome.committed {
        // Message-level faults alone must be fully absorbed by the
        // delivery layer: an aborted participant inside a committed
        // transaction is only excusable when the run saw crash-restarts,
        // disconnections, or failure detections — or when *forward
        // recovery* ran (handler retries, substitutions, alternative
        // providers): §3.2's nested recovery deliberately aborts the
        // faulty subtree, compensates it, and lets the handler's
        // substitute (or a replica re-invocation) carry the transaction
        // to commit, so the subtree's aborted contexts are the expected
        // residue of a *correct* run. Those runs are still gated by the
        // online monitor and the spec conformance check.
        let excused = s.participants.iter().any(|&p| {
            if !s.sim.is_connected(p) {
                return true;
            }
            let st = &s.sim.actor(p).stats;
            st.crash_recoveries > 0
                || !st.detections.is_empty()
                || st.retries > 0
                || st.substitutions > 0
                || st.alternatives_used > 0
        });
        if !excused {
            for &p in &s.participants {
                if let Some(tc) = s.sim.actor(p).context(outcome.txn) {
                    if tc.state == TxnState::Aborted {
                        return Verdict::violation(format!(
                            "committed, but AP{} holds an aborted context with no crash or churn to excuse it",
                            p.0
                        ));
                    }
                }
            }
        }
    }
    Verdict::ok()
}

fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest over the participants' final document state alone — the part
/// of a run that crash recovery must reproduce exactly. Two aborted runs
/// of the same topology agree on this digest iff compensation restored
/// every document to the same bytes, whatever faults each run saw.
pub fn doc_state_digest(s: &Scenario) -> u64 {
    let mut text = String::new();
    for &p in &s.participants {
        let actor = s.sim.actor(p);
        for name in actor.repo.names() {
            text.push_str(&format!("doc {p} {name} {}\n", actor.repo.get(name).expect("listed").to_xml()));
        }
    }
    fnv64(&text)
}

/// Deterministic digest of a finished run.
pub fn run_digest(s: &Scenario, report: &ScenarioReport) -> u64 {
    let mut text = String::new();
    text.push_str(&format!(
        "outcome={:?} finished={} sent={} kinds={:?}\n",
        report.outcome.as_ref().map(|o| o.committed),
        report.finished_at,
        report.metrics.sent,
        report.metrics.by_kind,
    ));
    for &p in &s.participants {
        let actor = s.sim.actor(p);
        for name in actor.repo.names() {
            text.push_str(&format!("doc {p} {name} {}\n", actor.repo.get(name).expect("listed").to_xml()));
        }
    }
    text.push_str(&format!("trace={:?}\n", s.sim.fault_trace()));
    fnv64(&text)
}

/// What a traced chaos run leaves behind alongside its [`CaseResult`]:
/// the lifecycle journal (JSON lines, byte-stable across replays), its
/// causal-tree rendering, and the unified net + peer counter snapshot.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// The journal as JSON lines ([`axml_p2p::TraceJournal::to_json_lines`]).
    pub journal: String,
    /// Human-readable causal tree of the run.
    pub tree: String,
    /// Rendered counter registry (`net.*` + `peer.*`).
    pub snapshot: String,
    /// Latency histograms derived from the journal
    /// ([`axml_obs::derive_histograms`]) — fixed bucket layout, so
    /// per-case histograms merge into sweep-level distributions by plain
    /// counter addition, independent of merge order.
    pub histograms: BTreeMap<String, Histogram>,
    /// The sampled gauge series folded from the journal's `Gauge`
    /// events ([`SeriesRegistry::from_journal`]). Pointwise-additive,
    /// so per-case registries aggregate order-free across a sweep.
    pub series: SeriesRegistry,
    /// Phase-width histograms from the per-transaction profiler
    /// (`phase_<name>` plus `txn_total`; see
    /// [`ProfileReport::phase_histograms`]) — same fixed bucket layout
    /// as the latency histograms, merged the same way.
    pub phase_histograms: BTreeMap<String, Histogram>,
}

/// Scratch WAL directories for one run's disk-backed sinks, removed on
/// drop so sweeps leave nothing behind in the temp dir. The paths are
/// process-unique (pid + counter) and never enter digests, snapshots, or
/// traces, so runs stay byte-identical regardless of where they land.
struct WalDirs {
    base: PathBuf,
}

impl Drop for WalDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

static WAL_RUN: AtomicU64 = AtomicU64::new(0);

/// Gives every participant a disk-backed [`WalSink`] (one directory per
/// peer) drawing storage faults from `storage` with a per-peer seed
/// derived only from `(seed, peer)` — never from thread or path — so a
/// parallel sweep injects the exact same storage faults as a serial one.
fn attach_wal_sinks(s: &mut Scenario, storage: &StorageFaultPlane, seed: u64) -> WalDirs {
    let base = std::env::temp_dir().join(format!(
        "axml-chaos-wal-{}-{}",
        std::process::id(),
        WAL_RUN.fetch_add(1, Ordering::Relaxed)
    ));
    for &p in &s.participants {
        let config = WalConfig::new(base.join(format!("peer-{}", p.0)));
        let peer_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(u64::from(p.0));
        let sink = WalSink::with_faults(config, storage.clone(), peer_seed).expect("scratch WAL directory is writable");
        s.sim.actor_mut(p).set_durability_sink(Box::new(sink));
    }
    WalDirs { base }
}

fn run_inner(case: &CaseConfig, plane: FaultPlane, traced: bool) -> (CaseResult, Option<TraceDump>) {
    let mut b = builder_for(&case.scenario).expect("known scenario");
    // The scenario's own peer configuration is the template (generated
    // scenarios carry their knob choices there; the hand-written ones use
    // the default plus per-scenario overrides set in `builder_for`); the
    // sweep only decides duplicate suppression.
    let mut cfg = b.config.clone();
    cfg.dedup = case.dedup;
    // The effective plane is the given one plus whatever scheduled faults
    // the scenario itself defines (crashes, partitions, scripted events —
    // e.g. fig1-crash's defining mid-compensation crash, or a generated
    // scenario's crash schedule); `CaseResult::plane` keeps the original
    // so trace replays and the shrinker stay faithful (re-running through
    // here re-adds the scenario's own faults).
    let mut effective = plane.clone();
    effective.crashes.extend(b.fault.crashes.iter().copied());
    effective.partitions.extend(b.fault.partitions.iter().cloned());
    effective.script.extend(b.fault.script.iter().cloned());
    // Whether the scenario itself demands disk-backed durability (its own
    // crash schedule must recover from real segments).
    let scenario_wants_wal = !b.fault.crashes.is_empty();
    // Decouple latency jitter from the fault seed but vary both per case.
    b.seed = 1000 + case.seed;
    if traced {
        // Traced runs also sample the time-series plane: per-peer
        // gauges at fixed window boundaries, folded into the journal as
        // `Gauge` events.
        b = b.traced().sampled(SAMPLE_INTERVAL);
    }
    let mut s = b.config(cfg).fault_plane(effective.clone()).build();
    // Disk-backed durability whenever storage faults are in play or the
    // scenario is about crash-restart-from-disk; everything else keeps
    // the in-memory sink (perfectly durable storage, pre-WAL behavior).
    let _wal_dirs = (!effective.storage.is_inert() || scenario_wants_wal)
        .then(|| attach_wal_sinks(&mut s, &effective.storage, case.seed));
    // The online protocol monitor observes every run (traced or not);
    // observation never perturbs the seeded schedule, so digests are
    // unaffected.
    let monitor = Rc::new(RefCell::new(Monitor::new()));
    s.sim.attach_observer(monitor.clone());
    // The flight recorder keeps each peer's last events so a violation
    // ships with its immediate context even on untraced runs.
    let recorder = Rc::new(RefCell::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)));
    s.sim.attach_observer(recorder.clone());
    let report = s.run();
    let findings = monitor.borrow_mut().finish().to_vec();
    // Traced runs also replay their journal against the executable
    // reference model (spec rules R01–R10, invariants I2–I5).
    let conformance = s.trace().map(axml_spec::check_journal);
    let mut verdict = check_atomicity(&s, &report);
    if verdict.ok {
        if let Some(f) = findings.first() {
            verdict = Verdict::violation(format!("online monitor: {f}"));
        }
    }
    if verdict.ok {
        if let Some(d) = conformance.as_ref().and_then(Conformance::first) {
            verdict = Verdict::violation(format!("spec conformance: {d}"));
        }
    }
    let digest = run_digest(&s, &report);
    let snapshot = s.snapshot();
    let dump = s.trace().map(|j| TraceDump {
        journal: j.to_json_lines(),
        tree: j.render_tree(),
        snapshot: snapshot.render(),
        histograms: derive_histograms(j),
        series: SeriesRegistry::from_journal(j),
        phase_histograms: ProfileReport::from_journal(j).phase_histograms(),
    });
    let flight = (!verdict.ok).then(|| recorder.borrow().dump());
    let result = CaseResult {
        committed: report.outcome.as_ref().map(|o| o.committed),
        verdict,
        digest,
        doc_digest: doc_state_digest(&s),
        trace: s.sim.fault_trace().to_vec(),
        plane,
        metrics: report.metrics.clone(),
        findings,
        snapshot,
        conformance,
        flight,
    };
    (result, dump)
}

/// Runs one case with an explicit plane (the sweep computes the plane
/// from the profile; the shrinker passes scripted candidates).
pub fn run_with_plane(case: &CaseConfig, plane: FaultPlane) -> CaseResult {
    run_inner(case, plane, false).0
}

/// Like [`run_with_plane`] but with the lifecycle trace collected.
/// Tracing is observation only: the traced run's digest equals the
/// untraced one, and replaying the same case yields a byte-identical
/// journal.
pub fn run_with_plane_traced(case: &CaseConfig, plane: FaultPlane) -> (CaseResult, TraceDump) {
    let (result, dump) = run_inner(case, plane, true);
    (result, dump.expect("traced run collects a journal"))
}

/// Runs one sweep cell (plane derived from the profile).
pub fn run_case(case: &CaseConfig) -> CaseResult {
    let b = builder_for(&case.scenario).expect("known scenario");
    let plane = plane_for(case.profile, case.seed, &b.peers());
    run_with_plane(case, plane)
}

// ----------------------------------------------------------------------
// Shrinking.
// ----------------------------------------------------------------------

/// One unit of a failing fault schedule, as the shrinker sees it.
#[derive(Debug, Clone)]
pub enum ChaosEvent {
    /// A scripted per-message fault.
    Msg(ScriptedFault),
    /// A partition window.
    Cut(Partition),
    /// A crash-restart.
    Crash(CrashEvent),
}

/// Flattens a run's schedule (its injected trace plus the plane's
/// partitions and crashes) into shrinkable events.
pub fn events_of(plane: &FaultPlane, trace: &[ScriptedFault]) -> Vec<ChaosEvent> {
    let mut out: Vec<ChaosEvent> = trace.iter().cloned().map(ChaosEvent::Msg).collect();
    out.extend(plane.partitions.iter().cloned().map(ChaosEvent::Cut));
    out.extend(plane.crashes.iter().cloned().map(ChaosEvent::Crash));
    out
}

/// Rebuilds a purely scripted (RNG-free) plane from a set of events.
pub fn plane_of(events: &[ChaosEvent]) -> FaultPlane {
    let mut plane = FaultPlane::scripted(
        events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::Msg(f) => Some(f.clone()),
                _ => None,
            })
            .collect(),
    );
    for e in events {
        match e {
            ChaosEvent::Cut(p) => plane.partitions.push(p.clone()),
            ChaosEvent::Crash(c) => plane.crashes.push(*c),
            ChaosEvent::Msg(_) => {}
        }
    }
    plane
}

/// Greedy delta-debugging: removes chunks (halving the chunk size down
/// to single events) while the scripted schedule still violates the
/// oracle. Returns the minimal event set found.
///
/// `storage` is the failing run's storage fault plane, applied verbatim
/// to every candidate: storage faults are probabilistic per-append draws,
/// not per-message events, so they cannot be shrunk away item by item —
/// but dropping them (as a bare [`plane_of`] would) changes the run's
/// semantics and makes candidate verdicts meaningless. Every candidate
/// re-run gets its own fresh scratch WAL directories and per-peer fault
/// RNGs seeded only from `(case.seed, peer)` (see `attach_wal_sinks`),
/// so no disk or RNG state bleeds between ddmin iterations.
pub fn shrink(case: &CaseConfig, events: Vec<ChaosEvent>, storage: &StorageFaultPlane) -> Vec<ChaosEvent> {
    let fails = |evs: &[ChaosEvent]| {
        let mut plane = plane_of(evs);
        plane.storage = storage.clone();
        !run_with_plane(case, plane).verdict.ok
    };
    let mut cur = events;
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let hi = (i + chunk).min(cur.len());
            let mut cand: Vec<ChaosEvent> = cur[..i].to_vec();
            cand.extend_from_slice(&cur[hi..]);
            if fails(&cand) {
                cur = cand;
                shrunk = true;
                // Same index now points at the next chunk.
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            if !shrunk {
                break;
            }
        } else if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

/// Shrinks a failing run to a minimal scripted reproducer: replays the
/// run's trace (plus partitions and crashes) as a script, verifies the
/// violation reproduces RNG-free, then delta-debugs the schedule down.
/// The failing run's storage fault plane rides along unchanged — message
/// faults shrink, the storage knobs are part of the reproducer (its
/// per-peer WAL fault draws are already deterministic in `(seed, peer)`).
/// Returns `None` if the scripted replay unexpectedly passes.
pub fn shrink_failure(case: &CaseConfig, result: &CaseResult) -> Option<FaultPlane> {
    let storage = result.plane.storage.clone();
    let full = events_of(&result.plane, &result.trace);
    let mut scripted = plane_of(&full);
    scripted.storage = storage.clone();
    if run_with_plane(case, scripted).verdict.ok {
        return None;
    }
    let mut minimal = plane_of(&shrink(case, full, &storage));
    minimal.storage = storage;
    Some(minimal)
}

// ----------------------------------------------------------------------
// Corpus: checked-in minimized reproducers.
// ----------------------------------------------------------------------

/// One checked-in reproducer: a sweep cell plus the shrunk scripted
/// plane that once violated the oracle. Violations surfaced during
/// development land here (via `axml-chaos gen-sweep --corpus`) and a
/// regression test replays every entry on each `cargo test`:
///
/// - `expect = "pass"`: the underlying bug was fixed — the replay must
///   stay clean forever (the regression guard);
/// - `expect = "violation"`: a tracked open issue — the replay must
///   still reproduce, so the entry is flipped to `pass` (not silently
///   forgotten) the day the bug is fixed. The `note` carries the
///   tracking context.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CorpusEntry {
    /// What this reproducer documents (and, for open issues, the
    /// tracking note explaining why it is not yet fixed).
    pub note: String,
    /// `"pass"` (fixed, must stay clean) or `"violation"` (open, must
    /// still reproduce).
    pub expect: String,
    /// Scenario name (hand-written or `gen:<seed>`).
    pub scenario: String,
    /// Profile label the violation was found under.
    pub profile: String,
    /// The cell's seed.
    pub seed: u64,
    /// The cell's duplicate-suppression setting.
    pub dedup: bool,
    /// The shrunk scripted plane (probabilities zero; storage knobs
    /// preserved verbatim from the failing run).
    pub plane: FaultPlane,
    /// Flight-recorder dump captured when the violation was surfaced —
    /// the last events per peer of the shrunk failing run. Optional
    /// (and absent keys read as `None`), so entries checked in before
    /// the recorder existed still parse.
    pub flight: Option<String>,
}

impl CorpusEntry {
    /// Replays the entry and checks it against its expectation.
    /// Returns `Err(reason)` when the expectation no longer holds.
    pub fn replay(&self) -> Result<(), String> {
        self.replay_with_flight().0
    }

    /// Like [`Self::replay`], but also hands back the replay's
    /// flight-recorder dump when the run violated — a fresh last-events
    /// context for diagnosis, independent of the (possibly stale)
    /// recorded [`Self::flight`].
    pub fn replay_with_flight(&self) -> (Result<(), String>, Option<String>) {
        let profile = match Profile::parse(&self.profile) {
            Some(p) => p,
            None => return (Err(format!("unknown profile `{}`", self.profile)), None),
        };
        if builder_for(&self.scenario).is_none() {
            return (Err(format!("unknown scenario `{}`", self.scenario)), None);
        }
        let mut case = CaseConfig::new(&self.scenario, profile, self.seed);
        case.dedup = self.dedup;
        let result = run_with_plane(&case, self.plane.clone());
        let flight = result.flight.clone();
        (self.check_expectation(&result), flight)
    }

    fn check_expectation(&self, result: &CaseResult) -> Result<(), String> {
        match (self.expect.as_str(), result.verdict.ok) {
            ("pass", true) | ("violation", false) => Ok(()),
            ("pass", false) => Err(format!("regressed — the fixed violation is back: {}", result.verdict.reason)),
            ("violation", true) => {
                Err("the tracked violation no longer reproduces — flip this entry's expect to \"pass\"".to_string())
            }
            (other, _) => Err(format!("unknown expectation `{other}` (expected \"pass\" or \"violation\")")),
        }
    }
}

/// Loads every `*.json` corpus entry under `dir`, sorted by file name
/// (deterministic replay order). A missing directory is an empty corpus.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<(String, CorpusEntry)>, String> {
    let mut entries = Vec::new();
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(_) => return Ok(entries),
    };
    let mut paths: Vec<PathBuf> =
        read.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.extension().is_some_and(|x| x == "json")).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{name}: {e}"))?;
        let entry: CorpusEntry = serde_json::from_str(&text).map_err(|e| format!("{name}: {e:?}"))?;
        entries.push((name, entry));
    }
    Ok(entries)
}

// ----------------------------------------------------------------------
// Sweeping.
// ----------------------------------------------------------------------

/// One oracle violation, packaged for diagnosis: the failing cell, the
/// oracle's reason, the shrunk scripted reproducer (when the trace
/// replay reproduced), and the lifecycle trace of that reproducer run.
#[derive(Debug)]
pub struct Violation {
    /// The failing sweep cell.
    pub case: CaseConfig,
    /// Why the oracle rejected the run.
    pub reason: String,
    /// Minimal scripted [`FaultPlane`] as JSON, replayable via
    /// `axml-chaos trace <scenario> --script <file>`.
    pub reproducer: Option<String>,
    /// Lifecycle trace of the shrunk reproducer's run.
    pub trace: Option<TraceDump>,
    /// Flight-recorder dump of the shrunk reproducer's run (falls back
    /// to the original failing run's dump when shrinking failed), so
    /// the violation always carries its last-events context.
    pub flight: Option<String>,
}

/// A sweep's aggregate outcome. Every aggregate is merged in canonical
/// case order (scenario-major, then profile, then seed — the order the
/// serial nested loops visit), so a parallel sweep is byte-identical to
/// a serial one: same [`Self::digest`], same rendered snapshot, same
/// Prometheus exposition of [`Self::histograms`].
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Total runs executed.
    pub runs: usize,
    /// Runs that committed.
    pub committed: usize,
    /// Runs that aborted (atomically).
    pub aborted: usize,
    /// Oracle violations with shrunk, traced reproducers.
    pub violations: Vec<Violation>,
    /// FNV-1a digest over every case's label, per-run digest, and
    /// verdict, folded in canonical case order. Equal sweep digests ⇔
    /// every single run was equal.
    pub digest: u64,
    /// All per-case counter snapshots merged ([`Snapshot::merge`]:
    /// counters sum, `*_peak` names take the max).
    pub snapshot: Snapshot,
    /// All per-case latency histograms merged (fixed bucket layout ⇒
    /// plain counter addition).
    pub histograms: BTreeMap<String, Histogram>,
    /// Every monitor finding across the sweep as `(case label, finding)`,
    /// in canonical case order.
    pub findings: Vec<(String, MonitorFinding)>,
    /// All per-case gauge series aggregated pointwise
    /// ([`SeriesRegistry::absorb`] — commutative, so worker count never
    /// shows in the aggregate).
    pub series: SeriesRegistry,
    /// All per-case phase histograms merged (`phase_<name>` +
    /// `txn_total`, fixed bucket layout).
    pub phase_histograms: BTreeMap<String, Histogram>,
}

/// What one worker hands back for one sweep cell: the traced case run
/// plus its already-shrunk violation, if any. Plain `Send` data — the
/// `Sim`, scenario, and `Rc`-based monitor never leave the worker.
struct CaseRun {
    result: CaseResult,
    histograms: BTreeMap<String, Histogram>,
    series: SeriesRegistry,
    phase_histograms: BTreeMap<String, Histogram>,
    violation: Option<Violation>,
}

/// Runs one sweep cell start to finish: traced run, oracle, and (on a
/// violation) trace-replay shrinking plus the traced reproducer replay.
/// Fully deterministic per case, so it can execute on any worker.
fn run_cell(case: &CaseConfig) -> CaseRun {
    let b = builder_for(&case.scenario).expect("known scenario");
    let plane = plane_for(case.profile, case.seed, &b.peers());
    let (result, dump) = run_with_plane_traced(case, plane);
    let violation = (!result.verdict.ok).then(|| {
        // Replay the shrunk schedule traced: the violation ships with
        // the exact lifecycle story of a minimal failing run — and that
        // run's flight-recorder dump — not just the schedule.
        let (reproducer, trace, flight) = match shrink_failure(case, &result) {
            Some(plane) => {
                let (repro_result, dump) = run_with_plane_traced(case, plane.clone());
                let json = serde_json::to_string(&plane).unwrap_or_else(|_| "<unserializable>".into());
                (Some(json), Some(dump), repro_result.flight)
            }
            None => (None, None, result.flight.clone()),
        };
        Violation { case: case.clone(), reason: result.verdict.reason.clone(), reproducer, trace, flight }
    });
    CaseRun {
        result,
        histograms: dump.histograms,
        series: dump.series,
        phase_histograms: dump.phase_histograms,
        violation,
    }
}

/// The canonical case list of a sweep matrix: scenario-major, then
/// profile, then seed — exactly the order the serial loops visit. Both
/// the serial and the parallel sweep merge results in this order.
pub fn case_matrix(
    scenarios: &[String],
    profiles: &[Profile],
    seeds: std::ops::Range<u64>,
    dedup: bool,
) -> Vec<CaseConfig> {
    let mut cases = Vec::new();
    for scenario in scenarios {
        for &profile in profiles {
            for seed in seeds.clone() {
                let mut case = CaseConfig::new(scenario, profile, seed);
                case.dedup = dedup;
                cases.push(case);
            }
        }
    }
    cases
}

/// Runs the scenario × profile × seed matrix through the oracle on
/// `jobs` worker threads, shrinking every violation where it is found.
/// Cases are claimed work-stealing style but merged in canonical case
/// order, so the outcome — report counts, digest, merged snapshot,
/// merged histograms, findings — is byte-identical for every `jobs`
/// value (see [`par_map`]).
pub fn sweep_jobs(
    scenarios: &[String],
    profiles: &[Profile],
    seeds: std::ops::Range<u64>,
    dedup: bool,
    jobs: usize,
) -> SweepOutcome {
    let cases = case_matrix(scenarios, profiles, seeds, dedup);
    let runs = par_map(&cases, jobs, |_, case| run_cell(case));
    let mut out = SweepOutcome::default();
    let mut digest_text = String::new();
    for (case, run) in cases.iter().zip(runs) {
        out.runs += 1;
        match run.result.committed {
            Some(true) => out.committed += 1,
            Some(false) => out.aborted += 1,
            None => {}
        }
        digest_text.push_str(&format!("{} {:016x} ok={}\n", case.label(), run.result.digest, run.result.verdict.ok));
        out.snapshot.merge(&run.result.snapshot);
        for (name, h) in &run.histograms {
            out.histograms.entry(name.clone()).or_default().merge(h);
        }
        out.series.absorb(&run.series);
        for (name, h) in &run.phase_histograms {
            out.phase_histograms.entry(name.clone()).or_default().merge(h);
        }
        out.findings.extend(run.result.findings.iter().cloned().map(|f| (case.label(), f)));
        if let Some(v) = run.violation {
            out.violations.push(v);
        }
    }
    out.digest = fnv64(&digest_text);
    out
}

/// Runs the scenario × profile × seed matrix through the oracle,
/// shrinking every violation. Serial: equivalent to [`sweep_jobs`] with
/// `jobs = 1`.
pub fn sweep(scenarios: &[String], profiles: &[Profile], seeds: std::ops::Range<u64>, dedup: bool) -> SweepOutcome {
    sweep_jobs(scenarios, profiles, seeds, dedup, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::peer::PeerConfig;

    #[test]
    fn identical_seed_and_config_produce_identical_runs() {
        for profile in [Profile::Mixed, Profile::Storm] {
            let case = CaseConfig::new("fig1", profile, 3);
            let a = run_case(&case);
            let b = run_case(&case);
            assert_eq!(a.digest, b.digest, "{}", case.label());
            assert_eq!(a.metrics.summary(), b.metrics.summary());
            assert_eq!(a.trace, b.trace);
        }
    }

    #[test]
    fn scripted_trace_replay_reproduces_the_run() {
        // Replaying a probabilistic run's recorded trace as a script —
        // probabilities zeroed, no RNG — must land on the same digest.
        let case = CaseConfig::new("fig2", Profile::Storm, 5);
        let live = run_case(&case);
        assert!(!live.trace.is_empty(), "storm seed injected nothing");
        let scripted = plane_of(&events_of(&live.plane, &live.trace));
        let replay = run_with_plane(&case, scripted);
        assert_eq!(replay.digest, live.digest);
        assert_eq!(replay.verdict.ok, live.verdict.ok);
    }

    #[test]
    fn small_sweep_with_delivery_layer_has_zero_violations() {
        let scenarios: Vec<String> = SCENARIOS.iter().map(|s| s.to_string()).collect();
        let out = sweep(&scenarios, Profile::all(), 0..3, true);
        assert_eq!(out.runs, 75);
        assert!(
            out.violations.is_empty(),
            "violations: {:?}",
            out.violations.iter().map(|v| format!("{}: {}", v.case.label(), v.reason)).collect::<Vec<_>>()
        );
        assert!(out.committed > 0, "some runs should commit");
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        use axml_obs::render_prometheus;
        // `fig1-crash` and `Storage` put the disk-backed WAL (tempdir
        // scratch space, seeded storage faults) under the byte-identity
        // bar too: paths and thread placement must never leak into
        // digests, snapshots, or histograms.
        let scenarios: Vec<String> = vec!["fig1".into(), "deep".into(), "fig1-crash".into()];
        let profiles = [Profile::Mixed, Profile::Storm, Profile::Storage];
        let serial = sweep_jobs(&scenarios, &profiles, 0..3, true, 1);
        for jobs in [2, 8] {
            let par = sweep_jobs(&scenarios, &profiles, 0..3, true, jobs);
            assert_eq!(par.runs, serial.runs);
            assert_eq!(par.committed, serial.committed);
            assert_eq!(par.aborted, serial.aborted);
            assert_eq!(par.digest, serial.digest, "jobs={jobs}");
            assert_eq!(par.snapshot, serial.snapshot, "jobs={jobs}");
            assert_eq!(par.snapshot.render(), serial.snapshot.render());
            assert_eq!(par.histograms, serial.histograms, "jobs={jobs}");
            assert_eq!(render_prometheus(&par.histograms), render_prometheus(&serial.histograms));
            assert_eq!(par.series, serial.series, "jobs={jobs}: gauge series merge is order-free");
            assert_eq!(par.series.to_json(), serial.series.to_json());
            assert_eq!(par.phase_histograms, serial.phase_histograms, "jobs={jobs}");
            assert_eq!(par.findings, serial.findings, "jobs={jobs}");
            assert_eq!(par.violations.len(), serial.violations.len());
        }
        assert!(serial.histograms.values().any(|h| h.count() > 0), "traced sweep derives latency samples");
        assert!(!serial.series.is_empty(), "traced sweep samples gauge series");
        assert!(serial.series.series.contains_key("outbox_depth"), "peer gauges reach the series plane");
        assert!(
            serial.phase_histograms.get("txn_total").is_some_and(|h| h.count() > 0),
            "phase profiler derives transaction totals"
        );
        assert!(serial.snapshot.get("net.sent") > 0, "merged snapshot aggregates counters");
    }

    #[test]
    fn crash_restart_rebuilds_state_from_wal_segments() {
        // fig1-crash with no message faults at all: AP3 dies while
        // compensating its completed subtree, and its restart rebuilds
        // the mid-compensation state purely from its on-disk segments
        // (`set_durability_sink` replaced the in-memory sink before the
        // run, and `crash_recover` reloads the journal from the sink's
        // recovery scan — there is no in-memory clone path left). The
        // oracle, the online monitor, and the spec gate must all pass,
        // and every participant's document must equal the baseline.
        let mut recovered_somewhere = false;
        for seed in 0..4 {
            let case = CaseConfig::new("fig1-crash", Profile::Drops, seed);
            let plane = FaultPlane::probabilistic(case.seed, 0.0, 0.0, 0.0, 0.0);
            let (result, _dump) = run_with_plane_traced(&case, plane);
            assert!(result.verdict.ok, "seed {seed}: {}", result.verdict.reason);
            assert_eq!(result.committed, Some(false), "seed {seed}: fig1-crash aborts");
            assert!(result.conformance.expect("traced").is_clean());
            assert_eq!(result.snapshot.get("peer.3.crash_recoveries"), 1, "seed {seed}: AP3 crash-restarted");
            if result.snapshot.get("wal.recovery_entries") > 0 {
                recovered_somewhere = true;
            }
        }
        assert!(recovered_somewhere, "at least one seed must recover journal entries from disk");
    }

    #[test]
    fn storage_profile_sweep_is_clean_and_exercises_the_wal() {
        // The storage fault profile — torn appends, sync failures, crash
        // garbage — swept under the full gate: zero atomicity
        // violations, zero monitor findings, zero conformance breaks,
        // while the `wal.*` counters prove the faults actually fired and
        // recovery actually ran.
        let scenarios: Vec<String> = vec!["fig1".into(), "fig1-crash".into()];
        let out = sweep(&scenarios, &[Profile::Storage], 0..4, true);
        assert_eq!(out.runs, 8);
        assert!(
            out.violations.is_empty(),
            "violations: {:?}",
            out.violations.iter().map(|v| format!("{}: {}", v.case.label(), v.reason)).collect::<Vec<_>>()
        );
        assert!(out.findings.is_empty(), "monitor findings: {:?}", out.findings);
        assert!(out.snapshot.get("wal.bytes_appended") > 0, "WAL appends happened");
        assert!(out.snapshot.get("wal.recovery_entries") > 0, "crash recovery replayed disk entries");
        assert!(out.snapshot.get("wal.append_faults") > 0, "storage faults fired somewhere in the sweep");
    }

    #[test]
    fn parallel_sweep_reproduces_violations_with_shrunk_reproducers() {
        // The broken no-dedup variant under duplication: both the serial
        // and the 8-way sweep must catch the same violating cells, in
        // the same canonical order, with identical reproducers.
        let scenarios: Vec<String> = vec!["fig1".into()];
        let serial = sweep_jobs(&scenarios, &[Profile::Dups], 0..12, false, 1);
        let par = sweep_jobs(&scenarios, &[Profile::Dups], 0..12, false, 8);
        assert!(!serial.violations.is_empty(), "no-dedup under dups must violate somewhere in 12 seeds");
        assert_eq!(par.violations.len(), serial.violations.len());
        assert_eq!(par.digest, serial.digest);
        for (a, b) in serial.violations.iter().zip(&par.violations) {
            assert_eq!(a.case.label(), b.case.label());
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.reproducer, b.reproducer);
        }
    }

    #[test]
    fn broken_dedup_under_duplication_is_caught_and_shrunk() {
        // With duplicate suppression disabled, a duplicated Result makes
        // the consumer abort an already-answered invocation — a committed
        // transaction with a silently aborted participant. The oracle
        // must catch at least one such seed, and the shrinker must
        // produce a minimal scripted schedule that still fails.
        let mut caught = None;
        for seed in 0..40 {
            let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
            case.dedup = false;
            let result = run_case(&case);
            if !result.verdict.ok {
                caught = Some((case, result));
                break;
            }
        }
        let (case, result) = caught.expect("oracle never caught the broken variant in 40 seeds");
        let full = events_of(&result.plane, &result.trace);
        let repro = shrink_failure(&case, &result).expect("trace replay reproduces the violation");
        assert!(!run_with_plane(&case, repro.clone()).verdict.ok, "shrunk schedule still fails");
        let kept = repro.script.len() + repro.partitions.len() + repro.crashes.len();
        assert!(kept <= full.len(), "shrinking never grows the schedule");
        assert!(kept >= 1, "a violation needs at least one fault");
        // The reproducer is printable, RNG-free JSON.
        let text = serde_json::to_string(&repro).expect("serializable");
        let back: FaultPlane = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(back, repro);
        assert_eq!(back.drop_prob, 0.0);
        assert_eq!(back.dup_prob, 0.0);
    }

    #[test]
    fn violations_carry_a_flight_recorder_dump() {
        // A clean run ships no dump; a violating run (broken no-dedup
        // under duplication) ships the bounded per-peer event ring, and
        // the dump survives the corpus round trip: a `CorpusEntry` built
        // from the violation embeds it, serializes it, and a replay via
        // `replay_with_flight` regenerates an equivalent one.
        let clean = run_case(&CaseConfig::new("fig1", Profile::Drops, 0));
        assert!(clean.verdict.ok);
        assert!(clean.flight.is_none(), "clean runs carry no flight dump");

        let mut caught = None;
        for seed in 0..40 {
            let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
            case.dedup = false;
            let result = run_case(&case);
            if !result.verdict.ok {
                caught = Some((case, result));
                break;
            }
        }
        let (case, result) = caught.expect("oracle never caught the broken variant in 40 seeds");
        let flight = result.flight.as_ref().expect("violations carry a flight dump");
        assert!(flight.starts_with("flight recorder: last <="), "dump has the header: {flight}");
        assert!(flight.contains("-- AP"), "dump has per-peer sections: {flight}");

        let entry = CorpusEntry {
            note: "test".into(),
            expect: "violation".into(),
            scenario: case.scenario.clone(),
            profile: case.profile.name().to_string(),
            seed: case.seed,
            dedup: case.dedup,
            plane: result.plane.clone(),
            flight: result.flight.clone(),
        };
        let text = serde_json::to_string(&entry).expect("serializable");
        let back: CorpusEntry = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(back.flight, entry.flight, "flight dump survives the corpus round trip");
        let (verdict, replay_flight) = back.replay_with_flight();
        assert!(verdict.is_ok(), "entry still reproduces: {verdict:?}");
        assert_eq!(replay_flight, entry.flight, "a deterministic replay regenerates the same dump");
    }

    #[test]
    fn duplicate_storm_keeps_the_dedup_set_bounded() {
        // A tiny dedup capacity under heavy duplication: finalize-time
        // pruning (plus the capacity trigger) must keep every peer's
        // seen-set at or below capacity once the transaction resolves,
        // while the high-water mark records the worst the storm managed.
        let cap = 8;
        let mut b = builder_for("fig1").expect("known scenario");
        b.seed = 1009;
        let mut cfg = PeerConfig::default();
        cfg.dedup_capacity = cap;
        let plane = FaultPlane::probabilistic(9, 0.0, 0.5, 0.0, 0.0);
        let mut s = b.config(cfg).fault_plane(plane).build();
        let report = s.run();
        assert!(report.outcome.expect("resolved").committed);
        let mut suppressed = 0;
        let mut peak = 0;
        for &p in &s.participants {
            let actor = s.sim.actor(p);
            assert!(
                actor.seen_deliveries_len() <= cap,
                "AP{} dedup set not pruned after finalize: {} entries (cap {cap})",
                p.0,
                actor.seen_deliveries_len()
            );
            suppressed += actor.stats.dup_suppressed;
            peak = peak.max(actor.stats.seen_peak);
        }
        assert!(suppressed > 0, "the storm should have forced suppressions");
        assert!(peak > 0, "the high-water mark should have registered");
    }

    #[test]
    fn traced_replay_of_a_shrunk_reproducer_is_byte_identical() {
        // The acceptance bar for the trace layer: take a real shrunk
        // reproducer, replay it traced twice, and require the journals
        // to match byte for byte.
        let mut caught = None;
        for seed in 0..40 {
            let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
            case.dedup = false;
            let result = run_case(&case);
            if !result.verdict.ok {
                caught = Some((case, result));
                break;
            }
        }
        let (case, result) = caught.expect("no violation found to shrink");
        let plane = shrink_failure(&case, &result).expect("trace replay reproduces");
        let (ra, da) = run_with_plane_traced(&case, plane.clone());
        let (rb, db) = run_with_plane_traced(&case, plane);
        assert!(!da.journal.is_empty());
        assert_eq!(da.journal, db.journal, "traced replays must be byte-identical");
        assert_eq!(da.tree, db.tree);
        assert_eq!(da.snapshot, db.snapshot);
        assert_eq!(ra.digest, rb.digest);
        // Tracing is observation only: same digest as the untraced run.
        assert_eq!(ra.digest, run_with_plane(&case, rb.plane).digest);
    }

    #[test]
    fn monitor_catches_out_of_order_compensation() {
        // The deliberately broken peer variant applies self-compensation
        // batches in forward log order; the online monitor's rule M001
        // (§3.1 reverse order) must flag it, and must stay silent on the
        // correct reverse-order peer under the same schedule.
        let run = |broken: bool| {
            // Fig. 1 with S2 slow and faulty: the whole AP3 subtree
            // completes first, so AP3 accumulates several forward log
            // records (child materializations plus its own update)
            // before the abort arrives — giving the reverse-order rule
            // an actual order to check.
            let mut b = ScenarioBuilder::fig1().fault_at(2);
            b.seed = 1000;
            b.durations.insert(2, 60);
            let mut cfg = PeerConfig::default();
            cfg.use_alternative_providers = false;
            cfg.compensate_in_log_order = broken;
            let monitor = Rc::new(RefCell::new(Monitor::new()));
            let mut s = b.config(cfg).build();
            s.sim.attach_observer(monitor.clone());
            let report = s.run();
            assert_eq!(report.outcome.map(|o| o.committed), Some(false), "fig1-abort aborts");
            let mut m = monitor.borrow_mut();
            m.finish().to_vec()
        };
        let clean = run(false);
        assert!(clean.is_empty(), "correct peer must be monitor-clean: {clean:?}");
        let broken = run(true);
        assert!(broken.iter().any(|f| f.rule == "M001"), "forward-order compensation must trigger M001: {broken:?}");
    }

    #[test]
    fn spec_conformance_rides_traced_runs() {
        // Clean traced case: the journal conforms to the reference model
        // and the verdict stays clean.
        let case = CaseConfig::new("fig1", Profile::Mixed, 3);
        let b = builder_for("fig1").expect("known scenario");
        let plane = plane_for(Profile::Mixed, 3, &b.peers());
        let (result, _dump) = run_with_plane_traced(&case, plane);
        let conf = result.conformance.as_ref().expect("traced runs carry a conformance verdict");
        assert!(conf.is_clean(), "{}", conf.render_text());
        assert!(conf.events > 0);
        assert!(result.verdict.ok, "{}", result.verdict.reason);
        // Untraced runs have no journal to check.
        assert!(run_case(&case).conformance.is_none());
    }

    #[test]
    fn spec_conformance_refutes_forward_order_compensation() {
        // The same broken-peer recipe as the monitor test above, checked
        // by replaying the journal against the reference model: M001
        // surfaces as invariant I2 / rule R08, and the monitor and the
        // spec must agree on the offending event.
        let run = |broken: bool| {
            let mut b = ScenarioBuilder::fig1().fault_at(2).traced();
            b.seed = 1000;
            b.durations.insert(2, 60);
            let mut cfg = PeerConfig::default();
            cfg.use_alternative_providers = false;
            cfg.compensate_in_log_order = broken;
            let monitor = Rc::new(RefCell::new(Monitor::new()));
            let mut s = b.config(cfg).build();
            s.sim.attach_observer(monitor.clone());
            s.run();
            let findings = monitor.borrow_mut().finish().to_vec();
            let conformance = axml_spec::check_journal(s.trace().expect("traced run"));
            (findings, conformance)
        };
        let (findings, conf) = run(false);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(conf.is_clean(), "correct peer must conform: {}", conf.render_text());
        let (findings, conf) = run(true);
        let m = findings.iter().find(|f| f.rule == "M001").expect("M001 finding");
        let d = conf.divergences.iter().find(|d| d.invariant == "I2").expect("I2 divergence");
        assert_eq!((d.seq, d.at, d.peer), (m.seq, m.at, m.peer), "monitor and spec disagree on the offender");
        assert_eq!(d.rule, "R08");
        assert!(!d.context.is_empty(), "divergence must carry causal context");
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(builder_for("nope").is_none());
        for s in SCENARIOS {
            assert!(builder_for(s).is_some(), "{s}");
        }
    }
}
