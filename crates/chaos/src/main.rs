//! `axml-chaos` — seeded fault sweeps with an atomicity oracle.
//!
//! ```text
//! axml-chaos sweep [--seeds N] [--scenarios a,b] [--profiles p,q] [--no-dedup] [--jobs N] [--prom FILE] [--series FILE]
//! axml-chaos smoke [--seeds N] [--jobs N]
//! axml-chaos store-smoke [--seeds N]
//! axml-chaos shrink-demo
//! axml-chaos gen <seed> [--run [--profile P] [--seed N]]
//! axml-chaos gen-sweep [--base-seed B] [--count N] [--seeds N] [--profiles p,q] [--no-dedup] [--jobs N] [--prom FILE] [--series FILE] [--corpus DIR]
//! axml-chaos corpus [--dir DIR] [--flight DIR]
//! axml-chaos trace (--demo | <scenario> [--profile P] [--seed N] [--script FILE] [--no-dedup]) [--journal FILE]
//! axml-chaos stats (--demo | <scenario> [--profile P] [--seed N] [--script FILE] [--no-dedup]) [--prom FILE]
//! ```
//!
//! `sweep` runs the full scenario × profile × seed matrix (default
//! 5 × 5 × 16 = 400 runs) — every run watched by the online protocol
//! monitor — and exits non-zero on any oracle violation or monitor
//! finding, printing each violation's shrunk scripted reproducer as JSON
//! plus the lifecycle trace of the minimal failing run. `--jobs N`
//! shards the cases across N worker threads; the report, sweep digest,
//! and `--prom` exposition are byte-identical for every jobs value
//! (cases merge in canonical order, not completion order).
//! `smoke` is the small CI variant (2 scenarios × storm × 16 seeds).
//! `store-smoke` is the durability CI check: per seed it runs the
//! traced `fig1-crash` case under the `storage` fault profile — every
//! peer on a disk-backed WAL, torn appends and sync failures in flight,
//! a mid-compensation kill+restart recovering from the segments — and
//! diffs the recovered run's final document state digest against an
//! uncrashed, fault-free reference of the same abort. It exits non-zero
//! on any digest mismatch, oracle violation, or if recovery never
//! actually replayed entries from disk.
//! `shrink-demo` deliberately disables duplicate suppression under the
//! duplication profile and shows the oracle catching it — it exits
//! non-zero if the broken variant is NOT caught.
//! `trace` replays one case with the lifecycle-event journal on and
//! pretty-prints the causal tree plus the unified counter snapshot;
//! `--script` replays a shrunk reproducer file instead of a profile and
//! `--journal` writes the raw JSON-lines journal for `axml-obs`.
//! `stats` replays one case traced and prints the trace analytics:
//! per-transaction critical paths, the latency percentile table, and the
//! monitor findings; `--prom` writes the Prometheus text exposition.
//! `gen` prints the deterministic `GenScenario` spec for a seed as JSON
//! (with `--run`, also executes it as one traced chaos case).
//! `gen-sweep` sweeps `count` *generated* scenarios (`gen:<base-seed>` …)
//! across the profile × seed matrix through the exact same machinery as
//! `sweep` — oracle, monitor, conformance gate, canonical-order merge,
//! `--jobs` byte-identity, `--prom` — defaulting to 64 scenarios ×
//! 5 profiles × 4 seeds = 1280 runs. `--corpus DIR` writes each
//! violation's shrunk reproducer into DIR as a `CorpusEntry` JSON.
//! `corpus` replays every checked-in `corpus/*.json` entry against its
//! expectation (fixed entries stay clean, tracked ones still reproduce);
//! `--flight DIR` writes the flight-recorder dump of each replay that
//! still violates into DIR next to the entry name.
//!
//! Every run in every mode carries the bounded per-peer flight recorder;
//! on a violation its dump (the last events each peer saw before the
//! oracle fired) is printed with the shrunk reproducer and embedded in
//! `--corpus` entries. `--series FILE` on `sweep`/`gen-sweep` writes the
//! merged gauge series (sampled every `SAMPLE_INTERVAL` ticks on every
//! traced run) as JSON lines — byte-identical across `--jobs` values.

#![forbid(unsafe_code)]

use axml_chaos::{
    builder_for, events_of, gen_scenario_names, load_corpus, plane_for, run_case, run_with_plane,
    run_with_plane_traced, shrink_failure, sweep_jobs, CaseConfig, CorpusEntry, GenConfig, GenScenario, Profile,
    SweepOutcome, SCENARIOS,
};
use axml_obs::{critical_paths, derive_histograms, percentile_table, render_prometheus};
use axml_p2p::{FaultPlane, TraceJournal};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Resolves the shared `trace` / `stats` case syntax:
/// `(--demo | <scenario> [--profile P] [--seed N] [--script FILE] [--no-dedup])`.
fn resolve_case(cmd: &str, args: &[String]) -> (CaseConfig, FaultPlane) {
    let (scenario, profile, seed) = if args.iter().any(|a| a == "--demo") {
        // A run worth looking at: Fig. 1 with S5 failing under
        // mixed network faults — the full §3.2 recovery story.
        ("fig1-abort".to_string(), Profile::Mixed, 5)
    } else {
        let Some(scenario) = args.get(1).filter(|a| !a.starts_with("--")).cloned() else {
            eprintln!(
                "usage: axml-chaos {cmd} (--demo | <scenario> [--profile P] [--seed N] [--script FILE] [--no-dedup])"
            );
            std::process::exit(1);
        };
        let profile = parse_flag(args, "--profile")
            .map(|p| {
                Profile::parse(&p).unwrap_or_else(|| {
                    eprintln!("unknown profile `{p}`");
                    std::process::exit(1);
                })
            })
            .unwrap_or(Profile::Mixed);
        let seed = parse_flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(0);
        (scenario, profile, seed)
    };
    let Some(b) = builder_for(&scenario) else {
        eprintln!("unknown scenario `{scenario}` (expected one of {SCENARIOS:?})");
        std::process::exit(1);
    };
    let plane = match parse_flag(args, "--script") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            serde_json::from_str::<FaultPlane>(&text).unwrap_or_else(|e| {
                eprintln!("{path} is not a reproducer: {e:?}");
                std::process::exit(1);
            })
        }
        None => plane_for(profile, seed, &b.peers()),
    };
    let mut case = CaseConfig::new(&scenario, profile, seed);
    // Reproducers caught against the broken no-dedup variant need
    // the same deliberately broken config to replay the violation.
    case.dedup = !args.iter().any(|a| a == "--no-dedup");
    (case, plane)
}

fn report(out: &SweepOutcome) -> bool {
    println!(
        "runs={} committed={} aborted={} unresolved={} violations={}",
        out.runs,
        out.committed,
        out.aborted,
        out.runs - out.committed - out.aborted,
        out.violations.len()
    );
    println!("digest={:016x}", out.digest);
    for (label, finding) in &out.findings {
        println!("FINDING {label}: {finding}");
    }
    for v in &out.violations {
        println!("VIOLATION {}: {}", v.case.label(), v.reason);
        match &v.reproducer {
            Some(json) => println!("  reproducer: {json}"),
            None => println!("  (trace replay did not reproduce)"),
        }
        if let Some(dump) = &v.trace {
            println!("  lifecycle trace of the shrunk run:");
            for line in dump.tree.lines() {
                println!("    {line}");
            }
        }
        if let Some(flight) = &v.flight {
            println!("  flight recorder at the violation:");
            for line in flight.lines() {
                println!("    {line}");
            }
        }
    }
    out.violations.is_empty()
}

/// Shared `--series FILE` handling for `sweep` / `gen-sweep`: writes the
/// merged gauge series as JSON lines (byte-identical for every `--jobs`).
fn write_series(args: &[String], out: &SweepOutcome) {
    if let Some(path) = parse_flag(args, "--series") {
        if let Err(e) = std::fs::write(&path, out.series.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("gauge series written to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("sweep");
    let seeds: u64 = parse_flag(&args, "--seeds").and_then(|s| s.parse().ok()).unwrap_or(16);
    let jobs: usize = parse_flag(&args, "--jobs").and_then(|s| s.parse().ok()).unwrap_or(1);
    let ok = match cmd {
        "sweep" => {
            let scenarios: Vec<String> = parse_flag(&args, "--scenarios")
                .map(|s| s.split(',').map(str::to_string).collect())
                .unwrap_or_else(|| SCENARIOS.iter().map(|s| s.to_string()).collect());
            let profiles: Vec<Profile> = parse_flag(&args, "--profiles")
                .map(|s| s.split(',').filter_map(Profile::parse).collect())
                .unwrap_or_else(|| Profile::all().to_vec());
            let dedup = !args.iter().any(|a| a == "--no-dedup");
            let out = sweep_jobs(&scenarios, &profiles, 0..seeds, dedup, jobs);
            let ok = report(&out);
            if let Some(path) = parse_flag(&args, "--prom") {
                if let Err(e) = std::fs::write(&path, render_prometheus(&out.histograms)) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("prometheus exposition written to {path}");
            }
            write_series(&args, &out);
            ok
        }
        "smoke" => {
            let scenarios = vec!["fig1".to_string(), "fig2".to_string()];
            report(&sweep_jobs(&scenarios, &[Profile::Storm], 0..seeds, true, jobs))
        }
        "store-smoke" => {
            // The crashed side: fig1-crash (AP3 killed mid-compensation,
            // restart from its WAL segments) under the storage fault
            // profile, traced so the spec conformance gate rides along.
            // The reference side: the same abort, fault-free and
            // uncrashed. Both end at the pre-transaction baseline, so
            // their final-document digests must be identical.
            let mut ok = true;
            for seed in 0..seeds.max(1) {
                let case = CaseConfig::new("fig1-crash", Profile::Storage, seed);
                let b = builder_for("fig1-crash").expect("known scenario");
                let plane = plane_for(Profile::Storage, seed, &b.peers());
                let (crashed, _dump) = run_with_plane_traced(&case, plane);
                let ref_case = CaseConfig::new("fig1-abort", Profile::Storage, seed);
                let reference = run_with_plane(&ref_case, FaultPlane::probabilistic(seed, 0.0, 0.0, 0.0, 0.0));
                let recovered = crashed.snapshot.get("wal.recovery_entries");
                println!(
                    "seed {seed}: crashed docs={:016x} reference docs={:016x} wal.recovery_entries={recovered} \
                     wal.torn_tails_discarded={} wal.append_faults={}",
                    crashed.doc_digest,
                    reference.doc_digest,
                    crashed.snapshot.get("wal.torn_tails_discarded"),
                    crashed.snapshot.get("wal.append_faults"),
                );
                if !crashed.verdict.ok {
                    println!("  VIOLATION: {}", crashed.verdict.reason);
                    ok = false;
                }
                if crashed.committed != Some(false) || reference.committed != Some(false) {
                    println!(
                        "  FAIL: both runs must abort (crashed={:?} reference={:?})",
                        crashed.committed, reference.committed
                    );
                    ok = false;
                }
                if recovered == 0 {
                    println!("  FAIL: restart never replayed WAL entries from disk");
                    ok = false;
                }
                if crashed.doc_digest != reference.doc_digest {
                    println!("  FAIL: recovered document state diverges from the uncrashed reference");
                    ok = false;
                }
            }
            if ok {
                println!("store-smoke: recovered state matches the uncrashed reference on every seed");
            }
            ok
        }
        "gen" => {
            let Some(seed) = args.get(1).and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("usage: axml-chaos gen <seed> [--run [--profile P] [--seed N]]");
                std::process::exit(1);
            };
            let g = GenScenario::generate(seed, &GenConfig::default());
            println!("{}", g.to_json());
            if args.iter().any(|a| a == "--run") {
                let profile = parse_flag(&args, "--profile")
                    .map(|p| {
                        Profile::parse(&p).unwrap_or_else(|| {
                            eprintln!("unknown profile `{p}`");
                            std::process::exit(1);
                        })
                    })
                    .unwrap_or(Profile::Mixed);
                let run_seed = parse_flag(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(0);
                let case = CaseConfig::new(&g.name(), profile, run_seed);
                let plane = plane_for(profile, run_seed, &g.builder().peers());
                let (result, dump) = run_with_plane_traced(&case, plane);
                println!("case {}", case.label());
                println!("{}", dump.tree);
                match result.committed {
                    Some(true) => println!("outcome: committed"),
                    Some(false) => println!("outcome: aborted"),
                    None => println!("outcome: unresolved at the deadline"),
                }
                if result.verdict.ok {
                    println!("oracle: atomicity held");
                } else {
                    println!("oracle: VIOLATION — {}", result.verdict.reason);
                }
            }
            true
        }
        "gen-sweep" => {
            let base: u64 = parse_flag(&args, "--base-seed").and_then(|s| s.parse().ok()).unwrap_or(0);
            let count: u64 = parse_flag(&args, "--count").and_then(|s| s.parse().ok()).unwrap_or(64);
            let run_seeds: u64 = parse_flag(&args, "--seeds").and_then(|s| s.parse().ok()).unwrap_or(4);
            let scenarios = gen_scenario_names(base, count);
            let profiles: Vec<Profile> = parse_flag(&args, "--profiles")
                .map(|s| s.split(',').filter_map(Profile::parse).collect())
                .unwrap_or_else(|| Profile::all().to_vec());
            let dedup = !args.iter().any(|a| a == "--no-dedup");
            let out = sweep_jobs(&scenarios, &profiles, 0..run_seeds, dedup, jobs);
            let ok = report(&out);
            if let Some(dir) = parse_flag(&args, "--corpus") {
                std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                    eprintln!("cannot create {dir}: {e}");
                    std::process::exit(1);
                });
                for v in &out.violations {
                    let Some(repro) = &v.reproducer else { continue };
                    let plane = serde_json::from_str(repro).expect("reproducer round-trips");
                    let entry = CorpusEntry {
                        note: format!("surfaced by gen-sweep at {}: {}", v.case.label(), v.reason),
                        expect: "violation".to_string(),
                        scenario: v.case.scenario.clone(),
                        profile: v.case.profile.name().to_string(),
                        seed: v.case.seed,
                        dedup: v.case.dedup,
                        plane,
                        flight: v.flight.clone(),
                    };
                    let file = format!(
                        "{dir}/{}-{}-{}.json",
                        v.case.scenario.replace(':', "-"),
                        v.case.profile.name(),
                        v.case.seed
                    );
                    std::fs::write(&file, serde_json::to_string(&entry).expect("serializable")).unwrap_or_else(|e| {
                        eprintln!("cannot write {file}: {e}");
                        std::process::exit(1);
                    });
                    println!("corpus entry written to {file}");
                }
            }
            if let Some(path) = parse_flag(&args, "--prom") {
                if let Err(e) = std::fs::write(&path, render_prometheus(&out.histograms)) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("prometheus exposition written to {path}");
            }
            write_series(&args, &out);
            ok
        }
        "corpus" => {
            let dir = parse_flag(&args, "--dir").unwrap_or_else(|| "corpus".to_string());
            let flight_dir = parse_flag(&args, "--flight");
            if let Some(fd) = &flight_dir {
                std::fs::create_dir_all(fd).unwrap_or_else(|e| {
                    eprintln!("cannot create {fd}: {e}");
                    std::process::exit(1);
                });
            }
            match load_corpus(std::path::Path::new(&dir)) {
                Ok(entries) => {
                    let mut ok = true;
                    for (name, entry) in &entries {
                        let (verdict, flight) = entry.replay_with_flight();
                        match verdict {
                            Ok(()) => println!("{name}: ok ({})", entry.expect),
                            Err(reason) => {
                                println!("{name}: FAIL — {reason}");
                                ok = false;
                            }
                        }
                        if let (Some(fd), Some(dump)) = (&flight_dir, &flight) {
                            let stem = name.strip_suffix(".json").unwrap_or(name);
                            let file = format!("{fd}/{stem}.flight.txt");
                            std::fs::write(&file, dump).unwrap_or_else(|e| {
                                eprintln!("cannot write {file}: {e}");
                                std::process::exit(1);
                            });
                            println!("{name}: flight-recorder dump written to {file}");
                        }
                    }
                    println!("{} corpus entr{} replayed", entries.len(), if entries.len() == 1 { "y" } else { "ies" });
                    ok
                }
                Err(e) => {
                    eprintln!("corpus load failed: {e}");
                    false
                }
            }
        }
        "shrink-demo" => {
            let mut caught = false;
            for seed in 0..64 {
                let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
                case.dedup = false;
                let result = run_case(&case);
                if !result.verdict.ok {
                    println!("caught {}: {}", case.label(), result.verdict.reason);
                    let full = events_of(&result.plane, &result.trace).len();
                    match shrink_failure(&case, &result) {
                        Some(plane) => {
                            let kept = plane.script.len() + plane.partitions.len() + plane.crashes.len();
                            println!("shrunk {full} scheduled faults down to {kept}");
                            println!("reproducer: {}", serde_json::to_string(&plane).expect("serializable"));
                        }
                        None => println!("trace replay did not reproduce"),
                    }
                    caught = true;
                    break;
                }
            }
            if !caught {
                eprintln!("oracle FAILED to catch the no-dedup variant under duplication");
            }
            caught
        }
        "trace" => {
            let (case, plane) = resolve_case("trace", &args);
            let (result, dump) = run_with_plane_traced(&case, plane);
            println!("case {}", case.label());
            println!("{}", dump.tree);
            println!("{}", dump.snapshot);
            if let Some(path) = parse_flag(&args, "--journal") {
                if let Err(e) = std::fs::write(&path, &dump.journal) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("journal written to {path}");
            }
            match result.committed {
                Some(true) => println!("outcome: committed"),
                Some(false) => println!("outcome: aborted"),
                None => println!("outcome: unresolved at the deadline"),
            }
            if result.verdict.ok {
                println!("oracle: atomicity held");
            } else {
                println!("oracle: VIOLATION — {}", result.verdict.reason);
            }
            true
        }
        "stats" => {
            let (case, plane) = resolve_case("stats", &args);
            let (result, dump) = run_with_plane_traced(&case, plane);
            let journal = TraceJournal::from_json_lines(&dump.journal).expect("journal round-trips");
            println!("case {}", case.label());
            println!();
            println!("== critical paths");
            print!("{}", critical_paths(&journal));
            println!();
            println!("== latency percentiles (sim-time ticks)");
            let hists = derive_histograms(&journal);
            print!("{}", percentile_table(&hists));
            println!();
            println!("== gauge series (window={} ticks)", axml_chaos::SAMPLE_INTERVAL);
            print!("{}", dump.series.render_summary());
            if let Some(path) = parse_flag(&args, "--prom") {
                if let Err(e) = std::fs::write(&path, render_prometheus(&hists)) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!();
                println!("== prometheus exposition written to {path}");
            }
            println!();
            if result.findings.is_empty() {
                println!("== monitor: clean (0 findings)");
            } else {
                println!("== monitor: {} finding(s)", result.findings.len());
                for f in &result.findings {
                    println!("  {f}");
                }
            }
            result.findings.is_empty()
        }
        other => {
            eprintln!(
                "unknown command `{other}` \
                 (expected sweep | smoke | store-smoke | shrink-demo | gen | gen-sweep | corpus | trace | stats)"
            );
            false
        }
    };
    std::process::exit(if ok { 0 } else { 1 });
}
