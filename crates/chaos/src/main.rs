//! `axml-chaos` — seeded fault sweeps with an atomicity oracle.
//!
//! ```text
//! axml-chaos sweep [--seeds N] [--scenarios a,b] [--profiles p,q] [--no-dedup]
//! axml-chaos smoke [--seeds N]
//! axml-chaos shrink-demo
//! ```
//!
//! `sweep` runs the full scenario × profile × seed matrix (default
//! 4 × 4 × 16 = 256 runs) and exits non-zero on any oracle violation,
//! printing each violation's shrunk scripted reproducer as JSON.
//! `smoke` is the small CI variant (2 scenarios × storm × 16 seeds).
//! `shrink-demo` deliberately disables duplicate suppression under the
//! duplication profile and shows the oracle catching it — it exits
//! non-zero if the broken variant is NOT caught.

use axml_chaos::{events_of, run_case, shrink_failure, sweep, CaseConfig, Profile, SweepOutcome, SCENARIOS};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn report(out: &SweepOutcome) -> bool {
    println!(
        "runs={} committed={} aborted={} unresolved={} violations={}",
        out.runs,
        out.committed,
        out.aborted,
        out.runs - out.committed - out.aborted,
        out.violations.len()
    );
    for (case, reason, repro) in &out.violations {
        println!("VIOLATION {}: {reason}", case.label());
        match repro {
            Some(json) => println!("  reproducer: {json}"),
            None => println!("  (trace replay did not reproduce)"),
        }
    }
    out.violations.is_empty()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("sweep");
    let seeds: u64 = parse_flag(&args, "--seeds").and_then(|s| s.parse().ok()).unwrap_or(16);
    let ok = match cmd {
        "sweep" => {
            let scenarios: Vec<String> = parse_flag(&args, "--scenarios")
                .map(|s| s.split(',').map(str::to_string).collect())
                .unwrap_or_else(|| SCENARIOS.iter().map(|s| s.to_string()).collect());
            let profiles: Vec<Profile> = parse_flag(&args, "--profiles")
                .map(|s| s.split(',').filter_map(Profile::parse).collect())
                .unwrap_or_else(|| Profile::all().to_vec());
            let dedup = !args.iter().any(|a| a == "--no-dedup");
            report(&sweep(&scenarios, &profiles, 0..seeds, dedup))
        }
        "smoke" => {
            let scenarios = vec!["fig1".to_string(), "fig2".to_string()];
            report(&sweep(&scenarios, &[Profile::Storm], 0..seeds, true))
        }
        "shrink-demo" => {
            let mut caught = false;
            for seed in 0..64 {
                let mut case = CaseConfig::new("fig1", Profile::Dups, seed);
                case.dedup = false;
                let result = run_case(&case);
                if !result.verdict.ok {
                    println!("caught {}: {}", case.label(), result.verdict.reason);
                    let full = events_of(&result.plane, &result.trace).len();
                    match shrink_failure(&case, &result) {
                        Some(plane) => {
                            let kept = plane.script.len() + plane.partitions.len() + plane.crashes.len();
                            println!("shrunk {full} scheduled faults down to {kept}");
                            println!("reproducer: {}", serde_json::to_string(&plane).expect("serializable"));
                        }
                        None => println!("trace replay did not reproduce"),
                    }
                    caught = true;
                    break;
                }
            }
            if !caught {
                eprintln!("oracle FAILED to catch the no-dedup variant under duplication");
            }
            caught
        }
        other => {
            eprintln!("unknown command `{other}` (expected sweep | smoke | shrink-demo)");
            false
        }
    };
    std::process::exit(if ok { 0 } else { 1 });
}
