//! Seeded scenario generator: random invocation trees, lint-clean **by
//! construction**.
//!
//! The hand-written sweep scenarios cover the paper's two figures; the
//! composition shapes §3.2's recovery rules were actually designed for —
//! parallel/sequential composition with interruption, dynamic
//! compensation-order choice, handlers at arbitrary interior peers,
//! replicas joining mid-recovery (cf. *Static vs Dynamic SAGAs* and
//! *General dynamic recovery for compensating CSP*) — only show up in
//! generated trees. [`GenScenario::generate`] derives one deterministic
//! scenario from a seed: tree shape (depth/fanout), super-peer marking,
//! catch/catchAll handlers with retry/substitute actions, replica sets,
//! lazy vs eager materialization, peer-independent compensation,
//! chaining on/off, service durations, and disconnect/crash schedules.
//!
//! Every constraint the static verifier enforces (axml-analyze's W/L
//! rules) is honored structurally while generating, not checked after
//! the fact:
//!
//! - the invocation graph is grown as a tree rooted at the origin with
//!   fresh ids (W001: no cycles, no multi-parents, no orphans);
//! - named catches only use [`axml_analysis::RAISABLE_FAULTS`], and
//!   `InjectedFault` catches only appear on calls whose subtree really
//!   contains the injected fault (W002);
//! - a retry handler guarding the permanently-failing subtree is only
//!   emitted when a replica of the failing peer exists — otherwise the
//!   generator flips it to a substitution (W003);
//! - disconnects target connected non-super participants inside the
//!   simulated window, and never the origin — the origin's outcome *is*
//!   the oracle's subject (W004);
//! - supers, replicas, handlers, durations, and the injected fault all
//!   reference declared participants and edges (W005);
//! - handler XML comes from the same builder helpers the hand-written
//!   scenarios use (W006), and per-call handler stacks are distinct
//!   named catches with at most one trailing catchAll (W007).
//!
//! The same seed always yields the same [`GenScenario`] — a plain
//! serde-serializable value — so `gen:<seed>` works as a scenario *name*
//! in the sweep matrix and every worker rebuilds the identical case.

use axml_core::peer::PeerConfig;
use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_doc::EvalMode;
use axml_p2p::{CrashEvent, PeerId};
use serde::{Deserialize, Serialize};

/// Shape and probability knobs for the generator. The default
/// configuration is what `gen:<seed>` scenario names resolve through, so
/// its values are part of the sweep's determinism contract — change them
/// and every generated digest changes.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum tree depth below the origin.
    pub max_depth: u32,
    /// Maximum children per peer.
    pub max_fanout: u32,
    /// Hard cap on tree peers (keeps sim cost bounded).
    pub max_peers: u32,
    /// Percent chance a service fault is injected somewhere.
    pub fault_pct: u64,
    /// Percent chance each edge carries a handler stack.
    pub handler_pct: u64,
    /// Percent chance of one scheduled disconnect.
    pub disconnect_pct: u64,
    /// Percent chance of one scheduled crash-restart.
    pub crash_pct: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            max_fanout: 3,
            max_peers: 9,
            fault_pct: 45,
            handler_pct: 30,
            disconnect_pct: 25,
            crash_pct: 25,
        }
    }
}

/// What a generated handler does when its catch matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenAction {
    /// `axml:retry times=.. wait=..`.
    Retry {
        /// Retry attempts before giving up.
        times: u32,
        /// Wait between attempts (sim ticks).
        wait: u64,
    },
    /// Forward recovery with a default value.
    Substitute,
}

/// One generated fault handler, attached to the `axml:sc` call
/// `peer → child`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenHandler {
    /// The invoking peer whose document carries the handler.
    pub peer: u32,
    /// The invoked child the call targets.
    pub child: u32,
    /// `Some(fault)` = `axml:catch faultName=..`; `None` = `axml:catchAll`.
    pub catch: Option<String>,
    /// The recovery action.
    pub action: GenAction,
}

/// A deterministic, serializable scenario spec: everything needed to
/// rebuild the exact [`ScenarioBuilder`], derived purely from a seed.
/// `gen:<seed>` scenario names resolve to this via
/// [`GenScenario::from_name_suffix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenScenario {
    /// The generation seed (also names the scenario: `gen:<seed>`).
    pub seed: u64,
    /// Invocation edges; the origin is always peer 1.
    pub edges: Vec<(u32, u32)>,
    /// Super-peer marking.
    pub supers: Vec<u32>,
    /// Update or query services.
    pub update_flavor: bool,
    /// Lazy (paper default) or eager materialization.
    pub eager_eval: bool,
    /// Ship compensation bundles with results (§3.1 D5).
    pub peer_independent: bool,
    /// Piggyback active-peer lists (§3.3 D4).
    pub chaining: bool,
    /// Re-invoke failed children on replica providers.
    pub use_alternative_providers: bool,
    /// Sibling subscription streams (scenario (d) detection), if any.
    pub stream_interval: Option<u64>,
    /// The peer whose service fails while processing, if any.
    pub inject_fault: Option<u32>,
    /// Handler stacks, in attachment order.
    pub handlers: Vec<GenHandler>,
    /// Tree peers that get a replica (ids assigned by the builder in
    /// this order: max-peer + 1, + 2, …).
    pub replicas: Vec<u32>,
    /// Non-default service durations.
    pub durations: Vec<(u32, u64)>,
    /// Scheduled disconnects `(time, peer)`.
    pub disconnects: Vec<(u64, u32)>,
    /// Scheduled crash-restarts `(time, peer)` — carried in the
    /// builder's own fault plane and merged into whatever profile plane
    /// the sweep applies.
    pub crashes: Vec<(u64, u32)>,
}

/// Deterministic splitmix64 — self-contained so generated specs stay
/// byte-stable regardless of any RNG crate's evolution.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Avoid the all-zeros fixpoint-ish start for tiny seeds.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x243f_6a88_85a3_08d3))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with `pct`% probability.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A uniformly chosen element.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

impl GenScenario {
    /// Generates the scenario for `seed` under `config`. Pure: the same
    /// inputs always produce the same value, byte for byte.
    pub fn generate(seed: u64, config: &GenConfig) -> GenScenario {
        let mut rng = Rng::new(seed);

        // --- Tree shape: BFS growth with fresh ids (W001-clean). The
        // origin always invokes at least one child so every scenario has
        // a real distributed transaction to check.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut next_id: u32 = 2;
        let mut frontier: Vec<(u32, u32)> = Vec::new(); // (peer, depth)
        let root_children = rng.range(1, u64::from(config.max_fanout)) as u32;
        for _ in 0..root_children {
            edges.push((1, next_id));
            frontier.push((next_id, 1));
            next_id += 1;
        }
        let mut i = 0;
        while i < frontier.len() {
            let (peer, depth) = frontier[i];
            i += 1;
            if depth >= config.max_depth || next_id > config.max_peers {
                continue;
            }
            let kids = rng.below(u64::from(config.max_fanout) + 1) as u32;
            for _ in 0..kids {
                if next_id > config.max_peers {
                    break;
                }
                edges.push((peer, next_id));
                frontier.push((next_id, depth + 1));
                next_id += 1;
            }
        }
        let peers: Vec<u32> = (1..next_id).collect();

        // --- Super-peer marking (trusted peers that never disconnect).
        let supers: Vec<u32> = peers.iter().copied().filter(|_| rng.chance(20)).collect();

        // --- Global knobs.
        let update_flavor = rng.chance(70);
        let eager_eval = rng.chance(30);
        let peer_independent = rng.chance(30);
        let chaining = rng.chance(80);

        // --- Injected service fault + the replica that makes forward
        // recovery possible. Alternative providers are only enabled when
        // a replica of the faulty peer exists: without one, provider
        // re-lookup would re-invoke the same failing provider forever.
        let inject_fault = rng.chance(config.fault_pct).then(|| *rng.pick(&peers));
        let mut replicas: Vec<u32> = Vec::new();
        let mut faulty_has_replica = false;
        if let Some(f) = inject_fault {
            if rng.chance(40) {
                replicas.push(f);
                faulty_has_replica = true;
            }
        }
        // An extra replica of a random tree peer (useful under churn).
        if rng.chance(20) {
            let of = *rng.pick(&peers);
            if !replicas.contains(&of) {
                replicas.push(of);
            }
            if inject_fault == Some(of) {
                faulty_has_replica = true;
            }
        }
        let use_alternative_providers = inject_fault.is_none() || faulty_has_replica;

        // --- Handler stacks per edge (W002/W003/W007-clean).
        let subtree = |root: u32| -> Vec<u32> {
            let mut seen = vec![root];
            let mut queue = vec![root];
            while let Some(p) = queue.pop() {
                for &(a, b) in &edges {
                    if a == p && !seen.contains(&b) {
                        seen.push(b);
                        queue.push(b);
                    }
                }
            }
            seen
        };
        let mut handlers: Vec<GenHandler> = Vec::new();
        for &(peer, child) in &edges {
            if !rng.chance(config.handler_pct) {
                continue;
            }
            let fault_below = inject_fault.map(|f| subtree(child).contains(&f)).unwrap_or(false);
            // Catch choice: catchAll, or a named catch drawn from the
            // linter's own raisable list — `InjectedFault` only where the
            // injected fault really sits below this call.
            let named: Vec<&str> = axml_analysis::RAISABLE_FAULTS
                .iter()
                .copied()
                .filter(|n| *n != "InjectedFault" || fault_below)
                .filter(|n| *n != "TxnResolved" && *n != "IsolationConflict" && *n != "NoSuchService")
                .collect();
            let catch = if rng.chance(50) { None } else { Some((*rng.pick(&named)).to_string()) };
            let mut action = if rng.chance(50) {
                GenAction::Retry { times: rng.range(1, 2) as u32, wait: rng.range(1, 8) }
            } else {
                GenAction::Substitute
            };
            // W003: retrying a permanently-failing subtree with no
            // replica just re-invokes the same failing provider — flip
            // the handler to forward recovery by substitution.
            let retry_guards_fault =
                fault_below && catch.as_deref().map(|n| n == "InjectedFault").unwrap_or(true) && !faulty_has_replica;
            if retry_guards_fault && matches!(action, GenAction::Retry { .. }) {
                action = GenAction::Substitute;
            }
            handlers.push(GenHandler { peer, child, catch: catch.clone(), action });
            // Optionally a trailing catchAll behind a named catch —
            // distinct by construction, so nothing is shadowed (W007).
            if catch.is_some() && rng.chance(30) {
                let trailing = if fault_below && !faulty_has_replica {
                    GenAction::Substitute
                } else if rng.chance(50) {
                    GenAction::Retry { times: 1, wait: rng.range(1, 8) }
                } else {
                    GenAction::Substitute
                };
                handlers.push(GenHandler { peer, child, catch: None, action: trailing });
            }
        }

        // --- Durations: slow services create the mid-flight windows the
        // disconnect/crash schedules need to actually interrupt work.
        let mut durations: Vec<(u32, u64)> = Vec::new();
        for &p in &peers {
            if rng.chance(30) {
                durations.push((p, rng.range(20, 80)));
            }
        }

        // --- Disconnect schedule: one non-super, non-origin participant
        // inside the active window (W004-clean; the origin must survive
        // to record the outcome the oracle judges).
        let mut disconnects: Vec<(u64, u32)> = Vec::new();
        if rng.chance(config.disconnect_pct) {
            let candidates: Vec<u32> = peers.iter().copied().filter(|p| *p != 1 && !supers.contains(p)).collect();
            if !candidates.is_empty() {
                disconnects.push((rng.range(15, 90), *rng.pick(&candidates)));
            }
        }
        // Sibling streams sharpen detection when someone disconnects.
        let stream_interval = (!disconnects.is_empty() && rng.chance(40)).then(|| rng.range(5, 12));

        // --- Crash-restart schedule: any tree peer, mid-flight.
        let mut crashes: Vec<(u64, u32)> = Vec::new();
        if rng.chance(config.crash_pct) {
            crashes.push((rng.range(10, 90), *rng.pick(&peers)));
        }

        GenScenario {
            seed,
            edges,
            supers,
            update_flavor,
            eager_eval,
            peer_independent,
            chaining,
            use_alternative_providers,
            stream_interval,
            inject_fault,
            handlers,
            replicas,
            durations,
            disconnects,
            crashes,
        }
    }

    /// Resolves the `<suffix>` of a `gen:<suffix>` scenario name: the
    /// generation seed, under the default [`GenConfig`].
    pub fn from_name_suffix(suffix: &str) -> Option<GenScenario> {
        suffix.parse::<u64>().ok().map(|seed| GenScenario::generate(seed, &GenConfig::default()))
    }

    /// The scenario name this spec answers to in the sweep matrix.
    pub fn name(&self) -> String {
        format!("gen:{}", self.seed)
    }

    /// The canonical serialized form (serde JSON; field order is the
    /// struct declaration, so equal specs serialize byte-identically).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }

    /// Builds the [`ScenarioBuilder`] this spec describes.
    pub fn builder(&self) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new(1, &self.edges);
        for &s in &self.supers {
            b = b.super_peer(s);
        }
        b = b.flavor(if self.update_flavor { Flavor::Update } else { Flavor::Query });
        let mut cfg = PeerConfig::default();
        cfg.eval = if self.eager_eval { EvalMode::Eager } else { EvalMode::Lazy };
        cfg.peer_independent = self.peer_independent;
        cfg.chaining = self.chaining;
        cfg.use_alternative_providers = self.use_alternative_providers;
        cfg.stream_interval = self.stream_interval;
        b = b.config(cfg);
        if let Some(f) = self.inject_fault {
            b = b.fault_at(f);
        }
        for h in &self.handlers {
            b = match h.action {
                GenAction::Retry { times, wait } => b.retry_handler(h.peer, h.child, h.catch.as_deref(), times, wait),
                GenAction::Substitute => b.substitute_handler(h.peer, h.child, h.catch.as_deref()),
            };
        }
        for &of in &self.replicas {
            let (nb, _replica) = b.with_replica(of);
            b = nb;
        }
        for &(p, d) in &self.durations {
            b = b.duration(p, d);
        }
        for &(at, p) in &self.disconnects {
            b = b.disconnect(at, p);
        }
        for &(at, p) in &self.crashes {
            b.fault.crashes.push(CrashEvent { at, peer: PeerId(p) });
        }
        b
    }
}

/// The scenario-name list for a generated sweep: `gen:<base>`,
/// `gen:<base+1>`, …— each resolving deterministically through
/// [`crate::builder_for`], so the existing sweep machinery (case matrix,
/// parallel runner, oracle, monitor, conformance gate, shrinker) runs
/// generated cases unchanged.
pub fn gen_scenario_names(base_seed: u64, count: u64) -> Vec<String> {
    (0..count).map(|i| format!("gen:{}", base_seed + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_spec_bytes() {
        for seed in [0, 1, 7, 42, 1_000_003] {
            let a = GenScenario::generate(seed, &GenConfig::default());
            let b = GenScenario::generate(seed, &GenConfig::default());
            assert_eq!(a, b);
            assert_eq!(a.to_json(), b.to_json(), "seed {seed}");
            let back: GenScenario = serde_json::from_str(&a.to_json()).expect("round-trips");
            assert_eq!(back, a);
        }
    }

    #[test]
    fn name_resolution_matches_direct_generation() {
        let g = GenScenario::generate(17, &GenConfig::default());
        assert_eq!(g.name(), "gen:17");
        assert_eq!(GenScenario::from_name_suffix("17"), Some(g));
        assert_eq!(GenScenario::from_name_suffix("not-a-seed"), None);
    }

    #[test]
    fn generated_shapes_vary() {
        // Across a modest seed range the generator must exercise every
        // major dimension at least once — otherwise the "generated
        // scenario space" is narrower than advertised.
        let gens: Vec<GenScenario> = (0..64).map(|s| GenScenario::generate(s, &GenConfig::default())).collect();
        assert!(gens.iter().any(|g| g.inject_fault.is_some()));
        assert!(gens.iter().any(|g| g.inject_fault.is_none()));
        assert!(gens.iter().any(|g| !g.handlers.is_empty()));
        assert!(gens.iter().any(|g| !g.replicas.is_empty()));
        assert!(gens.iter().any(|g| !g.disconnects.is_empty()));
        assert!(gens.iter().any(|g| !g.crashes.is_empty()));
        assert!(gens.iter().any(|g| !g.supers.is_empty()));
        assert!(gens.iter().any(|g| g.eager_eval));
        assert!(gens.iter().any(|g| g.peer_independent));
        assert!(gens.iter().any(|g| !g.chaining));
        assert!(gens.iter().any(|g| !g.update_flavor));
        assert!(gens.iter().any(|g| g.handlers.iter().any(|h| h.catch.is_none())));
        assert!(gens.iter().any(|g| g.handlers.iter().any(|h| h.catch.is_some())));
        assert!(gens.iter().any(|g| g.handlers.iter().any(|h| matches!(h.action, GenAction::Retry { .. }))));
        assert!(gens.iter().any(|g| g.handlers.iter().any(|h| h.action == GenAction::Substitute)));
        let depths: std::collections::BTreeSet<usize> =
            gens.iter().map(|g| g.builder().planned_chain().to_notation().matches('[').count()).collect();
        assert!(depths.len() > 1, "trees of different nesting depths: {depths:?}");
    }

    #[test]
    fn every_generated_scenario_is_lint_clean() {
        // The construction-time constraints really do imply analyzer
        // cleanliness — checked here over a dense seed range, and again
        // as a proptest over sparse random seeds in tests/gen.rs.
        for seed in 0..256 {
            let g = GenScenario::generate(seed, &GenConfig::default());
            let report = axml_analysis::analyze_all(&g.builder());
            assert!(report.is_clean(), "gen:{seed} not lint-clean:\n{}", report.render_text());
        }
    }
}
