//! Deterministic parallel execution for independent seeded cases.
//!
//! The sweep matrix is embarrassingly parallel: every `(scenario,
//! profile, seed)` cell builds its own [`axml_p2p::Sim`], runs it to
//! completion, and never shares state with any other cell. What is *not*
//! trivially parallel is keeping the outputs byte-identical to the
//! serial run — reports, FNV digests, merged counter snapshots, and
//! Prometheus expositions must not depend on which worker finished
//! first.
//!
//! [`par_map`] solves this with a strict split between **scheduling**
//! (nondeterministic, invisible) and **results** (deterministic,
//! canonical):
//!
//! - workers claim the next unclaimed item index from a shared atomic
//!   counter (self-scheduling work stealing — an idle worker always
//!   steals the globally next item, so no static sharding can leave a
//!   worker starved behind one slow case);
//! - each item runs entirely inside its worker thread — the `Sim`, its
//!   `Rc`-based observers, and every other non-`Send` structure are
//!   created, driven, and dropped without ever crossing threads; only
//!   the plain-data result is sent back over a channel, tagged with the
//!   item's index;
//! - the caller reassembles results **by index**, so the returned `Vec`
//!   is in item order no matter how the workers interleaved.
//!
//! Any fold over the returned `Vec` is therefore order-canonical: a
//! merge of snapshots, histograms, or digest text built left-to-right
//! over it is byte-identical for `jobs = 1` and `jobs = N`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// item order (index `i` of the output is `f(i, &items[i])`).
///
/// `jobs <= 1` (or a single item) runs inline on the calling thread with
/// no thread machinery at all — the parallel path must match *that*
/// byte-for-byte, not the other way around. The closure only needs to
/// produce a `Send` result; the values it builds internally (simulators,
/// `Rc` observers) never leave the worker.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send only fails if the receiver hung up, which
                // cannot happen while this scope is still collecting.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect while workers run; place by index to canonicalize.
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|r| r.expect("every claimed index produced a result")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, v| (i as u64) * 1000 + v * v);
        for jobs in [2, 4, 8] {
            assert_eq!(par_map(&items, jobs, |i, v| (i as u64) * 1000 + v * v), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, 8, |_, v| *v).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, v| v + 1), vec![8]);
    }

    #[test]
    fn oversubscription_is_harmless() {
        // More workers than items: extra workers find the counter
        // exhausted and exit immediately.
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map(&items, 64, |_, v| v * 2), vec![0, 2, 4]);
    }

    #[test]
    fn uneven_work_still_canonical() {
        // Make early items much slower than late ones so workers finish
        // wildly out of order; the output must not care.
        let items: Vec<u64> = (0..32).collect();
        let slow = |i: usize, v: &u64| {
            let spins = if i < 4 { 20_000 } else { 10 };
            let mut acc = *v;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        };
        let serial = par_map(&items, 1, slow);
        assert_eq!(par_map(&items, 8, slow), serial);
    }
}
