//! E11 — scalability of the transactional protocol (extension).
//!
//! The paper's characteristics list promises "the number of users
//! accessing the system simultaneously can be very high" and arbitrarily
//! nested invocation trees. This sweep grows the invocation tree from 3
//! to 63 peers and measures the protocol's cost envelope per transaction:
//! messages by class and logical completion time (critical-path latency).
//! Lazy-vs-eager containment is covered separately in E4.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::PeerConfig;
use axml_workload::{tree_edges, TreeShape};
use serde::Serialize;

use crate::table::Table;

/// One measured tree size.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Tree depth (fanout 2).
    pub depth: usize,
    /// Total peers.
    pub peers: usize,
    /// Chaining enabled (gossip overhead included)?
    pub chaining: bool,
    /// Invoke messages (= services actually invoked).
    pub invokes: u64,
    /// Total protocol messages (excluding keep-alive).
    pub protocol_msgs: u64,
    /// Keep-alive messages.
    pub keepalive_msgs: u64,
    /// Submission → commit time (critical path).
    pub latency: u64,
    /// Committed?
    pub committed: bool,
}

fn measure(depth: usize, chaining: bool, seed: u64) -> Row {
    let shape = TreeShape { depth, fanout: 2 };
    let edges = tree_edges(1, shape);
    let mut config = PeerConfig::default();
    config.chaining = chaining;
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).config(config);
    builder.seed = seed;
    let mut s = builder.build();
    let report = s.run();
    let m = &report.metrics;
    let keepalive = m.kind("ping") + m.kind("pong");
    Row {
        depth,
        peers: edges.len() + 1,
        chaining,
        invokes: m.kind("invoke"),
        protocol_msgs: m.sent - keepalive,
        keepalive_msgs: keepalive,
        latency: report.outcome.as_ref().map(|o| o.resolved_at - o.started_at).unwrap_or(report.finished_at),
        committed: report.outcome.map(|o| o.committed).unwrap_or(false),
    }
}

/// Runs the sweep.
pub fn run() -> Vec<Row> {
    run_jobs(1)
}

/// Runs the sweep sharded across `jobs` workers — each `(depth,
/// chaining)` sim is independent and deterministic, and results come
/// back in case order, so the rows match the serial run byte for byte.
pub fn run_jobs(jobs: usize) -> Vec<Row> {
    let mut cases = Vec::new();
    for depth in 1..=5usize {
        for chaining in [true, false] {
            cases.push((depth, chaining));
        }
    }
    axml_chaos::par_map(&cases, jobs, |_, &(depth, chaining)| measure(depth, chaining, 23))
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E11 — protocol scaling over tree size (fanout 2, update transactions)",
        &["depth", "peers", "chaining", "invokes", "protocol-msgs", "keepalive", "latency", "committed"],
    );
    for r in rows {
        t.row(vec![
            r.depth.to_string(),
            r.peers.to_string(),
            r.chaining.to_string(),
            r.invokes.to_string(),
            r.protocol_msgs.to_string(),
            r.keepalive_msgs.to_string(),
            r.latency.to_string(),
            r.committed.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: invokes = peers−1 (every service invoked once); without chaining, \
         protocol messages grow linearly in peers; with chaining, gossip adds a superlinear term \
         (the price of the disconnection resilience E2/E6 buy); latency tracks depth (the \
         critical path), not peer count",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let rows = run();
        for r in &rows {
            assert!(r.committed, "{r:?}");
            assert_eq!(r.invokes as usize, r.peers - 1, "one invoke per non-origin peer: {r:?}");
        }
        // Latency is driven by depth, not width: depth d+1 at fanout 2
        // doubles the peers but adds only one level of critical path.
        let lat = |d: usize| rows.iter().find(|r| r.depth == d && r.chaining).unwrap().latency;
        let peers = |d: usize| rows.iter().find(|r| r.depth == d && r.chaining).unwrap().peers;
        assert!(peers(5) > 8 * peers(2) / 2, "peer count explodes");
        assert!(lat(5) < 8 * lat(2), "latency must not: {} vs {}", lat(5), lat(2));
        // Without chaining, per-peer message cost is bounded; chaining's
        // gossip costs extra.
        let msgs = |d: usize, c: bool| rows.iter().find(|r| r.depth == d && r.chaining == c).unwrap().protocol_msgs;
        assert!(msgs(5, true) > msgs(5, false));
        let per_peer_plain = msgs(5, false) as f64 / peers(5) as f64;
        assert!(per_peer_plain < 12.0, "plain protocol stays linear: {per_peer_plain}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }
}
