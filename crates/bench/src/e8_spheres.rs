//! E8 — Spheres of Atomicity (§3.3).
//!
//! "Atomicity may still be guaranteed for a transaction if all the
//! involved peers (for that transaction) are super peers." We sample
//! participant sets from populations with varying super-peer fractions,
//! run each transaction under churn that targets every non-super
//! participant, and compare the static sphere prediction with the
//! observed outcome.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::{sphere_guarantees_atomicity, PeerConfig};
use axml_p2p::PeerId;
use axml_workload::{tree_edges, TreeShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::table::Table;

/// One measured population mix (aggregated).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Fraction of super peers among participants (origin always super).
    pub super_fraction: f64,
    /// Trials.
    pub trials: usize,
    /// Fraction of transactions whose sphere predicted "guaranteed".
    pub predicted_guaranteed: f64,
    /// Observed atomicity among predicted-guaranteed transactions.
    pub atomic_when_guaranteed: f64,
    /// Observed atomicity among NOT-guaranteed transactions (under churn).
    pub atomic_when_not: f64,
}

/// One trial: returns `(predicted_guaranteed, resolved, atomic)`.
fn one(seed: u64, super_fraction: f64) -> (bool, bool, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = TreeShape { depth: 2, fanout: 2 }; // 7 peers
    let edges = tree_edges(1, shape);
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update);
    builder.seed = seed;
    builder.supers.push(1);
    let participants: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
    for &p in &participants {
        if rng.gen_bool(super_fraction) {
            builder.supers.push(p);
        }
    }
    // Churn targets every non-super participant mid-run.
    for &p in &participants {
        if !builder.supers.contains(&p) {
            let at = rng.gen_range(8..60);
            builder = builder.disconnect(at, p);
        }
    }
    let mut config = PeerConfig::default();
    config.use_alternative_providers = false;
    builder = builder.config(config);
    builder.deadline = 5_000;
    let all_super = participants.iter().all(|p| builder.supers.contains(p));
    let mut s = builder.build();
    let report = s.run();
    // Static prediction from the final chain at the origin (equals the
    // planned participant set here).
    let predicted = report
        .txn
        .and_then(|txn| s.sim.actor(PeerId(1)).context(txn).map(|tc| sphere_guarantees_atomicity(&tc.chain)))
        .unwrap_or(all_super);
    (predicted, report.outcome.is_some(), report.atomic)
}

/// Runs the sweep.
pub fn run(trials: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &f in &[0.0f64, 0.5, 0.9, 1.0] {
        let mut predicted = 0usize;
        let mut atomic_guaranteed = (0usize, 0usize); // (atomic, total)
        let mut atomic_not = (0usize, 0usize);
        for t in 0..trials {
            let (p, resolved, atomic) = one(t as u64 * 101 + 13, f);
            predicted += p as usize;
            let ok = resolved && atomic;
            if p {
                atomic_guaranteed.0 += ok as usize;
                atomic_guaranteed.1 += 1;
            } else {
                atomic_not.0 += ok as usize;
                atomic_not.1 += 1;
            }
        }
        rows.push(Row {
            super_fraction: f,
            trials,
            predicted_guaranteed: predicted as f64 / trials.max(1) as f64,
            atomic_when_guaranteed: if atomic_guaranteed.1 > 0 {
                atomic_guaranteed.0 as f64 / atomic_guaranteed.1 as f64
            } else {
                f64::NAN
            },
            atomic_when_not: if atomic_not.1 > 0 { atomic_not.0 as f64 / atomic_not.1 as f64 } else { f64::NAN },
        });
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let fmt = |v: f64| if v.is_nan() { "-".to_string() } else { format!("{v:.2}") };
    let mut t = Table::new(
        "E8 — Spheres of Atomicity: prediction vs observation (7-peer tree, churn on non-supers)",
        &["super-frac", "trials", "P(guaranteed)", "atomic|guaranteed", "atomic|not"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.1}", r.super_fraction),
            r.trials.to_string(),
            fmt(r.predicted_guaranteed),
            fmt(r.atomic_when_guaranteed),
            fmt(r.atomic_when_not),
        ]);
    }
    t.with_note(
        "expected shape: atomic|guaranteed = 1.00 at every mix (the sphere check is sound); \
         P(guaranteed) reaches 1.0 only at 100% super peers; atomic|not < 1 under churn",
    )
}

/// One trial for the Criterion bench.
pub fn bench_once(all_super: bool) -> bool {
    one(9, if all_super { 1.0 } else { 0.0 }).2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_prediction_is_sound() {
        let rows = run(8);
        for r in &rows {
            if !r.atomic_when_guaranteed.is_nan() {
                assert_eq!(r.atomic_when_guaranteed, 1.0, "guaranteed must be atomic: {r:?}");
            }
        }
    }

    #[test]
    fn only_full_super_population_guarantees() {
        let rows = run(8);
        let get = |f: f64| rows.iter().find(|r| r.super_fraction == f).unwrap();
        assert_eq!(get(1.0).predicted_guaranteed, 1.0);
        assert!(get(0.0).predicted_guaranteed < 1.0);
        assert!(get(0.5).predicted_guaranteed <= get(0.9).predicted_guaranteed + 1e-9);
    }
}
