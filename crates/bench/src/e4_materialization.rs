//! E4 — lazy vs eager materialization (§3.1).
//!
//! Reproduces the paper's Query A / Query B contrast on the ATP document
//! and sweeps query selectivity on synthetic documents. Claim validated:
//! lazy evaluation materializes only what a query needs — which is
//! exactly why query compensation must be constructed dynamically.

use axml_doc::{EvalMode, Fault, MaterializationEngine, ResolvedCall, ServiceInvoker, ServiceResponse};
use axml_query::SelectQuery;
use axml_workload::{atp_document, random_axml_doc, DocParams};
use axml_xml::Fragment;
use serde::Serialize;

use crate::table::Table;

/// One measured query/mode combination.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload label.
    pub workload: String,
    /// `lazy` or `eager`.
    pub mode: String,
    /// Embedded calls present in the document.
    pub calls_total: usize,
    /// Calls actually materialized.
    pub calls_materialized: usize,
    /// Primitive effects logged (the compensation input).
    pub effects: usize,
    /// Nodes affected.
    pub cost_nodes: usize,
}

/// Deterministic fabric standing in for the remote tennis services.
struct Fabric;

impl ServiceInvoker for Fabric {
    fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
        match call.method.as_str() {
            "getPoints" => Ok(ServiceResponse { items: vec![Fragment::elem_text("points", "890")], effects: vec![] }),
            "getGrandSlamsWonbyYear" => {
                let year = call.params.iter().find(|(k, _)| k == "year").map(|(_, v)| v.clone()).unwrap_or_default();
                Ok(ServiceResponse {
                    items: vec![Fragment::elem("grandslamswon").with_attr("year", year).with_text("A, F")],
                    effects: vec![],
                })
            }
            m if m.starts_with("svc") => {
                let k = m.trim_start_matches("svc");
                Ok(ServiceResponse {
                    items: vec![Fragment::elem_text(format!("r{k}"), format!("fresh{k}"))],
                    effects: vec![],
                })
            }
            other => Err(Fault::no_such_service(other)),
        }
    }

    fn result_hints(&self, call: &ResolvedCall) -> Option<Vec<String>> {
        match call.method.as_str() {
            "getPoints" => Some(vec!["points".into()]),
            "getGrandSlamsWonbyYear" => Some(vec!["grandslamswon".into()]),
            m if m.starts_with("svc") => Some(vec![format!("r{}", m.trim_start_matches("svc"))]),
            _ => None,
        }
    }
}

fn measure(workload: &str, doc: &axml_xml::Document, query: &SelectQuery, mode: EvalMode) -> Row {
    let calls_total = axml_doc::ServiceCall::scan(doc).len();
    let mut doc = doc.clone();
    let engine = MaterializationEngine::new(mode).with_external("year", "2005");
    let (_hits, report) = engine.query(&mut doc, query, &mut Fabric).expect("query runs");
    Row {
        workload: workload.to_string(),
        mode: match mode {
            EvalMode::Lazy => "lazy".into(),
            EvalMode::Eager => "eager".into(),
        },
        calls_total,
        calls_materialized: report.materialized,
        effects: report.effects.len(),
        cost_nodes: report.cost_nodes,
    }
}

/// Runs the sweep.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    let atp = atp_document();
    let query_a = SelectQuery::parse(
        "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
    )
    .expect("query A");
    let query_b =
        SelectQuery::parse("Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;")
            .expect("query B");
    for mode in [EvalMode::Lazy, EvalMode::Eager] {
        rows.push(measure("ATP / query A (grandslamswon)", &atp, &query_a, mode));
        rows.push(measure("ATP / query B (points)", &atp, &query_b, mode));
    }
    // Synthetic: 20 embedded calls, queries selecting 1, 5, or all result names.
    let params = DocParams { nodes: 200, service_calls: 20, sc_urls: vec!["peer://ap9".into()], ..Default::default() };
    let doc = random_axml_doc(13, &params);
    for &k in &[1usize, 5, 20] {
        let projs: Vec<String> = (0..k).map(|i| format!("v//r{i}")).collect();
        let q = SelectQuery::parse(&format!("Select {} from v in root", projs.join(", "))).expect("synthetic query");
        for mode in [EvalMode::Lazy, EvalMode::Eager] {
            rows.push(measure(&format!("synthetic / {k} of 20 names"), &doc, &q, mode));
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E4 — lazy vs eager materialization (paper queries A/B + synthetic selectivity sweep)",
        &["workload", "mode", "calls", "materialized", "effects", "cost-nodes"],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.mode.clone(),
            r.calls_total.to_string(),
            r.calls_materialized.to_string(),
            r.effects.to_string(),
            r.cost_nodes.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: lazy materializes only the calls the query names (1 for queries A/B; \
         k of 20 in the sweep); eager always materializes everything — \
         the run-time-dependent effect set is why query compensation is dynamic",
    )
}

/// One lazy ATP query for the Criterion bench.
pub fn bench_once(eager: bool) -> usize {
    let atp = atp_document();
    let q =
        SelectQuery::parse("Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;")
            .expect("query");
    let mode = if eager { EvalMode::Eager } else { EvalMode::Lazy };
    measure("bench", &atp, &q, mode).calls_materialized
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_queries_shape() {
        let rows = run();
        let find = |w: &str, m: &str| rows.iter().find(|r| r.workload.contains(w) && r.mode == m).unwrap();
        // Query A lazily materializes only getGrandSlamsWonbyYear.
        assert_eq!(find("query A", "lazy").calls_materialized, 1);
        assert_eq!(find("query B", "lazy").calls_materialized, 1);
        assert_eq!(find("query A", "eager").calls_materialized, 2);
        // Query B (replace mode) deletes + inserts; A (merge) only inserts.
        assert!(find("query B", "lazy").effects > find("query A", "lazy").effects);
    }

    #[test]
    fn selectivity_scales_lazy_only() {
        let rows = run();
        let lazy =
            |k: &str| rows.iter().find(|r| r.workload.contains(k) && r.mode == "lazy").unwrap().calls_materialized;
        let eager =
            |k: &str| rows.iter().find(|r| r.workload.contains(k) && r.mode == "eager").unwrap().calls_materialized;
        assert!(lazy("1 of 20") <= lazy("5 of 20"));
        assert!(lazy("5 of 20") <= lazy("20 of 20"));
        assert_eq!(eager("1 of 20"), 20);
        assert!(lazy("1 of 20") < 20, "lazy skips irrelevant calls");
    }

    #[test]
    fn bench_entry_point() {
        assert_eq!(bench_once(false), 1);
        assert_eq!(bench_once(true), 2);
    }
}
