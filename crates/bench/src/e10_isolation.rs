//! E10 — isolation under contention (extension; the paper defers I).
//!
//! N origins concurrently invoke an update service on one shared
//! provider document; a fraction of them target the *same* slot
//! (contended), the rest disjoint slots. With path-level isolation the
//! provider serializes contended writers (first wins, losers abort and
//! are compensated); without it, every writer "succeeds" and updates are
//! silently lost.

use axml_core::peer::WsdlCatalog;
use axml_core::{AxmlPeer, PeerConfig, TxnMsg};
use axml_p2p::{PeerId, Sim, SimConfig};
use axml_query::{Locator, SelectQuery, UpdateAction};
use axml_xml::Fragment;
use serde::Serialize;

use crate::table::Table;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Concurrent writer transactions.
    pub writers: usize,
    /// Writers targeting the shared (contended) slot.
    pub contended: usize,
    /// Isolation enabled?
    pub isolation: bool,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions aborted by conflicts.
    pub aborted: usize,
    /// Conflicts detected at the provider.
    pub conflicts: u64,
    /// Updates surviving in the final document (contended slot counts 1).
    pub surviving_updates: usize,
    /// Updates lost (a committed transaction whose write is gone) — the
    /// anomaly isolation prevents.
    pub lost_updates: usize,
}

fn run_one(writers: usize, contended: usize, isolation: bool) -> Row {
    let provider = PeerId(1);
    let mut wsdl = WsdlCatalog::default();
    let mut peers = Vec::new();
    for id in 0..(writers as u32 + 2) {
        let mut config = PeerConfig::default();
        config.isolation = isolation;
        config.use_alternative_providers = false;
        peers.push(AxmlPeer::new(PeerId(id), config));
    }
    // Shared document: one contended slot plus a private slot per writer.
    let mut xml = String::from("<d><shared>initial</shared>");
    for w in 0..writers {
        xml.push_str(&format!("<own{w}>initial</own{w}>"));
    }
    xml.push_str("</d>");
    peers[1].repo.put_xml("shared", &xml).unwrap();
    for w in 0..writers {
        let target = if w < contended { "shared".to_string() } else { format!("own{w}") };
        let method = format!("write{w}");
        wsdl.publish(&method, &[&target]);
        peers[1].registry.register(
            axml_doc::ServiceDef::update(
                &method,
                "shared",
                UpdateAction::replace(
                    Locator::parse(&format!("d/{target}")).unwrap(),
                    vec![Fragment::elem_text(target.clone(), format!("by-w{w}"))],
                ),
            )
            .with_results(&[&target])
            .with_duration(25),
        );
    }
    for (i, p) in peers.iter_mut().enumerate() {
        let _ = i;
        p.wsdl = wsdl.clone();
    }
    // One origin peer per writer, ids 2..
    for w in 0..writers {
        let origin = (w + 2) as u32;
        let method = format!("write{w}");
        peers[origin as usize]
            .repo
            .put_xml(
                "mine",
                &format!(
                    r#"<d><out>x</out><axml:sc mode="replace" serviceNameSpace="w" serviceURL="peer://ap1" methodName="{method}"/></d>"#
                ),
            )
            .unwrap();
        // Wildcard projection: the embedded write call is always relevant.
        peers[origin as usize].registry.register(
            axml_doc::ServiceDef::query("go", "mine", SelectQuery::parse("Select v/* from v in d").unwrap())
                .with_results(&["out"]),
        );
    }
    let mut sim: Sim<TxnMsg, AxmlPeer> = Sim::new(SimConfig { seed: 5, ..Default::default() }, peers);
    for w in 0..writers {
        let origin = PeerId((w + 2) as u32);
        sim.actor_mut(origin).auto_submit = Some(("go".into(), vec![]));
        sim.schedule_timer((w as u64) % 3, origin, 0);
    }
    sim.run();

    let mut committed = 0usize;
    let mut aborted = 0usize;
    for w in 0..writers {
        let origin = PeerId((w + 2) as u32);
        let outcome = sim.actor(origin).outcomes.first().expect("resolved");
        if outcome.committed {
            committed += 1;
        } else {
            aborted += 1;
        }
    }
    let doc = sim.actor(provider).repo.get("shared").unwrap().to_xml();
    let surviving = doc.matches("by-w").count();
    // Lost update: a committed writer whose value is absent.
    let mut lost = 0usize;
    for w in 0..writers {
        let origin = PeerId((w + 2) as u32);
        let outcome = sim.actor(origin).outcomes.first().expect("resolved");
        if outcome.committed && !doc.contains(&format!("by-w{w}")) {
            lost += 1;
        }
    }
    Row {
        writers,
        contended,
        isolation,
        committed,
        aborted,
        conflicts: sim.actor(provider).stats.isolation_conflicts,
        surviving_updates: surviving,
        lost_updates: lost,
    }
}

/// Runs the sweep.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for &(writers, contended) in &[(4usize, 0usize), (4, 2), (4, 4), (8, 4)] {
        for isolation in [true, false] {
            rows.push(run_one(writers, contended, isolation));
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E10 — isolation under contention (N writers, one shared provider document)",
        &["writers", "contended", "isolation", "committed", "aborted", "conflicts", "surviving", "lost-updates"],
    );
    for r in rows {
        t.row(vec![
            r.writers.to_string(),
            r.contended.to_string(),
            r.isolation.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.conflicts.to_string(),
            r.surviving_updates.to_string(),
            r.lost_updates.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: with isolation, lost-updates = 0 at any contention (losers abort and are \
         compensated); without it, contended writers all commit but every overwritten value is a \
         lost update; disjoint writers are unaffected either way",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let rows = run();
        for r in &rows {
            assert_eq!(r.committed + r.aborted, r.writers, "{r:?}");
            if r.isolation {
                assert_eq!(r.lost_updates, 0, "isolation prevents lost updates: {r:?}");
                if r.contended >= 2 {
                    assert!(r.conflicts >= 1, "{r:?}");
                    assert!(r.aborted >= 1, "{r:?}");
                }
            } else {
                assert_eq!(r.aborted, 0, "no isolation → everyone commits: {r:?}");
                if r.contended >= 2 {
                    assert!(r.lost_updates >= 1, "lost updates without isolation: {r:?}");
                }
            }
            if r.contended == 0 {
                assert_eq!(r.lost_updates, 0);
                assert_eq!(r.conflicts, 0, "disjoint writers never conflict: {r:?}");
            }
        }
    }

    #[test]
    fn disjoint_writers_all_commit_with_isolation() {
        let r = run_one(4, 0, true);
        assert_eq!(r.committed, 4);
        assert_eq!(r.surviving_updates, 4);
    }
}
