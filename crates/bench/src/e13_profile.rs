//! E13 — phase-profile and gauge-series determinism, serial vs parallel
//! (extension).
//!
//! Runs the full chaos matrix traced (every run sampling the per-peer
//! gauge series and feeding the phase profiler), once on a single worker
//! and once sharded across `jobs` workers, and digests the merged
//! observability plane of each run: the phase-histogram Prometheus
//! exposition concatenated with the gauge-series JSON. The two digests
//! MUST match — sampling and profiling are pure observers folded in
//! canonical case order, so worker count can never show up in the
//! series, the phase percentiles, or their renderings. `bench-check`
//! fails the report if they differ.

use axml_chaos::{sweep_jobs, Profile, SweepOutcome, SCENARIOS};
use axml_obs::render_prometheus;
use serde::Serialize;

use crate::report::fnv64;
use crate::table::Table;

/// Seeds per (scenario, profile) cell — 5 × 5 × 4 = 100 cases (the
/// profile plane rides every traced run, so a quarter of the E12 matrix
/// already exercises every scenario × profile pair).
pub const SEEDS: u64 = 4;

/// One timed, traced sweep of the matrix with its observability digest.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Worker threads the sweep was sharded across.
    pub jobs: usize,
    /// Cases run (scenario × profile × seed).
    pub runs: usize,
    /// Transactions the phase profiler attributed (txn_total samples).
    pub txns: u64,
    /// (metric, peer, boundary) points in the merged gauge series.
    pub series_points: usize,
    /// FNV-1a over the phase exposition + series JSON renderings.
    pub obs_digest: String,
    /// Wall-clock time for the whole matrix, microseconds.
    pub wall_us: u64,
}

/// The digested rendering: phase-histogram exposition, then series JSON.
pub fn obs_rendering(out: &SweepOutcome) -> String {
    format!("{}{}", render_prometheus(&out.phase_histograms), out.series.to_json())
}

fn timed(jobs: usize) -> (Row, SweepOutcome) {
    let scenarios: Vec<String> = SCENARIOS.iter().map(|s| s.to_string()).collect();
    let t0 = std::time::Instant::now();
    let out = sweep_jobs(&scenarios, Profile::all(), 0..SEEDS, true, jobs);
    let wall_us = t0.elapsed().as_micros() as u64;
    let row = Row {
        jobs,
        runs: out.runs,
        txns: out.phase_histograms.get("txn_total").map_or(0, |h| h.count()),
        series_points: out.series.points(),
        obs_digest: format!("{:016x}", fnv64(&obs_rendering(&out))),
        wall_us,
    };
    (row, out)
}

/// Runs the matrix serially, then sharded across `jobs` workers.
pub fn run(jobs: usize) -> Vec<Row> {
    run_with_outcome(jobs).0
}

/// Like [`run`], but also hands back the parallel run's merged outcome
/// for the `BENCH_profile.prom` / series artifacts.
pub fn run_with_outcome(jobs: usize) -> (Vec<Row>, SweepOutcome) {
    let (serial, _) = timed(1);
    let (parallel, out) = timed(jobs.max(1));
    (vec![serial, parallel], out)
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E13 — phase-profile + gauge-series determinism, serial vs parallel (100-case traced matrix)",
        &["jobs", "runs", "txns", "series-points", "obs-digest", "wall-us"],
    );
    for r in rows {
        t.row(vec![
            r.jobs.to_string(),
            r.runs.to_string(),
            r.txns.to_string(),
            r.series_points.to_string(),
            r.obs_digest.clone(),
            r.wall_us.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: identical obs-digests (and identical txns/series-points) on every row — \
         the sampler and profiler are pure observers merged in canonical case order, so the whole \
         observability plane is byte-identical for every jobs value",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_observability_planes_are_byte_identical() {
        let (rows, out) = run_with_outcome(4);
        assert_eq!(rows.len(), 2);
        let (s, p) = (&rows[0], &rows[1]);
        assert_eq!(s.jobs, 1);
        assert_eq!(p.jobs, 4);
        assert_eq!(s.runs, SCENARIOS.len() * Profile::all().len() * SEEDS as usize);
        assert_eq!(s.obs_digest, p.obs_digest, "jobs never shows in the observability plane");
        assert_eq!((s.runs, s.txns, s.series_points), (p.runs, p.txns, p.series_points));
        assert!(s.txns > 0, "the profiler attributed transactions");
        assert!(s.series_points > 0, "the sampler recorded gauge points");
        assert_eq!(fnv64(&obs_rendering(&out)), u64::from_str_radix(&p.obs_digest, 16).unwrap());
    }
}
