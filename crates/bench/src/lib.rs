#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness: regenerates every figure of the paper and the
//! synthetic evaluation defined in DESIGN.md §5.
//!
//! The paper (a 6-page protocol paper) contains **two figures and no
//! measured tables**; E1 and E2 reproduce Fig. 1 and Fig. 2 as executable
//! scenarios, and E3–E8 quantify each qualitative claim the text makes.
//! Each experiment module exposes a `run(...)` returning serializable row
//! structs plus a table printer; the `experiments` binary drives them all.

pub mod e10_isolation;
pub mod e11_scale;
pub mod e12_sweep;
pub mod e13_profile;
pub mod e1_fig1;
pub mod e2_fig2;
pub mod e3_compensation;
pub mod e4_materialization;
pub mod e5_recovery_cost;
pub mod e6_churn;
pub mod e7_peer_independent;
pub mod e8_spheres;
pub mod e9_extended_chaining;
pub mod report;
pub mod table;

pub use report::BenchReport;
pub use table::Table;
