//! Regenerates every experiment table (DESIGN.md §5 / EXPERIMENTS.md).
//!
//! ```text
//! experiments [e1|e2|e3|e4|e5|e6|e7|e8|all] [--json]
//! ```
//!
//! With `--json`, rows are additionally emitted as JSON lines (one array
//! per experiment) for downstream plotting.

use axml_bench::{
    e10_isolation, e11_scale, e1_fig1, e2_fig2, e3_compensation, e4_materialization, e5_recovery_cost, e6_churn,
    e7_peer_independent, e8_spheres, e9_extended_chaining,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("e1") {
        let rows = e1_fig1::run();
        e1_fig1::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e2") {
        let rows = e2_fig2::run();
        e2_fig2::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e3") {
        let rows = e3_compensation::run(10);
        e3_compensation::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e4") {
        let rows = e4_materialization::run();
        e4_materialization::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e5") {
        let rows = e5_recovery_cost::run();
        e5_recovery_cost::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e6") {
        let rows = e6_churn::run(20);
        e6_churn::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e7") {
        let rows = e7_peer_independent::run(12);
        e7_peer_independent::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e8") {
        let rows = e8_spheres::run(16);
        e8_spheres::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e9") {
        let rows = e9_extended_chaining::run();
        e9_extended_chaining::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e10") {
        let rows = e10_isolation::run();
        e10_isolation::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
    if want("e11") {
        let rows = e11_scale::run();
        e11_scale::table(&rows).print();
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
        println!();
    }
}
