//! Regenerates every experiment table (DESIGN.md §5 / EXPERIMENTS.md).
//!
//! ```text
//! experiments [e1|e2|…|e13|sweep|profile|all] [--json] [--jobs N]
//! ```
//!
//! With `--json`, rows are additionally emitted as JSON lines (one array
//! per experiment) for downstream plotting. Every experiment that runs
//! also writes a `BENCH_<id>.json` report (row count, rows digest, wall
//! time, parameters) into the working directory; `bench-check` parses
//! them back and CI archives them. Experiments with a traced latency
//! sweep (currently E5) additionally embed per-metric histogram
//! summaries in the report and drop the full distributions alongside it
//! as a Prometheus text exposition (`BENCH_<id>.prom`).
//!
//! `--jobs N` (default: the host's available parallelism) shards the
//! sim-heavy sweeps — E5, E6, E11, and the E12/`sweep` chaos matrix —
//! across N worker threads. Every case runs in its own deterministic
//! sim and results merge in canonical case order, so the rows, digests,
//! and reports are byte-identical for every jobs value; only wall time
//! changes. The `sweep` report records both the serial and the parallel
//! sweep digest in its params so `bench-check` can prove they agree;
//! the E13/`profile` report does the same for the observability plane
//! (phase-histogram exposition + gauge-series JSON digests).

#![forbid(unsafe_code)]

use axml_bench::{
    e10_isolation, e11_scale, e12_sweep, e13_profile, e1_fig1, e2_fig2, e3_compensation, e4_materialization,
    e5_recovery_cost, e6_churn, e7_peer_independent, e8_spheres, e9_extended_chaining, BenchReport,
};
use axml_obs::{render_prometheus, Histogram};
use std::collections::BTreeMap;

/// Runs one experiment: prints its table (plus JSON rows when asked) and
/// writes its `BENCH_<id>.json` report. When `$hists` yields histograms,
/// their summaries are embedded in the report and the full distributions
/// written next to it as `BENCH_<id>.prom`.
macro_rules! experiment {
    ($id:literal, $want:expr, $json:expr, $params:expr, $run:expr, $table:path) => {
        experiment!($id, $want, $json, $params, $run, $table, None);
    };
    ($id:literal, $want:expr, $json:expr, $params:expr, $run:expr, $table:path, $hists:expr) => {
        if $want($id) {
            let t0 = std::time::Instant::now();
            let rows = $run;
            let wall_time_us = t0.elapsed().as_micros() as u64;
            $table(&rows).print();
            let rows_json = serde_json::to_string(&rows).expect("serializable");
            if $json {
                println!("{rows_json}");
            }
            let mut report = BenchReport::from_run($id, $params, rows.len(), &rows_json, wall_time_us);
            let hists: Option<BTreeMap<String, Histogram>> = $hists;
            if let Some(hists) = hists {
                report.histograms = Some(hists.iter().map(|(k, v)| (k.clone(), v.summary())).collect());
                let prom_name = concat!("BENCH_", $id, ".prom");
                if let Err(e) = std::fs::write(prom_name, render_prometheus(&hists)) {
                    eprintln!("cannot write {prom_name}: {e}");
                }
            }
            if let Err(e) = std::fs::write(report.file_name(), report.to_json() + "\n") {
                eprintln!("cannot write {}: {e}", report.file_name());
            }
            println!();
        }
    };
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    // Experiment names are the non-flag args; `--jobs N` consumes its
    // value, which would otherwise parse as a name.
    let which: Vec<&str> = {
        let mut w = Vec::new();
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
            } else if a == "--jobs" {
                skip = true;
            } else if !a.starts_with("--") {
                w.push(a.as_str());
            }
        }
        w
    };
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    experiment!("e1", want, json, &[], e1_fig1::run(), e1_fig1::table);
    experiment!("e2", want, json, &[], e2_fig2::run(), e2_fig2::table);
    experiment!("e3", want, json, &[("rounds", "10")], e3_compensation::run(10), e3_compensation::table);
    experiment!("e4", want, json, &[], e4_materialization::run(), e4_materialization::table);
    experiment!(
        "e5",
        want,
        json,
        &[],
        e5_recovery_cost::run_jobs(jobs),
        e5_recovery_cost::table,
        Some(e5_recovery_cost::histograms_jobs(jobs))
    );
    experiment!("e6", want, json, &[("rounds", "20")], e6_churn::run_jobs(20, jobs), e6_churn::table);
    experiment!("e7", want, json, &[("rounds", "12")], e7_peer_independent::run(12), e7_peer_independent::table);
    experiment!("e8", want, json, &[("seeds", "16")], e8_spheres::run(16), e8_spheres::table);
    experiment!("e9", want, json, &[], e9_extended_chaining::run(), e9_extended_chaining::table);
    experiment!("e10", want, json, &[], e10_isolation::run(), e10_isolation::table);
    experiment!("e11", want, json, &[], e11_scale::run_jobs(jobs), e11_scale::table);

    // E12 / `sweep` is hand-rolled: its report carries the serial and
    // parallel sweep digests in `params` (the macro only takes static
    // params) so `bench-check` can prove the runner is jobs-invariant.
    if want("e12") || want("sweep") {
        let t0 = std::time::Instant::now();
        let (rows, outcome) = e12_sweep::run_with_outcome(jobs);
        let wall_time_us = t0.elapsed().as_micros() as u64;
        e12_sweep::table(&rows).print();
        let rows_json = serde_json::to_string(&rows).expect("serializable");
        if json {
            println!("{rows_json}");
        }
        let mut report = BenchReport::from_run("sweep", &[], rows.len(), &rows_json, wall_time_us);
        report.params.insert("jobs".into(), jobs.to_string());
        report.params.insert("digest_serial".into(), rows[0].digest.clone());
        report.params.insert("digest_parallel".into(), rows[1].digest.clone());
        let speedup = rows[0].wall_us as f64 / rows[1].wall_us.max(1) as f64;
        report.params.insert("speedup_x100".into(), ((speedup * 100.0).round() as u64).to_string());
        report.histograms = Some(outcome.histograms.iter().map(|(k, v)| (k.clone(), v.summary())).collect());
        if let Err(e) = std::fs::write("BENCH_sweep.prom", render_prometheus(&outcome.histograms)) {
            eprintln!("cannot write BENCH_sweep.prom: {e}");
        }
        if let Err(e) = std::fs::write(report.file_name(), report.to_json() + "\n") {
            eprintln!("cannot write {}: {e}", report.file_name());
        }
        println!();
    }

    // E13 / `profile` is hand-rolled for the same reason: its report
    // carries the serial and parallel observability-plane digests (phase
    // exposition + gauge-series JSON) so `bench-check` can prove the
    // sampler and profiler are jobs-invariant. The parallel run's phase
    // distributions land in `BENCH_profile.prom` and its merged gauge
    // series in `BENCH_profile.series`.
    if want("e13") || want("profile") {
        let t0 = std::time::Instant::now();
        let (rows, outcome) = e13_profile::run_with_outcome(jobs);
        let wall_time_us = t0.elapsed().as_micros() as u64;
        e13_profile::table(&rows).print();
        let rows_json = serde_json::to_string(&rows).expect("serializable");
        if json {
            println!("{rows_json}");
        }
        let mut report = BenchReport::from_run("profile", &[], rows.len(), &rows_json, wall_time_us);
        report.params.insert("jobs".into(), jobs.to_string());
        report.params.insert("digest_serial".into(), rows[0].obs_digest.clone());
        report.params.insert("digest_parallel".into(), rows[1].obs_digest.clone());
        report.params.insert("txns".into(), rows[1].txns.to_string());
        report.params.insert("series_points".into(), rows[1].series_points.to_string());
        report.histograms = Some(outcome.phase_histograms.iter().map(|(k, v)| (k.clone(), v.summary())).collect());
        if let Err(e) = std::fs::write("BENCH_profile.prom", render_prometheus(&outcome.phase_histograms)) {
            eprintln!("cannot write BENCH_profile.prom: {e}");
        }
        if let Err(e) = std::fs::write("BENCH_profile.series", outcome.series.to_json()) {
            eprintln!("cannot write BENCH_profile.series: {e}");
        }
        if let Err(e) = std::fs::write(report.file_name(), report.to_json() + "\n") {
            eprintln!("cannot write {}: {e}", report.file_name());
        }
        println!();
    }
}
