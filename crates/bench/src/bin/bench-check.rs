//! Validates the `BENCH_<id>.json` reports the experiments binary wrote.
//!
//! ```text
//! bench-check [--dir DIR] [--min N]
//! ```
//!
//! Scans `DIR` (default: the working directory) for `BENCH_*.json`
//! files, parses each as a [`BenchReport`], and prints a one-line summary
//! per report. Exits non-zero if any file fails to parse or fewer than
//! `N` reports are found (default 1) — the CI bench-smoke gate.
//!
//! The `sweep` and `profile` reports get one extra check: their
//! `digest_serial` and `digest_parallel` params (the chaos-matrix digest
//! and the observability-plane digest with `--jobs 1` and `--jobs N`)
//! must be present and equal, proving the parallel runner — and the
//! sampler/profiler riding it — is a pure throughput knob.

#![forbid(unsafe_code)]

use axml_bench::BenchReport;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = parse_flag(&args, "--dir").unwrap_or_else(|| ".".to_string());
    let min: usize = parse_flag(&args, "--min").and_then(|s| s.parse().ok()).unwrap_or(1);

    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();

    let mut ok = true;
    let mut parsed = 0usize;
    for name in &names {
        let path = format!("{dir}/{name}");
        let verdict = std::fs::read_to_string(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| BenchReport::parse(&text));
        match verdict {
            Ok(r) => {
                parsed += 1;
                let params: Vec<String> = r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!(
                    "{name}: {} rows={} digest={:016x} wall={}us{}{}",
                    r.experiment,
                    r.rows,
                    r.rows_digest,
                    r.wall_time_us,
                    if params.is_empty() { "" } else { " " },
                    params.join(" ")
                );
                if let Some(hists) = &r.histograms {
                    for (metric, s) in hists {
                        println!(
                            "  {metric}: count={} p50={} p90={} p99={} max={}",
                            s.count, s.p50, s.p90, s.p99, s.max
                        );
                    }
                }
                if r.experiment == "sweep" || r.experiment == "profile" {
                    let kind = &r.experiment;
                    match (r.params.get("digest_serial"), r.params.get("digest_parallel")) {
                        (Some(s), Some(p)) if s == p => {
                            println!("  {kind} digests agree: serial == parallel == {s}");
                        }
                        (Some(s), Some(p)) => {
                            eprintln!("{name}: INVALID — {kind} digest mismatch: serial={s} parallel={p}");
                            ok = false;
                        }
                        _ => {
                            eprintln!("{name}: INVALID — {kind} report is missing digest_serial/digest_parallel");
                            ok = false;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{name}: INVALID — {e}");
                ok = false;
            }
        }
    }
    if parsed < min {
        eprintln!("expected at least {min} valid BENCH_*.json reports in {dir}, found {parsed}");
        ok = false;
    }
    std::process::exit(if ok { 0 } else { 1 });
}
