//! E5 — forward vs backward recovery cost across invocation trees.
//!
//! Sweeps tree depth and the depth of the injected fault; compares the
//! paper's forward-first policy (handlers + replica redo, "undo only as
//! much as required") against the saga-style backward baseline. Measured
//! costs: outcome, compensation nodes touched, messages, resolution time.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::{PeerConfig, RecoveryStyle};
use axml_obs::{derive_histograms, Histogram};
use axml_workload::{tree_edges, trees::peer_at_depth, TreeShape};
use serde::Serialize;
use std::collections::BTreeMap;

use crate::table::Table;

/// The `(depth, fanout)` shapes E5 sweeps.
const SHAPES: &[(usize, usize)] = &[(2, 2), (3, 2), (4, 2), (3, 3)];

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Tree depth.
    pub depth: usize,
    /// Tree fanout.
    pub fanout: usize,
    /// Depth of the faulting peer (1 = child of origin).
    pub fault_depth: usize,
    /// `forward` (handlers + replica) or `backward`.
    pub style: String,
    /// Did the transaction commit?
    pub committed: bool,
    /// All-or-nothing held?
    pub atomic: bool,
    /// Total compensation cost (nodes).
    pub comp_nodes: u64,
    /// Total messages.
    pub messages: u64,
    /// Submission → resolution time.
    pub resolution_time: u64,
}

fn measure(shape: TreeShape, fault_depth: usize, forward: bool, seed: u64) -> Row {
    measure_traced(shape, fault_depth, forward, seed, false).0
}

fn measure_traced(
    shape: TreeShape,
    fault_depth: usize,
    forward: bool,
    seed: u64,
    traced: bool,
) -> (Row, BTreeMap<String, Histogram>) {
    let edges = tree_edges(1, shape);
    let fault_peer = peer_at_depth(1, shape, fault_depth, seed);
    let mut config = PeerConfig::default();
    config.recovery = if forward { RecoveryStyle::ForwardFirst } else { RecoveryStyle::BackwardOnly };
    config.use_alternative_providers = forward;
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).fault_at(fault_peer).config(config);
    builder.seed = seed;
    builder.trace = traced;
    let builder = if forward {
        let (b, _replica) = builder.with_replica(fault_peer);
        b
    } else {
        builder
    };
    let mut s = builder.build();
    let report = s.run();
    let hists = s.trace().map(derive_histograms).unwrap_or_default();
    let row = Row {
        depth: shape.depth,
        fanout: shape.fanout,
        fault_depth,
        style: if forward { "forward".into() } else { "backward".into() },
        committed: report.outcome.as_ref().map(|o| o.committed).unwrap_or(false),
        atomic: report.atomic,
        comp_nodes: report.stats.values().map(|s| s.comp_cost_nodes).sum(),
        messages: report.metrics.sent,
        resolution_time: report.outcome.as_ref().map(|o| o.resolved_at - o.started_at).unwrap_or(report.finished_at),
    };
    (row, hists)
}

/// The flattened case list, in the canonical (serial) sweep order.
fn cases() -> Vec<(TreeShape, usize, bool)> {
    let mut cases = Vec::new();
    for &(depth, fanout) in SHAPES {
        let shape = TreeShape { depth, fanout };
        for fault_depth in 1..=depth {
            for forward in [true, false] {
                cases.push((shape, fault_depth, forward));
            }
        }
    }
    cases
}

/// Runs the sweep.
pub fn run() -> Vec<Row> {
    run_jobs(1)
}

/// Runs the sweep sharded across `jobs` workers. Each configuration runs
/// in its own deterministic sim; results come back in case order, so the
/// rows are byte-identical to the serial run for every jobs value.
pub fn run_jobs(jobs: usize) -> Vec<Row> {
    axml_chaos::par_map(&cases(), jobs, |_, &(shape, fault_depth, forward)| measure(shape, fault_depth, forward, 11))
}

/// Re-runs the whole sweep traced and folds every run's derived latency
/// histograms into one set (same fixed bucket layout ⇒ plain merges).
/// Deterministic: same seeds, byte-identical summaries on every call.
pub fn histograms() -> BTreeMap<String, Histogram> {
    histograms_jobs(1)
}

/// [`histograms`] sharded across `jobs` workers; histogram merging is
/// commutative and associative, but the fold still walks in case order
/// so intermediate states (and any future order-sensitive metric) stay
/// canonical.
pub fn histograms_jobs(jobs: usize) -> BTreeMap<String, Histogram> {
    let per_case = axml_chaos::par_map(&cases(), jobs, |_, &(shape, fault_depth, forward)| {
        measure_traced(shape, fault_depth, forward, 11, true).1
    });
    let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
    for hists in per_case {
        for (name, h) in hists {
            out.entry(name).or_default().merge(&h);
        }
    }
    out
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E5 — recovery cost vs failure depth (forward-first vs backward-only)",
        &["depth", "fanout", "fault@", "style", "committed", "atomic", "comp-nodes", "messages", "time"],
    );
    for r in rows {
        t.row(vec![
            r.depth.to_string(),
            r.fanout.to_string(),
            r.fault_depth.to_string(),
            r.style.clone(),
            r.committed.to_string(),
            r.atomic.to_string(),
            r.comp_nodes.to_string(),
            r.messages.to_string(),
            r.resolution_time.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: forward recovery (replica redo near the fault) commits with localized \
         compensation; backward recovery aborts the whole tree with compensation cost growing \
         with the amount of completed work — shallow peers complete last, so faults near the \
         origin undo the most",
    )
}

/// One run for the Criterion bench.
pub fn bench_once(depth: usize, forward: bool) -> bool {
    measure(TreeShape { depth, fanout: 2 }, depth.max(1), forward, 3).atomic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let rows = run();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.atomic, "every configuration preserves relaxed atomicity: {r:?}");
        }
        // Forward commits where backward aborts.
        for f in rows.iter().filter(|r| r.style == "forward") {
            assert!(f.committed, "forward recovery redoes and commits: {f:?}");
        }
        for b in rows.iter().filter(|r| r.style == "backward") {
            assert!(!b.committed, "backward-only always aborts on fault: {b:?}");
        }
        // Backward compensation grows with the amount of *completed* work
        // at fault time. A shallow peer (depth 1) completes last — its
        // fault fires after the whole subtree finished, so undo is
        // maximal; a leaf (depth = tree depth) fails early, before most
        // of the tree has done anything.
        let comp = |d: usize| {
            rows.iter().find(|r| r.style == "backward" && r.depth == 4 && r.fault_depth == d).unwrap().comp_nodes
        };
        assert!(comp(1) >= comp(4), "late (shallow) faults undo more: {} vs {}", comp(1), comp(4));
    }

    #[test]
    fn bench_entry_point() {
        assert!(bench_once(2, true));
        assert!(bench_once(2, false));
    }

    #[test]
    fn histograms_are_deterministic_and_populated() {
        let a = histograms();
        let b = histograms();
        assert_eq!(a, b, "traced replays must agree exactly");
        // The sweep commits (forward) and aborts (backward), so both the
        // commit-latency and abort-wave distributions must have samples.
        assert!(a["commit_latency"].count() > 0, "{a:?}");
        assert!(a["abort_drain"].count() > 0, "{a:?}");
        assert!(a["retransmits_per_delivery"].count() > 0, "{a:?}");
        // Tracing is observation only: the traced sweep's rows equal the
        // untraced ones (spot-check one configuration).
        let shape = TreeShape { depth: 3, fanout: 2 };
        let (traced_row, _) = measure_traced(shape, 2, false, 11, true);
        let plain = measure(shape, 2, false, 11);
        assert_eq!(format!("{traced_row:?}"), format!("{plain:?}"));
    }
}
