//! E1 — Fig. 1: the nested recovery protocol.
//!
//! Reproduces the paper's Fig. 1 scenario (AP5 fails while processing S5)
//! under every recovery variant and reports the message flows and costs.
//! The qualitative claims validated:
//!
//! - without handlers, the fault propagates backward to the origin and
//!   the whole transaction aborts (paper steps 1–4);
//! - a fault handler at an intermediate peer (AP3) absorbs the fault —
//!   forward recovery, "undo only as much as required";
//! - a replica of the failed peer lets forward recovery *redo* the
//!   service and commit;
//! - compensation always restores the pre-transaction state (relaxed
//!   atomicity).

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::PeerConfig;

use serde::Serialize;

use crate::table::Table;

/// One measured variant of the Fig. 1 scenario.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Did the transaction commit?
    pub committed: bool,
    /// Did the all-or-nothing check hold?
    pub atomic: bool,
    /// `invoke` messages.
    pub invokes: u64,
    /// Upward fault ("Abort TA" to the invoker) messages.
    pub faults: u64,
    /// Downward abort messages.
    pub aborts: u64,
    /// Peer-independent `compensate` messages.
    pub compensates: u64,
    /// Total nodes touched by compensation.
    pub comp_cost_nodes: u64,
    /// Logical time from submission to resolution.
    pub resolution_time: u64,
}

fn measure(variant: &str, mut builder: ScenarioBuilder) -> Row {
    builder.flavor = Flavor::Update;
    let mut s = builder.build();
    let report = s.run();
    let outcome = report.outcome.clone();
    Row {
        variant: variant.to_string(),
        committed: outcome.as_ref().map(|o| o.committed).unwrap_or(false),
        atomic: report.atomic,
        invokes: report.metrics.kind("invoke"),
        faults: report.metrics.kind("fault"),
        aborts: report.metrics.kind("abort"),
        compensates: report.metrics.kind("compensate"),
        comp_cost_nodes: report.stats.values().map(|s| s.comp_cost_nodes).sum(),
        resolution_time: outcome.map(|o| o.resolved_at - o.started_at).unwrap_or(report.finished_at),
    }
}

/// Runs every Fig. 1 variant.
pub fn run() -> Vec<Row> {
    let no_alt = || {
        let mut c = PeerConfig::default();
        c.use_alternative_providers = false;
        c
    };
    let mut rows = vec![
        measure("baseline (no fault)", ScenarioBuilder::fig1()),
        measure("fault@AP5, no handlers (backward to origin)", ScenarioBuilder::fig1().fault_at(5).config(no_alt())),
    ];
    rows.push(measure(
        "fault@AP5, substitute handler at AP3 (forward)",
        ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None).config(no_alt()),
    ));
    rows.push(measure(
        "fault@AP5, retry×2 at AP3 then backward",
        ScenarioBuilder::fig1().fault_at(5).retry_handler(3, 5, None, 2, 3).config(no_alt()),
    ));
    let (b, _replica) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
    rows.push(measure("fault@AP5, redo on replica (forward)", b));
    let mut pi = PeerConfig::default();
    pi.peer_independent = true;
    pi.use_alternative_providers = false;
    rows.push(measure("fault@AP5, peer-independent compensation", ScenarioBuilder::fig1().fault_at(5).config(pi)));
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E1 / Fig.1 — nested recovery protocol (AP1→{AP2,AP3}, AP3→{AP4,AP5}, AP5→AP6; AP5 fails in S5)",
        &["variant", "committed", "atomic", "invokes", "faults", "aborts", "compensates", "comp-nodes", "time"],
    );
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            r.committed.to_string(),
            r.atomic.to_string(),
            r.invokes.to_string(),
            r.faults.to_string(),
            r.aborts.to_string(),
            r.compensates.to_string(),
            r.comp_cost_nodes.to_string(),
            r.resolution_time.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: baseline commits with 0 aborts; unhandled fault aborts atomically with \
         faults climbing AP5→AP3→AP1; handlers/replica absorb the fault and commit; \
         peer-independent uses compensate messages instead of self-compensation",
    )
}

/// The scenario used by the Criterion bench (one full Fig. 1 run).
pub fn bench_once(fault: bool) -> bool {
    let b = if fault {
        let mut c = PeerConfig::default();
        c.use_alternative_providers = false;
        ScenarioBuilder::fig1().fault_at(5).config(c)
    } else {
        ScenarioBuilder::fig1()
    };
    let mut s = b.build();
    let report = s.run();
    report.atomic
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_p2p::PeerId;

    #[test]
    fn shapes_hold() {
        let rows = run();
        assert_eq!(rows.len(), 6);
        let by = |v: &str| rows.iter().find(|r| r.variant.contains(v)).unwrap();
        let baseline = by("baseline");
        assert!(baseline.committed && baseline.atomic && baseline.aborts == 0);
        let backward = by("no handlers");
        assert!(!backward.committed && backward.atomic);
        assert!(backward.faults >= 2, "fault climbed AP5→AP3→AP1");
        assert!(backward.comp_cost_nodes > 0);
        let substitute = by("substitute");
        assert!(substitute.committed, "forward recovery absorbs");
        let replica = by("replica");
        assert!(replica.committed);
        assert!(replica.invokes > baseline.invokes, "redo costs extra invocations");
        let pi = by("peer-independent");
        assert!(!pi.committed && pi.atomic && pi.compensates > 0);
    }

    #[test]
    fn bench_entry_points() {
        assert!(bench_once(false));
        assert!(bench_once(true));
    }

    #[test]
    fn fig1_message_sequence_follows_paper_steps() {
        // §3.2 steps 1–4 message accounting: AP5 sends abort down (AP6)
        // and up (AP3); AP3, lacking handlers, does the same (down: AP4;
        // up: AP1); AP1 aborts the whole transaction (down: AP2, AP3).
        let mut c = PeerConfig::default();
        c.use_alternative_providers = false;
        let mut s = ScenarioBuilder::fig1().fault_at(5).config(c).build();
        let report = s.run();
        // Upward aborts (fault messages): AP5→AP3 and AP3→AP1.
        assert_eq!(report.metrics.kind("fault"), 2);
        let ap5 = &report.stats[&PeerId(5)];
        assert_eq!(ap5.faults_raised, 1);
        let ap6 = &report.stats[&PeerId(6)];
        assert_eq!(ap6.aborts_received, 1, "step 2: AP6 aborts TCA6");
        let ap4 = &report.stats[&PeerId(4)];
        assert!(ap4.aborts_received >= 1, "step 4: AP3 aborts AP4's branch");
        let ap2 = &report.stats[&PeerId(2)];
        assert!(ap2.aborts_received >= 1, "origin aborts AP2's branch");
    }
}
