//! E12 — chaos-sweep throughput, serial vs parallel (extension).
//!
//! Runs the full `axml-chaos` matrix (5 scenarios × 5 fault profiles ×
//! 16 seeds = 400 cases, the default `sweep` workload) once on a single
//! worker and once sharded across `jobs` workers, and reports cases/sec
//! plus the sweep digest of each run. The digests MUST match: the
//! parallel runner merges per-case results in canonical case order, so
//! worker count is a pure throughput knob, never a results knob —
//! `bench-check` fails the report if the two digests differ.

use axml_chaos::{sweep_jobs, Profile, SweepOutcome, SCENARIOS};
use serde::Serialize;

use crate::table::Table;

/// Seeds per (scenario, profile) cell — 5 × 5 × 16 = 400 cases.
pub const SEEDS: u64 = 16;

/// One timed sweep of the full matrix.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Worker threads the sweep was sharded across.
    pub jobs: usize,
    /// Cases run (scenario × profile × seed).
    pub runs: usize,
    /// Cases whose transaction committed.
    pub committed: usize,
    /// Cases whose transaction aborted cleanly.
    pub aborted: usize,
    /// Oracle violations (expected 0 with dedup on).
    pub violations: usize,
    /// Sweep digest (FNV over per-case digests in canonical order).
    pub digest: String,
    /// Wall-clock time for the whole matrix, microseconds.
    pub wall_us: u64,
    /// Throughput: cases per second.
    pub cases_per_sec: f64,
}

fn timed(jobs: usize) -> (Row, SweepOutcome) {
    let scenarios: Vec<String> = SCENARIOS.iter().map(|s| s.to_string()).collect();
    let t0 = std::time::Instant::now();
    let out = sweep_jobs(&scenarios, Profile::all(), 0..SEEDS, true, jobs);
    let wall_us = t0.elapsed().as_micros() as u64;
    let row = Row {
        jobs,
        runs: out.runs,
        committed: out.committed,
        aborted: out.aborted,
        violations: out.violations.len(),
        digest: format!("{:016x}", out.digest),
        wall_us,
        cases_per_sec: out.runs as f64 / (wall_us.max(1) as f64 / 1e6),
    };
    (row, out)
}

/// Runs the matrix serially, then sharded across `jobs` workers.
pub fn run(jobs: usize) -> Vec<Row> {
    let (serial, _) = timed(1);
    let (parallel, _) = timed(jobs.max(1));
    vec![serial, parallel]
}

/// Like [`run`], but also hands back the parallel run's merged
/// histograms and snapshot for the Prometheus exposition.
pub fn run_with_outcome(jobs: usize) -> (Vec<Row>, SweepOutcome) {
    let (serial, _) = timed(1);
    let (parallel, out) = timed(jobs.max(1));
    (vec![serial, parallel], out)
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E12 — chaos-sweep throughput, serial vs parallel (400-case matrix)",
        &["jobs", "runs", "committed", "aborted", "violations", "digest", "wall-us", "cases/sec"],
    );
    for r in rows {
        t.row(vec![
            r.jobs.to_string(),
            r.runs.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.violations.to_string(),
            r.digest.clone(),
            r.wall_us.to_string(),
            format!("{:.0}", r.cases_per_sec),
        ]);
    }
    t.with_note(
        "expected shape: identical digests (and identical runs/committed/aborted) on every row — \
         the parallel runner merges in canonical case order, so jobs only changes wall time; \
         speedup approaches the worker count on multi-core hosts and is ~1x when only one \
         hardware thread is available",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_rows_agree_on_everything_but_time() {
        let rows = run(4);
        assert_eq!(rows.len(), 2);
        let (s, p) = (&rows[0], &rows[1]);
        assert_eq!(s.jobs, 1);
        assert_eq!(p.jobs, 4);
        assert_eq!(s.runs, SCENARIOS.len() * Profile::all().len() * SEEDS as usize);
        assert_eq!(s.digest, p.digest, "jobs is a throughput knob, not a results knob");
        assert_eq!((s.runs, s.committed, s.aborted, s.violations), (p.runs, p.committed, p.aborted, p.violations));
        assert_eq!(s.violations, 0, "dedup-on matrix is clean");
        assert!(s.cases_per_sec > 0.0 && p.cases_per_sec > 0.0);
    }
}
