//! E6 — chaining under churn.
//!
//! Runs transactions over larger invocation trees while peers disconnect
//! according to seeded churn traces, with chaining on vs off, sweeping the
//! churn probability. Measured: completion rate, wasted/reused work, mean
//! detection latency, messages. Claim validated: chaining's benefit grows
//! with churn.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::PeerConfig;

use axml_workload::{tree_edges, TreeShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::table::Table;

/// One measured configuration (aggregated over seeds).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Probability each non-origin peer disconnects mid-run.
    pub p_disconnect: f64,
    /// Chaining enabled?
    pub chaining: bool,
    /// Trials run.
    pub trials: usize,
    /// Fraction of transactions that committed.
    pub commit_rate: f64,
    /// Fraction that resolved (committed or aborted) by the deadline.
    pub resolve_rate: f64,
    /// Fraction of resolved runs that preserved all-or-nothing.
    pub atomic_rate: f64,
    /// Mean wasted work units per run.
    pub wasted: f64,
    /// Mean reused work units per run.
    pub reused: f64,
    /// Mean orphan stops per run.
    pub orphan_stops: f64,
    /// Mean messages per run.
    pub messages: f64,
}

fn one(seed: u64, p_disconnect: f64, chaining: bool) -> (bool, bool, bool, u64, u64, u64, u64) {
    let shape = TreeShape { depth: 3, fanout: 2 }; // 15 peers
    let edges = tree_edges(1, shape);
    let mut config = PeerConfig::default();
    config.chaining = chaining;
    // Pings are the slow fallback detector; the chaining paths (send
    // failures, redirects, notices) race ahead of them.
    config.ping_interval = 40;
    config.ping_timeout = 90;
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).config(config);
    builder.seed = seed;
    builder.supers = vec![1];
    // Long-running services keep the tree busy through the churn window.
    for peer in std::iter::once(1u32).chain(edges.iter().map(|(_, c)| *c)) {
        builder.durations.insert(peer, 30);
    }
    // Every non-origin peer gets a replica candidate? Replicate a random
    // third of the peers so forward recovery has somewhere to go.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
    let peers: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
    for &p in &peers {
        if rng.gen_bool(0.34) {
            let (b, _r) = builder.with_replica(p);
            builder = b;
        }
    }
    // Churn: each non-origin peer may disconnect once, at a random time
    // inside the busy window.
    for &p in &peers {
        if rng.gen_bool(p_disconnect) {
            let at = rng.gen_range(10..120);
            builder = builder.disconnect(at, p);
        }
    }
    builder.deadline = 5_000;
    let mut s = builder.build();
    let report = s.run();
    let resolved = report.outcome.is_some();
    let committed = report.outcome.as_ref().map(|o| o.committed).unwrap_or(false);
    let wasted: u64 = report.stats.values().map(|s| s.work_wasted).sum();
    let reused: u64 = report.stats.values().map(|s| s.work_reused).sum();
    let orphan: u64 = report.stats.values().map(|s| s.orphan_stops).sum();
    (resolved, committed, report.atomic, wasted, reused, orphan, report.metrics.sent)
}

/// The churn probabilities E6 sweeps.
const CHURN: &[f64] = &[0.0, 0.1, 0.25, 0.5];

/// Runs the sweep.
pub fn run(trials: usize) -> Vec<Row> {
    run_jobs(trials, 1)
}

/// Runs the sweep with every `(p, chaining, trial)` sim sharded across
/// `jobs` workers. Each trial is an independent seeded sim; the fold
/// back into per-configuration rows walks trials in canonical order, so
/// the rows are byte-identical to the serial run for every jobs value.
pub fn run_jobs(trials: usize, jobs: usize) -> Vec<Row> {
    let mut cases = Vec::new();
    for &p in CHURN {
        for chaining in [true, false] {
            for t in 0..trials {
                let seed = t as u64 * 6151 + (p * 1000.0) as u64;
                cases.push((seed, p, chaining));
            }
        }
    }
    let outcomes = axml_chaos::par_map(&cases, jobs, |_, &(seed, p, chaining)| one(seed, p, chaining));

    let mut rows = Vec::new();
    let mut next = outcomes.into_iter();
    for &p in CHURN {
        for chaining in [true, false] {
            let mut resolved = 0usize;
            let mut committed = 0usize;
            let mut atomic = 0usize;
            let mut wasted = 0u64;
            let mut reused = 0u64;
            let mut orphan = 0u64;
            let mut messages = 0u64;
            for _ in 0..trials {
                let (r, c, a, w, re, o, m) = next.next().expect("one outcome per case");
                resolved += r as usize;
                committed += c as usize;
                atomic += (r && a) as usize;
                wasted += w;
                reused += re;
                orphan += o;
                messages += m;
            }
            let n = trials.max(1) as f64;
            rows.push(Row {
                p_disconnect: p,
                chaining,
                trials,
                commit_rate: committed as f64 / n,
                resolve_rate: resolved as f64 / n,
                atomic_rate: if resolved > 0 { atomic as f64 / resolved as f64 } else { 0.0 },
                wasted: wasted as f64 / n,
                reused: reused as f64 / n,
                orphan_stops: orphan as f64 / n,
                messages: messages as f64 / n,
            });
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E6 — chaining under churn (15-peer tree, depth 3, fanout 2)",
        &["p-disc", "chaining", "trials", "commit", "resolve", "atomic", "wasted", "reused", "orphan-stops", "msgs"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.p_disconnect),
            r.chaining.to_string(),
            r.trials.to_string(),
            format!("{:.2}", r.commit_rate),
            format!("{:.2}", r.resolve_rate),
            format!("{:.2}", r.atomic_rate),
            format!("{:.1}", r.wasted),
            format!("{:.1}", r.reused),
            format!("{:.1}", r.orphan_stops),
            format!("{:.0}", r.messages),
        ]);
    }
    t.with_note(
        "expected shape: at p=0 both modes commit everything; as churn rises, chaining \
         reuses/salvages work (reused, orphan-stops > 0) and sustains a higher commit rate; \
         the gap grows with churn",
    )
}

/// One churn run for the Criterion bench.
pub fn bench_once(chaining: bool) -> bool {
    one(5, 0.25, chaining).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_churn_always_commits() {
        let rows = run(4);
        for r in rows.iter().filter(|r| r.p_disconnect == 0.0) {
            assert_eq!(r.commit_rate, 1.0, "{r:?}");
            assert_eq!(r.atomic_rate, 1.0, "{r:?}");
        }
    }

    #[test]
    fn chaining_salvages_work_under_churn() {
        let rows = run(8);
        let get = |p: f64, chaining: bool| rows.iter().find(|r| r.p_disconnect == p && r.chaining == chaining).unwrap();
        let hi_on = get(0.5, true);
        let hi_off = get(0.5, false);
        assert!(
            hi_on.reused + hi_on.orphan_stops > hi_off.reused + hi_off.orphan_stops,
            "chaining salvages work: on={:?} off={:?}",
            (hi_on.reused, hi_on.orphan_stops),
            (hi_off.reused, hi_off.orphan_stops)
        );
        assert!(hi_on.commit_rate >= hi_off.commit_rate, "chaining never hurts the commit rate");
    }

    #[test]
    fn deterministic() {
        let a = run(3);
        let b = run(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }
}
