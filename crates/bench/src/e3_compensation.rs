//! E3 — dynamic (log-based) vs static (pre-declared) compensation.
//!
//! The paper's central §3.1 argument: "the data (nodes) required for
//! compensation cannot be predicted in advance and would need to be read
//! from the log at run-time". We apply random operation sequences to
//! random documents and compensate them two ways:
//!
//! - **dynamic**: invert the logged effects in reverse order;
//! - **static**: inverses pre-computed once against the *initial*
//!   document (no run-time knowledge), the classical model.
//!
//! Measured: exact (ordered) and unordered restoration rates, skipped
//! operations, nodes touched, and log size. Expected shape: dynamic is
//! always exact; static degrades with sequence length and document churn.

use axml_core::compensate::{apply_compensation, compensation_for_effects};
use axml_query::{ActionType, Effect, InsertPos, Locator, UpdateAction};
use axml_workload::{random_ops, random_plain_doc, DocParams, OpMix};
use axml_xml::{equivalent_ordered, equivalent_unordered, Document};
use serde::Serialize;

use crate::table::Table;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Document size (element nodes).
    pub doc_nodes: usize,
    /// Operations per sequence.
    pub ops: usize,
    /// `dynamic` or `static`.
    pub mode: String,
    /// Fraction of trials restoring the exact (ordered) state.
    pub exact_rate: f64,
    /// Fraction restoring up to sibling order.
    pub unordered_rate: f64,
    /// Mean operations without a usable inverse (static under-compensation).
    pub missing_per_trial: f64,
    /// Mean nodes touched by compensation.
    pub comp_nodes: f64,
    /// Mean log size in bytes (serialized effects; dynamic only).
    pub log_bytes: f64,
}

fn effects_log_bytes(effects: &[Effect]) -> usize {
    effects
        .iter()
        .map(|e| match e {
            Effect::Inserted { fragment, path, .. } => fragment.to_xml().len() + path.to_string().len(),
            Effect::Deleted { fragment, parent_path, .. } => fragment.to_xml().len() + parent_path.to_string().len(),
        })
        .sum()
}

/// Pre-computes a static inverse for `op` against the pristine `initial`
/// document — what a designer could declare before run time.
fn static_inverse(op: &UpdateAction, initial: &Document) -> Option<Vec<UpdateAction>> {
    match op.ty {
        ActionType::Query => Some(vec![]), // classical assumption: queries need no compensation
        ActionType::Insert => {
            // "Delete what the insert will add" — expressible only as a
            // location query guess; we delete by the data's element name
            // under the same location.
            let name = op.data.first().and_then(|f| f.name().cloned())?;
            let loc = match &op.location {
                Locator::Path(p) => {
                    let mut p2 = p.clone();
                    p2.steps.push(axml_query::Step::child(name));
                    Locator::Path(p2)
                }
                other => other.clone(),
            };
            let mut del = UpdateAction::delete(loc);
            del.allow_empty_location = true;
            Some(vec![del])
        }
        ActionType::Delete => {
            // Re-insert the data as selected on the INITIAL document.
            let mut probe = op.clone();
            probe.allow_empty_location = true;
            let targets = probe.location.locate(initial).ok()?;
            let mut inserts = Vec::new();
            for t in targets {
                let parent = initial.parent(t).ok().flatten()?;
                let frag = initial.extract_fragment(t).ok()?;
                let parent_path = axml_query::NodePath::of(initial, parent).ok()?;
                let mut ins = UpdateAction::insert_at(Locator::Node(parent_path), vec![frag], InsertPos::LastChild);
                ins.allow_empty_location = true;
                inserts.push(ins);
            }
            Some(inserts)
        }
        ActionType::Replace => {
            // Replace back with the INITIAL value.
            let mut probe = op.clone();
            probe.allow_empty_location = true;
            let targets = probe.location.locate(initial).ok()?;
            let mut replaces = Vec::new();
            for t in targets {
                let frag = initial.extract_fragment(t).ok()?;
                let mut rep = UpdateAction::replace(op.location.clone(), vec![frag]);
                rep.allow_empty_location = true;
                replaces.push(rep);
            }
            Some(replaces)
        }
    }
}

/// Runs one trial; returns `(exact, unordered, missing, comp_nodes,
/// log_bytes)`.
fn trial(seed: u64, doc_nodes: usize, ops_count: usize, dynamic: bool) -> (bool, bool, usize, usize, usize) {
    let params = DocParams { nodes: doc_nodes, ..Default::default() };
    let initial = random_plain_doc(seed, &params);
    let ops = random_ops(seed ^ 0xface, &initial, OpMix::default(), ops_count);
    let mut doc = initial.clone();

    if dynamic {
        let mut all_effects = Vec::new();
        for op in &ops {
            let mut tolerant = op.clone();
            tolerant.allow_empty_location = true;
            if let Ok(report) = tolerant.apply(&mut doc) {
                all_effects.extend(report.effects);
            }
        }
        let log_bytes = effects_log_bytes(&all_effects);
        let comp = compensation_for_effects(&all_effects);
        let comp_nodes = apply_compensation(&mut doc, &comp).unwrap_or(0);
        (equivalent_ordered(&doc, &initial), equivalent_unordered(&doc, &initial), 0, comp_nodes, log_bytes)
    } else {
        // Static: inverses pinned to the initial state, applied in reverse.
        let inverses: Vec<Option<Vec<UpdateAction>>> = ops.iter().map(|op| static_inverse(op, &initial)).collect();
        for op in &ops {
            let mut tolerant = op.clone();
            tolerant.allow_empty_location = true;
            let _ = tolerant.apply(&mut doc);
        }
        let mut missing = 0usize;
        let mut comp_nodes = 0usize;
        for inv in inverses.iter().rev() {
            match inv {
                None => missing += 1,
                Some(actions) => {
                    for a in actions {
                        if let Ok(r) = a.apply(&mut doc) {
                            comp_nodes += r.cost_nodes;
                        }
                    }
                }
            }
        }
        (equivalent_ordered(&doc, &initial), equivalent_unordered(&doc, &initial), missing, comp_nodes, 0)
    }
}

/// Runs the default sweep: document sizes × sequence lengths × modes.
pub fn run(trials: usize) -> Vec<Row> {
    run_with(&[50, 200, 1000], &[5, 20, 50], trials)
}

/// Runs a custom sweep (tests use a trimmed one to stay fast).
pub fn run_with(sizes: &[usize], ops: &[usize], trials: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &doc_nodes in sizes {
        for &ops_count in ops {
            for dynamic in [true, false] {
                let mut exact = 0usize;
                let mut unordered = 0usize;
                let mut missing = 0usize;
                let mut comp_nodes = 0usize;
                let mut log_bytes = 0usize;
                for t in 0..trials {
                    let seed = (t as u64) * 7919 + doc_nodes as u64 + ops_count as u64;
                    let (e, u, m, c, l) = trial(seed, doc_nodes, ops_count, dynamic);
                    exact += e as usize;
                    unordered += u as usize;
                    missing += m;
                    comp_nodes += c;
                    log_bytes += l;
                }
                let n = trials.max(1) as f64;
                rows.push(Row {
                    doc_nodes,
                    ops: ops_count,
                    mode: if dynamic { "dynamic".into() } else { "static".into() },
                    exact_rate: exact as f64 / n,
                    unordered_rate: unordered as f64 / n,
                    missing_per_trial: missing as f64 / n,
                    comp_nodes: comp_nodes as f64 / n,
                    log_bytes: log_bytes as f64 / n,
                });
            }
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E3 — dynamic (log-based) vs static (pre-declared) compensation",
        &["doc-nodes", "ops", "mode", "exact", "unordered", "missing/trial", "comp-nodes", "log-bytes"],
    );
    for r in rows {
        t.row(vec![
            r.doc_nodes.to_string(),
            r.ops.to_string(),
            r.mode.clone(),
            format!("{:.2}", r.exact_rate),
            format!("{:.2}", r.unordered_rate),
            format!("{:.1}", r.missing_per_trial),
            format!("{:.1}", r.comp_nodes),
            format!("{:.0}", r.log_bytes),
        ]);
    }
    t.with_note(
        "expected shape: dynamic restores exactly (rate 1.0) at modest log cost; \
         static degrades as sequences grow (stale inverses, position loss) and cannot be exact",
    )
}

/// One dynamic round-trip for the Criterion bench.
pub fn bench_once(doc_nodes: usize, ops_count: usize) -> bool {
    trial(42, doc_nodes, ops_count, true).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_always_exact() {
        let rows = run_with(&[50, 200], &[5, 20, 50], 5);
        for r in rows.iter().filter(|r| r.mode == "dynamic") {
            assert_eq!(r.exact_rate, 1.0, "dynamic must be exact: {r:?}");
            assert!(r.log_bytes >= 0.0);
        }
    }

    #[test]
    fn static_degrades_with_sequence_length() {
        let rows = run_with(&[50, 200], &[5, 20, 50], 8);
        let rate = |ops: usize| {
            let sel: Vec<&Row> = rows.iter().filter(|r| r.mode == "static" && r.ops == ops).collect();
            sel.iter().map(|r| r.exact_rate).sum::<f64>() / sel.len() as f64
        };
        assert!(rate(50) < 1.0, "static cannot stay exact over 50 ops: {}", rate(50));
        assert!(rate(5) >= rate(50), "longer sequences hurt static more");
        // Dynamic beats static overall.
        let n = (rows.len() / 2) as f64;
        let dyn_avg: f64 = rows.iter().filter(|r| r.mode == "dynamic").map(|r| r.exact_rate).sum::<f64>() / n;
        let stat_avg: f64 = rows.iter().filter(|r| r.mode == "static").map(|r| r.exact_rate).sum::<f64>() / n;
        assert!(dyn_avg > stat_avg);
    }

    #[test]
    fn trial_is_deterministic() {
        assert_eq!(trial(3, 100, 10, true), trial(3, 100, 10, true));
        assert_eq!(trial(3, 100, 10, false), trial(3, 100, 10, false));
    }

    #[test]
    fn bench_entry_point() {
        assert!(bench_once(100, 10));
    }
}
