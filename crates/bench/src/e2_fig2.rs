//! E2 — Fig. 2: the four peer-disconnection scenarios, with and without
//! chaining.
//!
//! Topology `[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]`. For each of the
//! paper's cases (a)–(d) we measure who detects the disconnection, how,
//! how fast, and how much work is wasted vs reused — chaining on vs off.
//! Claim validated: chaining reduces detection latency and wasted work in
//! (b)–(d) and is neutral in (a).

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::{DetectHow, PeerConfig};
use axml_p2p::PeerId;
use serde::Serialize;

use crate::table::Table;

/// One measured disconnection case.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Scenario label, e.g. `b: parent, detected by child`.
    pub scenario: String,
    /// Chaining enabled?
    pub chaining: bool,
    /// Which peer detected the disconnection first.
    pub detector: String,
    /// Detection mechanism.
    pub how: String,
    /// Disconnect time → first detection.
    pub detect_latency: u64,
    /// Disconnect time → transaction resolution.
    pub resolve_latency: u64,
    /// Completed work discarded.
    pub work_wasted: u64,
    /// Results reused via chaining.
    pub work_reused: u64,
    /// Servings stopped early thanks to notices.
    pub orphan_stops: u64,
    /// Did the transaction commit in the end?
    pub committed: bool,
    /// All-or-nothing outcome held (connected peers)?
    pub atomic: bool,
}

fn config(chaining: bool, streams: bool) -> PeerConfig {
    let mut c = PeerConfig::default();
    c.chaining = chaining;
    if streams {
        c.stream_interval = Some(7);
        c.ping_interval = 400;
        c.ping_timeout = 900;
    } else {
        // Slow pings so chaining-specific detection (send failures,
        // notices) is visible against the keep-alive baseline.
        c.ping_interval = 300;
        c.ping_timeout = 700;
    }
    c
}

fn how_str(h: DetectHow) -> &'static str {
    match h {
        DetectHow::SendFailure => "send-failure",
        DetectHow::PingTimeout => "ping",
        DetectHow::StreamSilence => "stream-silence",
        DetectHow::Notice => "notice",
        DetectHow::AckTimeout => "ack-timeout",
    }
}

fn measure(scenario: &str, chaining: bool, builder: ScenarioBuilder, disconnect_at: u64) -> Row {
    let mut s = builder.build();
    let report = s.run();
    let first = report
        .stats
        .iter()
        .flat_map(|(p, st)| st.detections.iter().map(move |d| (*p, d.clone())))
        .filter(|(_, d)| d.disconnected == PeerId(3) || d.disconnected == PeerId(6))
        .min_by_key(|(_, d)| d.at);
    let (detector, how, detect_at) = match &first {
        Some((p, d)) => (p.to_string(), how_str(d.how).to_string(), d.at),
        None => ("-".into(), "-".into(), report.finished_at),
    };
    Row {
        scenario: scenario.to_string(),
        chaining,
        detector,
        how,
        detect_latency: detect_at.saturating_sub(disconnect_at),
        resolve_latency: report
            .outcome
            .as_ref()
            .map(|o| o.resolved_at.saturating_sub(disconnect_at))
            .unwrap_or_else(|| report.finished_at.saturating_sub(disconnect_at)),
        work_wasted: report.stats.values().map(|s| s.work_wasted).sum(),
        work_reused: report.stats.values().map(|s| s.work_reused).sum(),
        orphan_stops: report.stats.values().map(|s| s.orphan_stops).sum(),
        committed: report.outcome.as_ref().map(|o| o.committed).unwrap_or(false),
        atomic: report.atomic,
    }
}

fn fig2(durations: &[(u32, u64)]) -> ScenarioBuilder {
    let mut b = ScenarioBuilder::fig2();
    b.flavor = Flavor::Update;
    for (p, d) in durations {
        b.durations.insert(*p, *d);
    }
    b
}

/// Runs all four scenarios × chaining on/off.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for chaining in [true, false] {
        // (a) leaf AP6 dies mid-work; parent AP3 must detect. Use normal
        // pings: this case has no chaining-specific path.
        {
            let mut c = config(chaining, false);
            c.ping_interval = 10;
            c.ping_timeout = 25;
            c.use_alternative_providers = false;
            let b = fig2(&[(6, 500)]).disconnect(40, 6).config(c);
            rows.push(measure("a: leaf, detected by parent", chaining, b, 40));
        }
        // (b) parent AP3 dies while child AP6 works; replica of AP3
        // available for forward recovery.
        {
            let c = config(chaining, false);
            let (b, _replica) = fig2(&[(6, 60)]).with_replica(3);
            let b = b.disconnect(30, 3).config(c);
            rows.push(measure("b: parent, detected by child", chaining, b, 30));
        }
        // (c) child AP3 dies; parent AP2 detects via pings and (with
        // chaining) warns AP3's descendants.
        {
            let mut c = config(chaining, false);
            c.ping_interval = 10;
            c.ping_timeout = 25;
            c.use_alternative_providers = false;
            let b = fig2(&[(6, 2000), (3, 3000)]).disconnect(50, 3).config(c);
            rows.push(measure("c: child, detected by parent", chaining, b, 50));
        }
        // (d) sibling AP4 detects AP3 via missed stream intervals.
        {
            let mut c = config(chaining, true);
            c.use_alternative_providers = false;
            let b = fig2(&[(3, 3000), (4, 3000), (5, 50), (6, 50)]).disconnect(60, 3).config(c);
            rows.push(measure("d: sibling, via streams", chaining, b, 60));
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E2 / Fig.2 — disconnection scenarios [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]",
        &[
            "scenario",
            "chaining",
            "detector",
            "how",
            "t-detect",
            "t-resolve",
            "wasted",
            "reused",
            "orphan-stops",
            "committed",
            "atomic",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scenario.clone(),
            r.chaining.to_string(),
            r.detector.clone(),
            r.how.clone(),
            r.detect_latency.to_string(),
            r.resolve_latency.to_string(),
            r.work_wasted.to_string(),
            r.work_reused.to_string(),
            r.orphan_stops.to_string(),
            r.committed.to_string(),
            r.atomic.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: chaining reuses work and detects faster in (b) (send-failure beats pings), \
         stops orphans early in (c), and enables stream-based sibling detection in (d); \
         scenario (a) is unaffected by chaining",
    )
}

/// One (b)-scenario run for the Criterion bench.
pub fn bench_once(chaining: bool) -> u64 {
    let c = config(chaining, false);
    let (b, _replica) = fig2(&[(6, 60)]).with_replica(3);
    let mut s = b.disconnect(30, 3).config(c).build();
    let report = s.run();
    report.finished_at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let rows = run();
        assert_eq!(rows.len(), 8);
        let find = |scenario: &str, chaining: bool| {
            rows.iter().find(|r| r.scenario.starts_with(scenario) && r.chaining == chaining).unwrap()
        };
        // (a): chaining-neutral — same detector and mechanism.
        assert_eq!(find("a:", true).how, "ping");
        assert_eq!(find("a:", false).how, "ping");
        // (b): chaining reuses AP6's work and detects via send failure.
        let b_on = find("b:", true);
        let b_off = find("b:", false);
        assert_eq!(b_on.how, "send-failure");
        assert!(b_on.work_reused >= 1);
        assert_eq!(b_off.work_reused, 0);
        assert!(
            b_on.detect_latency < b_off.detect_latency,
            "chaining detects faster: {} vs {}",
            b_on.detect_latency,
            b_off.detect_latency
        );
        assert!(b_on.resolve_latency < b_off.resolve_latency);
        // (c): chaining stops orphans.
        assert!(find("c:", true).orphan_stops >= 1);
        assert_eq!(find("c:", false).orphan_stops, 0);
        // (d): stream detection only works when streams know the chain.
        let d_on = find("d:", true);
        assert!(d_on.how == "stream-silence" || d_on.how == "send-failure");
    }

    #[test]
    fn bench_entry_point() {
        assert!(bench_once(true) > 0);
    }
}
