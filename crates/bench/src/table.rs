//! Minimal aligned-table printing for experiment output.

/// A text table with a title, aligned columns, and an optional note.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Experiment title, printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form note printed under the table (the "expected shape").
    pub note: String,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Sets the trailing note.
    pub fn with_note(mut self, note: impl Into<String>) -> Table {
        self.note = note.into();
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(widths.len()) {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "longer"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "a     longer");
        assert_eq!(lines[3], "xxxx  1");
        assert_eq!(lines[4], "y     22");
    }

    #[test]
    fn note_printed() {
        let t = Table::new("t", &["c"]).with_note("hello");
        assert!(t.render().contains("note: hello"));
    }
}
