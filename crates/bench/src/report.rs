//! Machine-readable experiment reports (`BENCH_<id>.json`).
//!
//! The `experiments` binary drops one report file per experiment it runs,
//! next to the human-readable table. CI's bench-smoke job parses them
//! back (see the `bench-check` binary) and archives them as artifacts, so
//! every run of the harness leaves a comparable, plottable record.

use axml_obs::HistogramSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One experiment's run record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Experiment id (`e1` … `e11`).
    pub experiment: String,
    /// Run parameters (rounds, seeds, …) as printable strings.
    pub params: BTreeMap<String, String>,
    /// Number of result rows the experiment produced.
    pub rows: u64,
    /// FNV-1a digest of the serialized rows — equal digests ⇔ equal
    /// results, so regressions show up as a one-line diff.
    pub rows_digest: u64,
    /// Wall-clock duration of the run in microseconds.
    pub wall_time_us: u64,
    /// Latency histogram summaries (metric → fixed-point summary) for
    /// experiments that run traced; `None` for the rest, and absent in
    /// pre-histogram reports (the field parses as `None` there).
    pub histograms: Option<BTreeMap<String, HistogramSummary>>,
}

impl BenchReport {
    /// Builds a report from a finished run.
    pub fn from_run(
        experiment: &str,
        params: &[(&str, &str)],
        rows: usize,
        rows_json: &str,
        wall_time_us: u64,
    ) -> BenchReport {
        BenchReport {
            experiment: experiment.to_string(),
            params: params.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            rows: rows as u64,
            rows_digest: fnv64(rows_json),
            wall_time_us,
            histograms: None,
        }
    }

    /// The file this report is written to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report is serializable")
    }

    /// Parses a report back, or explains why the text is not one.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }
}

/// FNV-1a over a string (the workspace's standard content digest).
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let r = BenchReport::from_run("e3", &[("rounds", "10")], 4, r#"[{"x":1}]"#, 1234);
        assert_eq!(r.file_name(), "BENCH_e3.json");
        let back = BenchReport::parse(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.params["rounds"], "10");
        assert_eq!(back.rows, 4);
    }

    #[test]
    fn histograms_are_optional_and_round_trip() {
        // Pre-histogram reports (no `histograms` key) still parse.
        let legacy = r#"{"experiment":"e1","params":{},"rows":1,"rows_digest":2,"wall_time_us":3}"#;
        let r = BenchReport::parse(legacy).expect("legacy reports parse");
        assert_eq!(r.histograms, None);
        // And an embedded summary survives the round trip.
        let mut h = axml_obs::Histogram::default();
        h.observe(12);
        let mut with = BenchReport::from_run("e5", &[], 1, "[1]", 9);
        with.histograms = Some([("commit_latency".to_string(), h.summary())].into_iter().collect());
        let back = BenchReport::parse(&with.to_json()).expect("parses");
        assert_eq!(back, with);
        assert_eq!(back.histograms.unwrap()["commit_latency"].count, 1);
    }

    #[test]
    fn digest_distinguishes_results() {
        let a = BenchReport::from_run("e1", &[], 1, "[1]", 0);
        let b = BenchReport::from_run("e1", &[], 1, "[2]", 0);
        assert_ne!(a.rows_digest, b.rows_digest);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse(r#"{"experiment": 3}"#).is_err());
    }
}
