//! E7 — peer-independent vs peer-dependent compensation under
//! disconnection.
//!
//! The scenario the paper motivates §3.2's variant with: a participant
//! completes its work and then disconnects *before the abort decision
//! reaches it*. Peer-dependent compensation loses the `Abort` (the
//! original peer must compensate itself, but it is gone); the
//! peer-independent recovering peer holds the compensating-service
//! definition and — because actions address nodes structurally — can run
//! it on a **replica** of the document.
//!
//! Setup: Fig. 1 tree; AP3's subtree (S5/S6 under it) completes quickly;
//! AP2's long-running S2 then faults, aborting the transaction; AP5
//! disconnects after finishing but before the abort propagates. Measured:
//! whether a connected copy of AP5's document ends in the compensated
//! state. Sweep: disconnect probability × replica availability.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::PeerConfig;
use axml_p2p::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::table::Table;

/// One measured configuration (aggregated).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Probability the completed participant disconnects before the abort.
    pub p_disconnect: f64,
    /// Replica of the participant's document available?
    pub replica: bool,
    /// Peer-independent mode?
    pub peer_independent: bool,
    /// Trials.
    pub trials: usize,
    /// Fraction of runs where a *connected* copy of the participant's
    /// document ended in the compensated (baseline) state.
    pub comp_success: f64,
}

/// Runs one trial. Returns true if some connected copy of d5 is
/// compensated at the end.
fn one(seed: u64, disconnect: bool, replica: bool, peer_independent: bool) -> bool {
    let mut config = PeerConfig::default();
    config.peer_independent = peer_independent;
    config.use_alternative_providers = false;
    let mut builder = ScenarioBuilder::fig1().flavor(Flavor::Update).fault_at(2).config(config);
    builder.seed = seed;
    // S2 is slow; AP3's subtree completes long before the fault fires.
    builder.durations.insert(2, 400);
    for p in [3u32, 4, 5, 6] {
        builder.durations.insert(p, 5);
    }
    let replica_peer = if replica {
        let (b, r) = builder.with_replica(5);
        builder = b;
        Some(r)
    } else {
        None
    };
    if disconnect {
        // After S5 completed (~t≈60 with the short durations) but before
        // S2's fault at ~t≈420.
        builder = builder.disconnect(200, 5);
    }
    let mut s = builder.build();
    let report = s.run();
    assert!(!report.outcome.map(|o| o.committed).unwrap_or(true), "the injected S2 fault must abort the transaction");
    // Success = the compensation for S5's work *executed on a reachable
    // holder of d5*: either AP5 itself (still connected, doc back to its
    // initial state) or — peer-independent only — the replica executed
    // the shipped compensating service. A disconnected AP5 with a lost
    // `Abort` means the compensation never ran anywhere.
    if s.sim.is_connected(PeerId(5)) {
        let d5 = s.sim.actor(PeerId(5)).repo.get("d5").expect("AP5 hosts d5").to_xml();
        return d5.contains("initial-5") && !d5.contains("done-5");
    }
    match replica_peer {
        None => false,
        Some(r) => {
            let rep = s.sim.actor(PeerId(r));
            s.sim.is_connected(PeerId(r)) && rep.stats.compensations_executed > 0
        }
    }
}

/// Runs the sweep.
pub fn run(trials: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p_disconnect in &[0.0f64, 0.5, 1.0] {
        for replica in [false, true] {
            for peer_independent in [false, true] {
                let mut success = 0usize;
                let mut rng = StdRng::seed_from_u64(7 + (p_disconnect * 100.0) as u64);
                for t in 0..trials {
                    let disconnect = rng.gen_bool(p_disconnect);
                    if one(t as u64 * 31 + 1, disconnect, replica, peer_independent) {
                        success += 1;
                    }
                }
                rows.push(Row {
                    p_disconnect,
                    replica,
                    peer_independent,
                    trials,
                    comp_success: success as f64 / trials.max(1) as f64,
                });
            }
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E7 — peer-independent vs peer-dependent compensation under disconnection",
        &["p-disc", "replica", "peer-indep", "trials", "comp-success"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.1}", r.p_disconnect),
            r.replica.to_string(),
            r.peer_independent.to_string(),
            r.trials.to_string(),
            format!("{:.2}", r.comp_success),
        ]);
    }
    t.with_note(
        "expected shape: without disconnection both modes compensate (1.0); once the original \
         peer disconnects, peer-dependent compensation is lost, while peer-independent + replica \
         still reaches 1.0 (the definition runs on the replica) — the gap grows with p-disc",
    )
}

/// One trial for the Criterion bench.
pub fn bench_once(peer_independent: bool) -> bool {
    one(3, true, true, peer_independent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_without_disconnection_both_succeed() {
        assert!(one(1, false, false, false));
        assert!(one(1, false, false, true));
    }

    #[test]
    fn dependent_mode_loses_compensation_on_disconnect() {
        assert!(!one(2, true, false, false), "abort message lost, no replica fallback");
        assert!(!one(2, true, true, false), "dependent mode never targets the replica");
    }

    #[test]
    fn independent_mode_compensates_via_replica() {
        assert!(one(2, true, true, true), "compensating service runs on the replica");
        assert!(!one(2, true, false, true), "without a replica even independent mode is stuck");
    }

    #[test]
    fn sweep_shape() {
        let rows = run(6);
        let get = |p: f64, rep: bool, pi: bool| {
            rows.iter()
                .find(|r| r.p_disconnect == p && r.replica == rep && r.peer_independent == pi)
                .unwrap()
                .comp_success
        };
        assert_eq!(get(0.0, false, false), 1.0);
        assert_eq!(get(0.0, false, true), 1.0);
        assert_eq!(get(1.0, true, true), 1.0, "independent + replica always recovers");
        assert_eq!(get(1.0, true, false), 0.0, "dependent loses everything at p=1");
        assert!(get(0.5, true, true) >= get(0.5, true, false));
    }
}
