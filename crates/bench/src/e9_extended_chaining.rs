//! E9 — extended chaining (the paper's future work).
//!
//! "Currently, the 'chaining' mechanism is restricted to the parent,
//! children and sibling peers. We are exploring the feasibility of
//! extending the same to uncles, cousins, etc."
//!
//! This ablation measures the trade-off: gossiping chain updates to
//! grandparents/uncles/cousins as well spreads invocation-tree knowledge
//! in fewer hops (faster convergence at every peer — the knowledge
//! disconnection handling depends on) at the price of more chain-update
//! messages.

use axml_core::scenarios::{Flavor, ScenarioBuilder};
use axml_core::{ChainScope, PeerConfig};
use axml_p2p::PeerId;
use axml_workload::{tree_edges, TreeShape};
use serde::Serialize;

use crate::table::Table;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Tree depth (fanout 2).
    pub depth: usize,
    /// Peers in the tree.
    pub peers: usize,
    /// `standard` or `extended`.
    pub scope: String,
    /// Simulated time until the *origin* knows the full tree.
    pub origin_converged_at: u64,
    /// Simulated time until *every* peer knows the full tree
    /// (`u64::MAX` shown as 0 if never).
    pub all_converged_at: u64,
    /// Chain-update messages spent.
    pub chain_updates: u64,
    /// Total messages.
    pub messages: u64,
}

fn measure(depth: usize, scope: Option<ChainScope>, seed: u64) -> Row {
    let shape = TreeShape { depth, fanout: 2 };
    let edges = tree_edges(1, shape);
    let n_peers = edges.len() + 1;
    let mut config = PeerConfig::default();
    match scope {
        Some(sc) => config.chain_scope = sc,
        None => config.chain_gossip = false, // strict piggyback-only chaining
    }
    // Slow services keep the run going long enough to observe convergence.
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Query).config(config);
    builder.seed = seed;
    for p in std::iter::once(1u32).chain(edges.iter().map(|(_, c)| *c)) {
        builder.durations.insert(p, 40);
    }
    let mut scenario = builder.build();
    // Step the simulation, sampling chain knowledge.
    let mut origin_converged_at = 0u64;
    let mut all_converged_at = 0u64;
    let all: Vec<PeerId> = std::iter::once(1u32).chain(edges.iter().map(|(_, c)| *c)).map(PeerId).collect();
    for t in (0..2_000u64).step_by(2) {
        scenario.sim.run_until(t);
        let txns = scenario.sim.actor(PeerId(1)).known_txns();
        let Some(&txn) = txns.first() else { continue };
        let knows_all = |p: PeerId| {
            scenario.sim.actor(p).context(txn).map(|tc| tc.chain.all_peers().len() >= n_peers).unwrap_or(false)
        };
        if origin_converged_at == 0 && knows_all(PeerId(1)) {
            origin_converged_at = t;
        }
        if all_converged_at == 0 && all.iter().all(|p| knows_all(*p)) {
            all_converged_at = t;
            break;
        }
    }
    scenario.sim.run();
    Row {
        depth,
        peers: n_peers,
        scope: match scope {
            Some(ChainScope::Standard) => "standard".into(),
            Some(ChainScope::Extended) => "extended".into(),
            None => "invoke-only".into(),
        },
        origin_converged_at,
        all_converged_at,
        chain_updates: scenario.sim.metrics().kind("chain-update"),
        messages: scenario.sim.metrics().sent,
    }
}

/// Runs the sweep.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for depth in [2usize, 3, 4] {
        for scope in [None, Some(ChainScope::Standard), Some(ChainScope::Extended)] {
            rows.push(measure(depth, scope, 17));
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E9 — extended chaining (gossip to grandparent/uncles/cousins): convergence vs overhead",
        &["depth", "peers", "scope", "t-origin-full", "t-all-full", "chain-updates", "msgs"],
    );
    for r in rows {
        t.row(vec![
            r.depth.to_string(),
            r.peers.to_string(),
            r.scope.clone(),
            r.origin_converged_at.to_string(),
            r.all_converged_at.to_string(),
            r.chain_updates.to_string(),
            r.messages.to_string(),
        ]);
    }
    t.with_note(
        "expected shape: invoke-only (strict piggyback) spends zero chain-updates but converges \
         only as results return; standard gossip converges mid-flight; extended converges at \
         least as fast again for ~2× the chain-update messages — the feasibility trade-off the \
         paper left open",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scopes_converge() {
        let rows = run();
        for r in &rows {
            if r.scope == "invoke-only" {
                // Piggyback-only: the origin converges when the last result
                // returns; interior peers may never see sibling subtrees.
                assert!(r.origin_converged_at > 0, "origin still converges: {r:?}");
                assert_eq!(r.chain_updates, 0, "no gossip traffic: {r:?}");
            } else {
                assert!(r.all_converged_at > 0, "never converged: {r:?}");
                assert!(r.origin_converged_at <= r.all_converged_at);
            }
        }
    }

    #[test]
    fn extended_trades_messages_for_latency() {
        let rows = run();
        for depth in [3usize, 4] {
            let std = rows.iter().find(|r| r.depth == depth && r.scope == "standard").unwrap();
            let ext = rows.iter().find(|r| r.depth == depth && r.scope == "extended").unwrap();
            assert!(
                ext.chain_updates >= std.chain_updates,
                "extended gossip costs more messages at depth {depth}: {} vs {}",
                ext.chain_updates,
                std.chain_updates
            );
            assert!(
                ext.all_converged_at <= std.all_converged_at + 10,
                "extended must not converge meaningfully slower at depth {depth}: {} vs {}",
                ext.all_converged_at,
                std.all_converged_at
            );
        }
    }
}
