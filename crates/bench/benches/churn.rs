//! Criterion bench for E6: a 15-peer transaction under churn, chaining
//! on/off.

use axml_bench::e6_churn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn");
    g.sample_size(20);
    g.bench_function("p25_chaining", |b| {
        b.iter(|| black_box(e6_churn::bench_once(true)));
    });
    g.bench_function("p25_no_chaining", |b| {
        b.iter(|| black_box(e6_churn::bench_once(false)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
