//! Criterion bench for E4: lazy vs eager query evaluation over the
//! paper's ATP document.

use axml_bench::e4_materialization;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("materialization");
    g.bench_function("atp_query_lazy", |b| {
        b.iter(|| black_box(e4_materialization::bench_once(false)));
    });
    g.bench_function("atp_query_eager", |b| {
        b.iter(|| black_box(e4_materialization::bench_once(true)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
