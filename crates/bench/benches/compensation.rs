//! Criterion bench for E3: dynamic compensation round-trips
//! (apply ops → build inverse from log → restore) across document sizes.

use axml_bench::e3_compensation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compensation");
    for doc_nodes in [50usize, 200, 1000] {
        g.bench_with_input(BenchmarkId::new("dynamic_roundtrip_20ops", doc_nodes), &doc_nodes, |b, &n| {
            b.iter(|| black_box(e3_compensation::bench_once(n, 20)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
