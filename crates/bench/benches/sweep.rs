//! Criterion benchmarks for the parallel sweep runner and the simulator
//! hot paths it leans on.
//!
//! `sweep/*` times a small chaos matrix end to end, serial vs sharded
//! (the full 256-case matrix is E12's job; here the matrix is trimmed so
//! the bench budget buys iterations, not coverage). `hotpath/*` isolates
//! the two paths the PR optimized: the clone-free delivery fast path
//! with dense per-link counters, and the reliable-delivery bookkeeping
//! (outbox retransmit / ack / dedup) under a duplication profile.

use axml_chaos::{run_case, sweep_jobs, CaseConfig, Profile};
use axml_p2p::{Actor, Ctx, Message, PeerId, Sim, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    let scenarios = vec!["fig1".to_string(), "fig1-abort".to_string()];
    let profiles = [Profile::Mixed, Profile::Storm];
    for jobs in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("matrix_2x2x4", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(sweep_jobs(&scenarios, &profiles, 0..4, true, jobs).digest));
        });
    }
    g.finish();
}

/// A two-peer flood: peer 0's timers each fire a burst at peer 1. Every
/// delivery crosses the sim's fast path (move, not clone; dense link
/// counter bump), so this isolates exactly the per-delivery overhead.
#[derive(Debug, Clone)]
struct Payload(u64);

impl Message for Payload {
    fn kind(&self) -> &'static str {
        "payload"
    }
}

struct Flood;

impl Actor<Payload> for Flood {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Payload>, _from: PeerId, msg: Payload) {
        black_box(msg.0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Payload>, tag: u64) {
        for i in 0..8 {
            let _ = ctx.send(PeerId(1), Payload(tag * 8 + i));
        }
    }
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("sim_delivery_flood_1600", |b| {
        b.iter(|| {
            let mut s = Sim::new(SimConfig::default(), vec![Flood, Flood]);
            for t in 0..200 {
                s.schedule_timer(t, PeerId(0), t);
            }
            s.run();
            black_box(s.metrics().delivered)
        });
    });
    // The reliable-delivery bookkeeping (single-pass outbox retransmit /
    // ack removal, single-probe dedup) under injected duplicates.
    let case = {
        let mut case = CaseConfig::new("fig1", Profile::Dups, 7);
        case.dedup = true;
        case
    };
    g.bench_function("reliable_dups_case", |b| {
        b.iter(|| black_box(run_case(&case).verdict.ok));
    });
    g.finish();
}

criterion_group!(benches, bench_sweep, bench_hotpath);
criterion_main!(benches);
