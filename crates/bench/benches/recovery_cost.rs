//! Criterion bench for E5: end-to-end recovery across tree depths,
//! forward vs backward.

use axml_bench::e5_recovery_cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_cost");
    for depth in [2usize, 3] {
        g.bench_with_input(BenchmarkId::new("forward", depth), &depth, |b, &d| {
            b.iter(|| black_box(e5_recovery_cost::bench_once(d, true)));
        });
        g.bench_with_input(BenchmarkId::new("backward", depth), &depth, |b, &d| {
            b.iter(|| black_box(e5_recovery_cost::bench_once(d, false)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
