//! Criterion bench for E7: abort-under-disconnection with peer-dependent
//! vs peer-independent compensation.

use axml_bench::e7_peer_independent;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("peer_independent");
    g.bench_function("dependent", |b| {
        b.iter(|| black_box(e7_peer_independent::bench_once(false)));
    });
    g.bench_function("independent", |b| {
        b.iter(|| black_box(e7_peer_independent::bench_once(true)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
