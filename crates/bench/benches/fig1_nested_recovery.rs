//! Criterion bench for E1 / Fig. 1: full nested-recovery scenario runs.

use axml_bench::e1_fig1;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_nested_recovery");
    g.bench_function("commit_no_fault", |b| {
        b.iter(|| black_box(e1_fig1::bench_once(false)));
    });
    g.bench_function("abort_backward_recovery", |b| {
        b.iter(|| black_box(e1_fig1::bench_once(true)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
