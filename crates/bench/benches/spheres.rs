//! Criterion bench for E8: full sphere-of-atomicity trial runs.

use axml_bench::e8_spheres;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("spheres");
    g.bench_function("all_super", |b| {
        b.iter(|| black_box(e8_spheres::bench_once(true)));
    });
    g.bench_function("no_super", |b| {
        b.iter(|| black_box(e8_spheres::bench_once(false)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
