//! Criterion bench for E2 / Fig. 2: disconnection scenario (b) with and
//! without chaining (end-to-end simulated recovery).

use axml_bench::e2_fig2;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_disconnection");
    g.bench_function("scenario_b_chaining", |b| {
        b.iter(|| black_box(e2_fig2::bench_once(true)));
    });
    g.bench_function("scenario_b_no_chaining", |b| {
        b.iter(|| black_box(e2_fig2::bench_once(false)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
