//! Criterion micro-benchmarks for the substrates the protocols run on:
//! XML parse/serialize, path evaluation, transparent views, and
//! compensation construction.

use axml_core::compensate::compensation_for_effects;
use axml_core::durability::{decode, encode, journal_of, replay};
use axml_core::isolation::ConflictTable;
use axml_core::{ActiveList, InvocationId, TransactionContext, TxnId};
use axml_doc::TransparentView;
use axml_p2p::PeerId;
use axml_query::{Locator, PathExpr, SelectQuery, UpdateAction};
use axml_workload::{atp_document, random_plain_doc, DocParams};
use axml_xml::{Document, Fragment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_xml(c: &mut Criterion) {
    let mut g = c.benchmark_group("xml");
    for nodes in [100usize, 1000, 5000] {
        let doc = random_plain_doc(1, &DocParams { nodes, ..Default::default() });
        let xml = doc.to_xml();
        g.bench_with_input(BenchmarkId::new("parse", nodes), &xml, |b, xml| {
            b.iter(|| black_box(Document::parse(xml).expect("parses")));
        });
        g.bench_with_input(BenchmarkId::new("serialize", nodes), &doc, |b, doc| {
            b.iter(|| black_box(doc.to_xml()));
        });
        g.bench_with_input(BenchmarkId::new("clone_subtree", nodes), &doc, |b, doc| {
            b.iter(|| black_box(doc.extract_fragment(doc.root()).expect("root fragment")));
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    for nodes in [100usize, 1000, 5000] {
        let doc = random_plain_doc(2, &DocParams { nodes, ..Default::default() });
        let path = PathExpr::parse("root//e3/e1").expect("path");
        g.bench_with_input(BenchmarkId::new("descendant_path", nodes), &doc, |b, doc| {
            b.iter(|| black_box(path.eval(doc)));
        });
        let select = SelectQuery::parse("Select p/e1 from p in root//e2 where p/e1 != nothing").expect("query");
        g.bench_with_input(BenchmarkId::new("select_from_where", nodes), &doc, |b, doc| {
            b.iter(|| black_box(select.eval(doc).expect("evaluates")));
        });
    }
    g.finish();
}

fn bench_view(c: &mut Criterion) {
    let mut g = c.benchmark_group("view");
    let atp = atp_document();
    g.bench_function("transparent_view_atp", |b| {
        b.iter(|| black_box(TransparentView::build(&atp)));
    });
    g.finish();
}

fn bench_compensation_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("compensation_build");
    // A realistic effect log: delete all e1 subtrees of a 1000-node doc.
    let base = random_plain_doc(3, &DocParams { nodes: 1000, ..Default::default() });
    let mut doc = base.clone();
    let mut del = UpdateAction::delete(Locator::Path(PathExpr::parse("root//e1").expect("path")));
    del.allow_empty_location = true;
    let report = del.apply(&mut doc).expect("applies");
    g.bench_function("invert_effect_log", |b| {
        b.iter(|| black_box(compensation_for_effects(&report.effects)));
    });
    // Fragment instantiation (the insert half of compensation).
    let frag = Fragment::elem("x").with_child(Fragment::elem_text("y", "z"));
    g.bench_function("fragment_instantiate", |b| {
        b.iter(|| {
            let mut d = Document::new("r");
            let root = d.root();
            black_box(d.append_fragment(root, &frag).expect("appends"))
        });
    });
    g.finish();
}

fn bench_durability(c: &mut Criterion) {
    let mut g = c.benchmark_group("durability");
    // A realistic mid-flight context: 20 local effect batches + 10 remote
    // invocations.
    let txn = TxnId::new(PeerId(3), 0);
    let mut tc = TransactionContext::new(txn, None, ActiveList::new(PeerId(3), false), 0);
    let mut doc = random_plain_doc(4, &DocParams { nodes: 500, ..Default::default() });
    for i in 0..20u64 {
        let mut del = UpdateAction::delete(Locator::Path(PathExpr::parse("root/e1").expect("path")));
        del.allow_empty_location = true;
        if let Ok(r) = del.apply(&mut doc) {
            tc.record_local("d", format!("op{i}"), r.effects);
        }
        let ins = UpdateAction::insert(
            Locator::Path(PathExpr::parse("root").expect("path")),
            vec![Fragment::elem_text("e1", format!("v{i}"))],
        );
        if let Ok(r) = ins.apply(&mut doc) {
            tc.record_local("d", format!("ins{i}"), r.effects);
        }
    }
    for i in 0..10u64 {
        tc.record_remote(PeerId(9), InvocationId::new(PeerId(3), i), "S9");
    }
    let journal = journal_of(&tc);
    let text = encode(&journal);
    g.bench_function("journal_encode", |b| {
        b.iter(|| black_box(encode(&journal)));
    });
    g.bench_function("journal_decode_replay", |b| {
        b.iter(|| black_box(replay(&decode(&text).expect("decodes")).expect("replays")));
    });
    g.finish();
}

fn bench_isolation(c: &mut Criterion) {
    let mut g = c.benchmark_group("isolation");
    // 100 transactions × 10 disjoint claims, then probe.
    g.bench_function("claim_release_100x10", |b| {
        b.iter(|| {
            let mut table = ConflictTable::new();
            for t in 0..100u64 {
                let txn = TxnId::new(PeerId(1), t);
                for k in 0..10usize {
                    table.claim(txn, "d", &axml_query::NodePath(vec![t as usize, k])).expect("disjoint");
                }
            }
            for t in 0..100u64 {
                table.release(TxnId::new(PeerId(1), t));
            }
            black_box(table.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xml,
    bench_query,
    bench_view,
    bench_compensation_build,
    bench_durability,
    bench_isolation
);
criterion_main!(benches);
