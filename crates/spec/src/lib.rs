//! axml-spec: the executable reference model of the paper's atomicity
//! protocol, with a bounded explicit-state checker and a trace
//! conformance checker.
//!
//! The paper leaves a formal study of the nested-recovery + chaining
//! protocol as future work; this crate supplies the specification half
//! that the implementation (`axml-core`), the chaos oracle
//! (`axml-chaos`), and the online monitor (`axml-obs`) are checked
//! against:
//!
//! - [`model`] — a small-step transition system over abstract
//!   configurations (per-peer phase, forward-log length, compensation
//!   progress, in-flight messages), independent of `core::peer`. Rules
//!   `R01`–`R10`, invariants `I1`–`I5`.
//! - [`check`] — BFS over all interleavings of small configurations
//!   (2–4 peers, optional fault/crash/duplicate events) with canonical
//!   state hashing; violations come with shortest counterexample traces.
//!   The `compensate_in_log_order` broken-peer variant is refuted with a
//!   concrete trace; the clean catalogue explores with zero violations.
//! - [`conform`] — replays recorded `axml-trace` journals against the
//!   model's permitted transitions, reporting the first divergence with
//!   its causal context. Wired into every traced `axml-chaos` case.
//!
//! The `axml-spec` binary exposes both: `axml-spec check` and
//! `axml-spec conform --journal FILE`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod conform;
pub mod model;

pub use check::{check, check_catalogue, CheckReport, SpecViolation};
pub use conform::{check_journal, Conformance, ConformanceChecker, Divergence};
pub use model::{Msg, MsgKind, PeerFrame, Phase, SpecConfig, SpecStep, State};
