//! axml-spec CLI: bounded model checking and trace conformance.
//!
//! ```text
//! axml-spec check [--config NAME] [--broken] [--max-states N] [--json]
//! axml-spec conform --journal FILE [--json]
//! axml-spec list
//! ```
//!
//! `check` explores the clean configuration catalogue (or one named
//! configuration) and exits nonzero on any invariant violation; with
//! `--broken` it explores the `compensate_in_log_order` broken-peer
//! variant instead and exits nonzero unless the expected I2
//! counterexample is found. `conform` replays a JSON-lines trace journal
//! (e.g. from `axml-chaos trace --journal`) against the model and exits
//! nonzero on divergence.

#![forbid(unsafe_code)]

use axml_spec::model::SpecConfig;
use axml_spec::{check, check_journal};
use axml_trace::TraceJournal;
use std::process::ExitCode;

const DEFAULT_MAX_STATES: usize = 200_000;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: axml-spec check [--config NAME] [--broken] [--max-states N] [--json]\n\
         \x20      axml-spec conform --journal FILE [--json]\n\
         \x20      axml-spec list"
    );
    ExitCode::from(2)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let max_states = match parse_flag(args, "--max-states").map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => n,
        Some(Err(_)) => return usage(),
        None => DEFAULT_MAX_STATES,
    };
    let json = has_flag(args, "--json");
    let configs: Vec<SpecConfig> = if has_flag(args, "--broken") {
        vec![SpecConfig::broken_variant()]
    } else if let Some(name) = parse_flag(args, "--config") {
        if let Some(c) = SpecConfig::by_name(&name) {
            vec![c]
        } else {
            eprintln!("unknown config `{name}`; try `axml-spec list`");
            return ExitCode::from(2);
        }
    } else {
        SpecConfig::catalogue()
    };
    let expect_violation = has_flag(args, "--broken");
    let mut ok = true;
    for cfg in &configs {
        let report = check(cfg, max_states);
        if json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
        }
        let refuted = report.violations.iter().any(|v| v.invariant == "I2");
        if expect_violation {
            if !refuted {
                eprintln!("{}: expected an I2 counterexample for the broken variant, found none", cfg.name);
                ok = false;
            }
        } else if !report.is_clean() || report.truncated {
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_conform(args: &[String]) -> ExitCode {
    let Some(path) = parse_flag(args, "--journal") else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match TraceJournal::from_json_lines(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verdict = check_journal(&journal);
    if has_flag(args, "--json") {
        println!("{}", verdict.render_json());
    } else {
        print!("{}", verdict.render_text());
    }
    if verdict.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("conform") => cmd_conform(&args[1..]),
        Some("list") => {
            for c in SpecConfig::catalogue() {
                let failure = match (c.fault_at, c.crash_at) {
                    (Some(f), _) => format!(", fault at AP{f}"),
                    (_, Some(k)) => format!(", crash at AP{k}"),
                    _ => String::new(),
                };
                let dup = if c.dup_results { ", duplicate results" } else { "" };
                println!("{}: {} peers{failure}{dup}", c.name, c.peers().len());
            }
            println!("fork4-abort-broken: 4 peers, fault at AP4, forward-order compensation (broken)");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
