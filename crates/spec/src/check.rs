//! Bounded explicit-state model checking: BFS over every interleaving of
//! a small configuration, with canonical state hashing and shortest
//! counterexample extraction.
//!
//! The checker enumerates [`SpecConfig::successors`] from the initial
//! configuration, deduplicating states by their canonical key. Invariants
//! are checked in two places: per-transition (I2 — compensation order,
//! I3 — terminal frames are frozen) and at quiescent states (I1 —
//! atomicity and compensation completeness, I4 — every abort landed and
//! nobody is stuck). Because the exploration is breadth-first, the first
//! path reaching a violation is a *shortest* counterexample.

use crate::model::{Phase, SpecConfig, State};
use axml_trace::fnv64;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// One invariant violation with its counterexample trace.
#[derive(Debug, Clone, Serialize)]
pub struct SpecViolation {
    /// Invariant id (`I1` … `I4`).
    pub invariant: &'static str,
    /// Transition rule active when the violation surfaced (`R01` … `R10`,
    /// or `quiescent` for final-state checks).
    pub rule: &'static str,
    /// What went wrong.
    pub detail: String,
    /// Shortest transition sequence from the initial configuration to the
    /// violation, one rendered step per entry.
    pub trace: Vec<String>,
}

/// The result of exploring one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    /// Configuration name.
    pub config: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions explored (edges of the state graph).
    pub transitions: usize,
    /// Quiescent (deadlock-free terminal) states found.
    pub quiescent: usize,
    /// True when the `max_states` bound stopped the exploration early.
    pub truncated: bool,
    /// Order-sensitive digest of the visited state keys: identical runs
    /// visit identical states in identical order.
    pub digest: u64,
    /// Invariant violations (first, shortest instance per invariant, plus
    /// a total count).
    pub violations: Vec<SpecViolation>,
    /// Total violating transitions/states seen (the `violations` list is
    /// deduplicated per invariant).
    pub violation_count: usize,
}

impl CheckReport {
    /// True when the exploration found no violation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering in the `diag.rs` style.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} states, {} transitions, {} quiescent{}, digest {:016x}",
            self.config,
            self.states,
            self.transitions,
            self.quiescent,
            if self.truncated { " (truncated)" } else { "" },
            self.digest,
        );
        for v in &self.violations {
            let _ = writeln!(out, "error [{}] at {}: {}", v.invariant, v.rule, v.detail);
            for (i, step) in v.trace.iter().enumerate() {
                let _ = writeln!(out, "  {:>2}. {step}", i + 1);
            }
        }
        let _ = writeln!(out, "{} violation(s)", self.violation_count);
        out
    }

    /// JSON rendering (one object per report).
    ///
    /// # Panics
    ///
    /// Only if JSON serialization fails, which cannot happen for the
    /// plain-data fields of a report.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

/// Explores `cfg` up to `max_states` distinct states.
#[must_use]
pub fn check(cfg: &SpecConfig, max_states: usize) -> CheckReport {
    let init = cfg.initial();
    let init_key = init.key();
    // Canonical key → predecessor (key, rule, detail) for counterexample
    // reconstruction; the initial state has no predecessor.
    let mut parent: BTreeMap<String, (String, &'static str, String)> = BTreeMap::new();
    parent.insert(init_key.clone(), (String::new(), "init", String::new()));
    let mut queue: VecDeque<State> = VecDeque::from([init]);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    digest = fold(digest, &init_key);
    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut quiescent = 0usize;
    let mut truncated = false;
    // First (shortest) violation per invariant id.
    let mut firsts: BTreeMap<&'static str, SpecViolation> = BTreeMap::new();
    let mut violation_count = 0usize;

    while let Some(s) = queue.pop_front() {
        let key = s.key();
        let steps = cfg.successors(&s);
        if steps.is_empty() {
            quiescent += 1;
            for (invariant, detail) in quiescent_violations(cfg, &s) {
                violation_count += 1;
                firsts.entry(invariant).or_insert_with(|| SpecViolation {
                    invariant,
                    rule: "quiescent",
                    detail,
                    trace: trace_to(&parent, &key),
                });
            }
            continue;
        }
        for step in steps {
            transitions += 1;
            // I3 — terminal frames are frozen: once a peer committed or
            // aborted, no transition may touch its frame again.
            let i3 = s.peers.iter().find_map(|(p, f)| {
                if f.phase.is_terminal() && step.next.peers[p] != *f {
                    Some(("I3", format!("AP{p} frame changed after it reached {} (rule {})", f.phase, step.rule)))
                } else {
                    None
                }
            });
            for (invariant, detail) in step.violation.iter().cloned().chain(i3) {
                violation_count += 1;
                firsts.entry(invariant).or_insert_with(|| {
                    let mut trace = trace_to(&parent, &key);
                    trace.push(format!("{} {}", step.rule, step.detail));
                    SpecViolation { invariant, rule: step.rule, detail, trace }
                });
            }
            let nkey = step.next.key();
            if parent.contains_key(&nkey) {
                continue;
            }
            if states >= max_states {
                truncated = true;
                continue;
            }
            parent.insert(nkey.clone(), (key.clone(), step.rule, step.detail));
            digest = fold(digest, &nkey);
            states += 1;
            queue.push_back(step.next);
        }
    }

    CheckReport {
        config: cfg.name.clone(),
        states,
        transitions,
        quiescent,
        truncated,
        digest,
        violations: firsts.into_values().collect(),
        violation_count,
    }
}

/// Runs the whole clean catalogue plus (optionally) the broken variant.
#[must_use]
pub fn check_catalogue(max_states: usize) -> Vec<CheckReport> {
    SpecConfig::catalogue().iter().map(|c| check(c, max_states)).collect()
}

/// Order-sensitive digest fold over canonical state keys.
fn fold(digest: u64, key: &str) -> u64 {
    digest.rotate_left(7) ^ fnv64(key.as_bytes())
}

/// Reconstructs the shortest transition sequence from the initial
/// configuration to `key`.
fn trace_to(parent: &BTreeMap<String, (String, &'static str, String)>, key: &str) -> Vec<String> {
    let mut steps = Vec::new();
    let mut cur = key.to_string();
    while let Some((prev, rule, detail)) = parent.get(&cur) {
        if *rule == "init" {
            break;
        }
        steps.push(format!("{rule} {detail}"));
        cur = prev.clone();
    }
    steps.reverse();
    steps
}

/// I1 + I4 over a quiescent state: every participant terminal, outcomes
/// consistent with the origin (modulo crash-induced churn), compensation
/// complete at aborted peers.
fn quiescent_violations(cfg: &SpecConfig, s: &State) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    debug_assert!(s.net.is_empty(), "quiescent state with undelivered messages");
    let origin = &s.peers[&cfg.origin];
    if !origin.phase.is_terminal() {
        out.push(("I4", format!("origin AP{} never resolved (phase {})", cfg.origin, origin.phase)));
        return out;
    }
    for (&p, f) in &s.peers {
        // I4 — every abort landed: nobody is left mid-protocol.
        if !matches!(f.phase, Phase::Idle | Phase::Committed | Phase::Aborted) {
            out.push(("I4", format!("AP{p} stuck in phase {} at quiescence", f.phase)));
            continue;
        }
        // I1 — compensation completeness at aborted peers.
        if f.phase == Phase::Aborted && f.undone != f.log {
            out.push(("I1", format!("AP{p} aborted with {} of {} log records undone", f.undone, f.log)));
        }
        if f.phase == Phase::Committed && f.undone != 0 {
            out.push(("I1", format!("AP{p} committed after undoing {} records", f.undone)));
        }
        if p == cfg.origin {
            continue;
        }
        // I1 — outcome agreement with the origin.
        match origin.phase {
            Phase::Committed => match f.phase {
                Phase::Committed => {}
                // Under churn the presumed-abort recovery of a crashed
                // peer legitimately aborts its subtree while the origin
                // commits (the chaos oracle's churn excuse). The abort
                // may only flow *down from the crash point*: an aborted
                // or idle peer must be the crash victim or sit under an
                // aborted parent.
                Phase::Aborted | Phase::Idle => {
                    let parent_aborted = cfg.parent(p).is_some_and(|q| matches!(s.peers[&q].phase, Phase::Aborted));
                    if !(f.crashed || parent_aborted) {
                        out.push((
                            "I1",
                            format!(
                                "atomicity broken: origin committed but AP{p} is {} with no crash or aborted parent to excuse it",
                                f.phase
                            ),
                        ));
                    }
                }
                _ => unreachable!("non-terminal phases handled above"),
            },
            Phase::Aborted => {
                if f.phase == Phase::Committed {
                    out.push(("I1", format!("atomicity broken: origin aborted but AP{p} committed")));
                }
            }
            _ => unreachable!("origin is terminal here"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_catalogue_has_no_violations() {
        for report in check_catalogue(200_000) {
            assert!(!report.truncated, "{} truncated at {} states", report.config, report.states);
            assert!(report.is_clean(), "{}", report.render_text());
            assert!(report.quiescent > 0, "{} found no quiescent state", report.config);
        }
    }

    #[test]
    fn broken_variant_is_refuted_with_a_counterexample() {
        let report = check(&SpecConfig::broken_variant(), 200_000);
        assert!(!report.is_clean());
        let v = report.violations.iter().find(|v| v.invariant == "I2").expect("I2 violation");
        assert_eq!(v.rule, "R08");
        // The counterexample is a concrete shortest trace ending in the
        // out-of-order undo.
        assert!(!v.trace.is_empty());
        assert!(v.trace.last().expect("non-empty").starts_with("R08"), "{:?}", v.trace);
        assert!(v.detail.contains("strictly decreasing"), "{}", v.detail);
        // Only the order invariant breaks: atomicity itself still holds
        // in the broken variant (the records are undone, just wrongly).
        assert!(report.violations.iter().all(|v| v.invariant == "I2"), "{}", report.render_text());
    }

    #[test]
    fn exploration_is_deterministic() {
        for cfg in SpecConfig::catalogue() {
            let a = check(&cfg, 200_000);
            let b = check(&cfg, 200_000);
            assert_eq!(a.states, b.states, "{}", cfg.name);
            assert_eq!(a.digest, b.digest, "{}", cfg.name);
            assert_eq!(a.transitions, b.transitions, "{}", cfg.name);
        }
    }

    #[test]
    fn truncation_is_reported() {
        let cfg = SpecConfig::by_name("fig1-frag").expect("catalogue config");
        let report = check(&cfg, 10);
        assert!(report.truncated);
        assert_eq!(report.states, 10);
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = check(&SpecConfig::broken_variant(), 200_000);
        let text = report.render_text();
        assert!(text.contains("error [I2]"), "{text}");
        assert!(text.contains("violation(s)"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"invariant\":\"I2\""), "{json}");
    }
}
