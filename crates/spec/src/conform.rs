//! Trace conformance: replaying a recorded `axml-trace` journal against
//! the model's permitted transitions.
//!
//! Every event a peer emits is treated as a *claimed* transition of the
//! reference model ([`crate::model`]); the checker verifies the claim is
//! enabled in the abstract state it maintains per (peer, transaction).
//! The first divergence is reported with its causal context — the recent
//! events at the diverging peer — and the model rule it contradicts.
//!
//! The permitted-transition relation is deliberately the *weakest
//! precondition consistent with churn*: crash epochs reset per-peer
//! obligations, a serve after an abort is the legitimate forward-recovery
//! re-join (model rule R02 from a fresh frame), and delivery-layer
//! duplicates are excused once the transaction is terminal at the
//! receiver. This makes the online Monitor's M001–M004 rules corollaries
//! of the model's invariants: M001 ↔ I2 (R08), M002 ↔ I3, M003 ↔ I5,
//! M004 ↔ I4 — see `axml-obs`'s cross-check test.

use axml_trace::{EventKind, TraceEvent, TraceJournal};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;

/// How many recent per-peer events a divergence report carries.
const CONTEXT_DEPTH: usize = 6;

/// One divergence between the recorded trace and the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Divergence {
    /// Violated invariant (`I2` … `I5`).
    pub invariant: &'static str,
    /// Model transition rule implicated.
    pub rule: &'static str,
    /// Sequence number of the offending event (journal order).
    pub seq: u64,
    /// Sim time of the offending event.
    pub at: u64,
    /// Diverging peer.
    pub peer: u32,
    /// Transaction involved, if any.
    pub txn: Option<String>,
    /// What the trace claimed that the model forbids.
    pub detail: String,
    /// Causal context: the most recent events at the diverging peer, in
    /// emission order, ending with the offender.
    pub context: Vec<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) [t={} AP{}", self.invariant, self.rule, self.at, self.peer)?;
        if let Some(t) = &self.txn {
            write!(f, " {t}")?;
        }
        write!(f, "] {}", self.detail)
    }
}

/// The verdict of replaying one journal.
#[derive(Debug, Clone, Serialize)]
pub struct Conformance {
    /// Events replayed.
    pub events: usize,
    /// Divergences, in journal order (empty when the trace conforms).
    pub divergences: Vec<Divergence>,
}

impl Conformance {
    /// True when the trace conforms to the model.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// The first divergence, if any.
    #[must_use]
    pub fn first(&self) -> Option<&Divergence> {
        self.divergences.first()
    }

    /// Human-readable rendering: the first divergence with context, then
    /// the rest one per line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} event(s) replayed, {} divergence(s)", self.events, self.divergences.len());
        if let Some(d) = self.first() {
            let _ = writeln!(out, "first divergence: {d}");
            for line in &d.context {
                let _ = writeln!(out, "    {line}");
            }
            for d in &self.divergences[1..] {
                let _ = writeln!(out, "also: {d}");
            }
        }
        out
    }

    /// JSON rendering.
    ///
    /// # Panics
    ///
    /// Only if JSON serialization fails, which cannot happen for the
    /// plain-data fields of a verdict.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("conformance serializes")
    }
}

/// Terminal outcome recorded per (peer, txn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Committed,
    Aborted,
}

/// An unresolved I5 obligation: a repeated `ack-send` whose
/// `dedup-suppress` has not (yet) been seen.
#[derive(Debug, Clone)]
struct PendingDup {
    key: (u32, u64, u32, u64), // (receiver, receiver-epoch, sender, id)
    seq: u64,
    at: u64,
    txn: Option<String>,
}

/// Streaming conformance checker. Feed events in journal order, then
/// call [`ConformanceChecker::finish`].
#[derive(Debug, Default)]
pub struct ConformanceChecker {
    events: usize,
    divergences: Vec<Divergence>,
    finished: bool,
    // I2: last undone log index per (peer, txn); reset by re-join serve
    // and by crash (new epoch).
    last_undo: BTreeMap<(u32, String), u64>,
    // I3: terminal outcome per (peer, txn).
    outcome: BTreeMap<(u32, String), Outcome>,
    // I5: processed deliveries per receiver epoch + the at-most-one
    // outstanding repeat obligation per receiver.
    processed: BTreeSet<(u32, u64, u32, u64)>,
    pending_dup: BTreeMap<u32, PendingDup>,
    // I4: propagated aborts → (seq, at, sender); terminal resolves seen;
    // give-ups and churn/detection excuses.
    abort_targets: BTreeMap<(String, u32), (u64, u64, u32)>,
    resolved: BTreeMap<String, BTreeSet<u32>>,
    gave_up: BTreeSet<(String, u32)>,
    churned: BTreeSet<u32>,
    detected: BTreeSet<u32>,
    // Causal context: recent rendered events per peer.
    recent: BTreeMap<u32, VecDeque<String>>,
    last_seq: u64,
    last_at: u64,
}

/// One rendered event line for context reporting.
fn render_event(e: &TraceEvent) -> String {
    let mut s = format!("#{} t={} AP{}", e.seq, e.at, e.peer);
    if let Some(t) = &e.txn {
        let _ = write!(s, " {t}");
    }
    let _ = write!(s, " {}", e.kind.label());
    match &e.kind {
        EventKind::Invoke { to, method } | EventKind::Serve { from: to, method } => {
            let _ = write!(s, " AP{to} {method}");
        }
        EventKind::Materialize { items, .. } => {
            let _ = write!(s, " items={items}");
        }
        EventKind::CompensateOp { undoes, actions, .. } => {
            let _ = write!(s, " undoes={undoes} actions={actions}");
        }
        EventKind::Resolve { committed } => {
            let _ = write!(s, " committed={committed}");
        }
        EventKind::ResultReturn { to } | EventKind::FaultRaise { to } | EventKind::AbortPropagate { to } => {
            let _ = write!(s, " to=AP{to}");
        }
        EventKind::AckSend { to, id } | EventKind::RetransmitGiveUp { to, id } => {
            let _ = write!(s, " to=AP{to} id={id}");
        }
        EventKind::DedupSuppress { from, id } => {
            let _ = write!(s, " from=AP{from} id={id}");
        }
        _ => {}
    }
    s
}

impl ConformanceChecker {
    /// A fresh checker with no observations.
    #[must_use]
    pub fn new() -> ConformanceChecker {
        ConformanceChecker::default()
    }

    fn context_for(&self, peer: u32) -> Vec<String> {
        self.recent.get(&peer).map(|r| r.iter().cloned().collect()).unwrap_or_default()
    }

    fn diverge(&mut self, invariant: &'static str, rule: &'static str, e: &TraceEvent, detail: String) {
        let context = self.context_for(e.peer);
        self.divergences.push(Divergence {
            invariant,
            rule,
            seq: e.seq,
            at: e.at,
            peer: e.peer,
            txn: e.txn.clone(),
            detail,
            context,
        });
    }

    fn flag_unsuppressed(&mut self, p: &PendingDup) {
        let (receiver, _epoch, sender, id) = p.key;
        // Excused when the transaction was already terminal at the
        // receiver: the dedup entry was legitimately pruned and the late
        // duplicate is absorbed by the terminal-state no-op paths (the
        // model's stale-delivery discipline).
        let terminal = p.txn.as_ref().is_some_and(|t| self.outcome.contains_key(&(receiver, t.clone())));
        if terminal {
            return;
        }
        let context = self.context_for(receiver);
        self.divergences.push(Divergence {
            invariant: "I5",
            rule: "delivery",
            seq: p.seq,
            at: p.at,
            peer: receiver,
            txn: p.txn.clone(),
            detail: format!(
                "reliable delivery (AP{sender}, id={id}) processed more than once at AP{receiver}: \
                 repeated ack-send with no dedup-suppress and the transaction still live"
            ),
            context,
        });
    }

    /// Replays one event (journal order).
    // One arm per journal event kind; splitting the dispatch would
    // scatter the protocol reading of a single event across functions.
    #[allow(clippy::too_many_lines)]
    pub fn on_event(&mut self, e: &TraceEvent) {
        self.events += 1;
        self.last_seq = e.seq;
        self.last_at = e.at;
        // Resolve any outstanding I5 obligation at this receiver: the
        // suppress, when it comes, is the very next event the receiver
        // emits after the repeated ack.
        if let Some(p) = self.pending_dup.remove(&e.peer) {
            let suppressed = matches!(
                &e.kind,
                EventKind::DedupSuppress { from, id } if (*from, *id) == (p.key.2, p.key.3)
            );
            if !suppressed {
                self.flag_unsuppressed(&p);
            }
        }
        let key = |t: &String| (e.peer, t.clone());
        match &e.kind {
            EventKind::Serve { .. } => {
                if let Some(t) = &e.txn {
                    match self.outcome.get(&key(t)) {
                        Some(Outcome::Committed) => self.diverge(
                            "I3",
                            "R02",
                            e,
                            format!("serve of {t} after it committed at AP{} (terminal frames are frozen)", e.peer),
                        ),
                        Some(Outcome::Aborted) => {
                            // Legitimate forward-recovery re-join: model
                            // rule R02 from a fresh frame — fresh log,
                            // fresh order obligation.
                            self.outcome.remove(&key(t));
                            self.last_undo.remove(&key(t));
                        }
                        None => {}
                    }
                }
            }
            EventKind::Submit { .. } => self.forward_after_commit(e, "R01"),
            EventKind::Materialize { .. } => self.forward_after_commit(e, "R03"),
            EventKind::CompensateDerive { .. } => self.forward_after_commit(e, "R08"),
            EventKind::CompensateOp { undoes, .. } => {
                self.forward_after_commit(e, "R08");
                if let Some(t) = &e.txn {
                    if let Some(&prev) = self.last_undo.get(&key(t)) {
                        if *undoes >= prev {
                            self.diverge(
                                "I2",
                                "R08",
                                e,
                                format!(
                                    "compensation out of order at AP{}: undo of log record {undoes} \
                                     after record {prev} (R08 requires strictly decreasing indices — §3.1)",
                                    e.peer
                                ),
                            );
                        }
                    }
                    self.last_undo.insert(key(t), *undoes);
                }
            }
            EventKind::Resolve { committed } => {
                if let Some(t) = &e.txn {
                    match self.outcome.get(&key(t)) {
                        Some(prev) => {
                            let was = if *prev == Outcome::Committed { "committed" } else { "aborted" };
                            let now = if *committed { "commit" } else { "abort" };
                            self.diverge(
                                "I3",
                                "R04",
                                e,
                                format!(
                                    "second terminal decision for {t} at AP{}: {now} after it already {was} \
                                     (no model rule re-resolves a terminal frame)",
                                    e.peer
                                ),
                            );
                        }
                        None => {
                            self.outcome.insert(key(t), if *committed { Outcome::Committed } else { Outcome::Aborted });
                        }
                    }
                    self.resolved.entry(t.clone()).or_default().insert(e.peer);
                }
            }
            EventKind::AckSend { to, id } => {
                let k = (e.peer, e.epoch, *to, *id);
                if !self.processed.insert(k) {
                    // Second ack for a known delivery: either the suppress
                    // follows immediately, or this really was processed
                    // twice. Defer the verdict to the receiver's next
                    // event (or end of run).
                    self.pending_dup.insert(e.peer, PendingDup { key: k, seq: e.seq, at: e.at, txn: e.txn.clone() });
                }
            }
            EventKind::AbortPropagate { to } => {
                if let Some(t) = &e.txn {
                    self.abort_targets.entry((t.clone(), *to)).or_insert((e.seq, e.at, e.peer));
                }
            }
            EventKind::RetransmitGiveUp { to, .. } => {
                if let Some(t) = &e.txn {
                    self.gave_up.insert((t.clone(), *to));
                }
                // Give-up is also a detection of the silent peer.
                self.detected.insert(*to);
            }
            EventKind::Detect { peer, .. } => {
                self.detected.insert(*peer);
            }
            EventKind::Crash | EventKind::Disconnect => {
                self.churned.insert(e.peer);
                // A crash wipes volatile state: per-(peer, txn)
                // obligations from the dead epoch no longer bind the new
                // one (the model's R10 epoch reset).
                if matches!(e.kind, EventKind::Crash) {
                    self.last_undo.retain(|(p, _), _| *p != e.peer);
                    self.outcome.retain(|(p, _), _| *p != e.peer);
                }
            }
            _ => {}
        }
        let buf = self.recent.entry(e.peer).or_default();
        buf.push_back(render_event(e));
        if buf.len() > CONTEXT_DEPTH {
            buf.pop_front();
        }
    }

    /// I3 for forward-progress events: nothing after a commit.
    fn forward_after_commit(&mut self, e: &TraceEvent, rule: &'static str) {
        if let Some(t) = &e.txn {
            if self.outcome.get(&(e.peer, t.clone())) == Some(&Outcome::Committed) {
                self.diverge(
                    "I3",
                    rule,
                    e,
                    format!(
                        "{} for {t} after it committed at AP{} (terminal frames are frozen)",
                        e.kind.label(),
                        e.peer
                    ),
                );
            }
        }
    }

    /// Flushes end-of-run obligations (I4 reachability, outstanding I5
    /// repeats) and returns the verdict. Idempotent on the verdict.
    #[must_use]
    pub fn finish(mut self) -> Conformance {
        debug_assert!(!self.finished);
        self.finished = true;
        let pending: Vec<PendingDup> = std::mem::take(&mut self.pending_dup).into_values().collect();
        for p in pending {
            self.flag_unsuppressed(&p);
        }
        // I4: every propagated abort must have landed (a terminal resolve
        // at the target) or been absorbed by the failure-detection
        // machinery (churn, detection, retransmission give-up).
        let targets = std::mem::take(&mut self.abort_targets);
        let (last_seq, last_at) = (self.last_seq, self.last_at);
        for ((txn, target), (seq, at, sender)) in targets {
            let reached = self.resolved.get(&txn).is_some_and(|peers| peers.contains(&target));
            let absorbed = self.gave_up.contains(&(txn.clone(), target))
                || self.churned.contains(&target)
                || self.detected.contains(&target);
            if !reached && !absorbed {
                let mut context = self.context_for(target);
                if context.is_empty() {
                    context = self.context_for(sender);
                }
                self.divergences.push(Divergence {
                    invariant: "I4",
                    rule: "R06/R07",
                    seq: last_seq.max(seq),
                    at: last_at.max(at),
                    peer: target,
                    txn: Some(txn.clone()),
                    detail: format!(
                        "abort of {txn} propagated by AP{sender} (t={at}) never landed at AP{target}: \
                         no terminal resolve there and no crash/disconnect/detection/give-up to absorb it"
                    ),
                    context,
                });
            }
        }
        self.divergences.sort_by_key(|d| d.seq);
        Conformance { events: self.events, divergences: self.divergences }
    }
}

/// Replays a stored journal and returns the conformance verdict.
#[must_use]
pub fn check_journal(journal: &TraceJournal) -> Conformance {
    let mut c = ConformanceChecker::new();
    for e in journal.events() {
        c.on_event(e);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at: u64, peer: u32, txn: Option<&str>, kind: EventKind) -> TraceEvent {
        TraceEvent { seq, at, peer, epoch: 0, txn: txn.map(str::to_string), span: None, parent: None, kind }
    }

    fn run(events: &[TraceEvent]) -> Conformance {
        let mut c = ConformanceChecker::new();
        for e in events {
            c.on_event(e);
        }
        c.finish()
    }

    #[test]
    fn clean_commit_conforms() {
        let v = run(&[
            ev(0, 0, 1, Some("T1.0"), EventKind::Submit { method: "m".into() }),
            ev(1, 5, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            ev(2, 9, 1, Some("T1.0"), EventKind::Resolve { committed: true }),
            ev(3, 12, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        ]);
        assert!(v.is_clean(), "{}", v.render_text());
        assert_eq!(v.events, 4);
    }

    #[test]
    fn i2_forward_order_with_context() {
        let comp =
            |seq, undoes| ev(seq, 20, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes, actions: 1 });
        let v = run(&[comp(0, 2), comp(1, 1), comp(2, 0)]);
        assert!(v.is_clean(), "{}", v.render_text());
        let v = run(&[comp(0, 0), comp(1, 1)]);
        assert_eq!(v.divergences.len(), 1, "{}", v.render_text());
        let d = v.first().expect("divergence");
        assert_eq!((d.invariant, d.rule, d.seq), ("I2", "R08", 1));
        // Causal context carries the preceding compensate-op.
        assert!(d.context.iter().any(|l| l.contains("undoes=0")), "{:?}", d.context);
    }

    #[test]
    fn i2_resets_on_rejoin_and_crash() {
        let comp =
            |seq, undoes| ev(seq, 20, 3, Some("T1.0"), EventKind::CompensateOp { doc: "d".into(), undoes, actions: 1 });
        // Abort → re-join serve → fresh log: indices may restart.
        let v = run(&[
            comp(0, 0),
            ev(1, 21, 3, Some("T1.0"), EventKind::Resolve { committed: false }),
            ev(2, 30, 3, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            comp(3, 1),
            comp(4, 0),
        ]);
        assert!(v.is_clean(), "{}", v.render_text());
        // Crash: new epoch, the obligation re-arms.
        let v = run(&[comp(0, 0), ev(1, 25, 3, None, EventKind::Crash), comp(2, 1), comp(3, 0)]);
        assert!(v.is_clean(), "{}", v.render_text());
    }

    #[test]
    fn i3_post_commit_activity_and_double_resolve() {
        let v = run(&[
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
        ]);
        assert_eq!(v.divergences.len(), 1);
        assert_eq!((v.divergences[0].invariant, v.divergences[0].rule), ("I3", "R02"));
        let v = run(&[
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Resolve { committed: true }),
        ]);
        assert_eq!(v.divergences.len(), 1);
        assert_eq!(v.divergences[0].rule, "R04");
        // Abort → re-serve → abort again is the legitimate recovery shape.
        let v = run(&[
            ev(0, 5, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
            ev(1, 9, 2, Some("T1.0"), EventKind::Serve { from: 1, method: "m".into() }),
            ev(2, 12, 2, Some("T1.0"), EventKind::Resolve { committed: false }),
        ]);
        assert!(v.is_clean(), "{}", v.render_text());
    }

    #[test]
    fn i5_repeat_ack_needs_suppress_or_terminal() {
        let ack = |seq, at| ev(seq, at, 2, Some("T1.0"), EventKind::AckSend { to: 1, id: 7 });
        let v = run(&[ack(0, 5), ack(1, 9), ev(2, 9, 2, Some("T1.0"), EventKind::DedupSuppress { from: 1, id: 7 })]);
        assert!(v.is_clean(), "{}", v.render_text());
        let v = run(&[ack(0, 5), ack(1, 9)]);
        assert_eq!(v.divergences.len(), 1);
        assert_eq!(v.divergences[0].invariant, "I5");
        // Terminal at the receiver: the late duplicate is excused.
        let v = run(&[ack(0, 5), ev(1, 6, 2, Some("T1.0"), EventKind::Resolve { committed: true }), ack(2, 30)]);
        assert!(v.is_clean(), "{}", v.render_text());
    }

    #[test]
    fn i4_abort_must_land_or_be_absorbed() {
        let prop = ev(0, 10, 1, Some("T1.0"), EventKind::AbortPropagate { to: 4 });
        let v = run(std::slice::from_ref(&prop));
        assert_eq!(v.divergences.len(), 1, "{}", v.render_text());
        let d = &v.divergences[0];
        assert_eq!((d.invariant, d.rule, d.peer), ("I4", "R06/R07", 4));
        // Context falls back to the sender when the target never spoke.
        assert!(d.context.iter().any(|l| l.contains("abort-propagate") || l.contains("AP1")), "{:?}", d.context);
        let v = run(&[prop.clone(), ev(1, 30, 4, Some("T1.0"), EventKind::Resolve { committed: false })]);
        assert!(v.is_clean(), "{}", v.render_text());
        let v = run(&[prop.clone(), ev(1, 90, 1, Some("T1.0"), EventKind::RetransmitGiveUp { to: 4, id: 9 })]);
        assert!(v.is_clean(), "{}", v.render_text());
        let v = run(&[prop, ev(1, 50, 4, None, EventKind::Crash)]);
        assert!(v.is_clean(), "{}", v.render_text());
    }

    #[test]
    fn journal_replay_and_renderings() {
        let mut j = TraceJournal::default();
        j.record(5, 2, 0, Some("T1.0".into()), None, None, EventKind::Resolve { committed: true });
        j.record(9, 2, 0, Some("T1.0".into()), None, None, EventKind::Serve { from: 1, method: "m".into() });
        let v = check_journal(&j);
        assert_eq!(v.divergences.len(), 1);
        let text = v.render_text();
        assert!(text.contains("first divergence: I3(R02)"), "{text}");
        let json = v.render_json();
        assert!(json.contains("\"invariant\":\"I3\""), "{json}");
    }
}
