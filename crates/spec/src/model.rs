//! The executable reference model: a small-step transition system over
//! abstract protocol configurations.
//!
//! The model is deliberately independent of `core::peer` — it describes
//! what the paper's nested-recovery protocol (§3) is *allowed* to do,
//! not how the simulator does it. A configuration ([`State`]) is the
//! per-peer abstract frame (phase, forward-log length, compensation
//! progress, outstanding children) plus the multiset of undelivered
//! messages. [`SpecConfig::successors`] enumerates every enabled
//! transition; the bounded checker ([`crate::check`]) explores all
//! interleavings, and the conformance checker ([`crate::conform`])
//! replays real trace journals against the same rule vocabulary.
//!
//! ## Transition rules
//!
//! | Rule | Step |
//! |------|------|
//! | R01  | submit: the origin opens the transaction and invokes its children |
//! | R02  | serve: an invoke is delivered; the provider joins and invokes its own children |
//! | R03  | materialize: a child's results are delivered and merged (one forward-log record) |
//! | R04  | complete: all children answered; log own record; return results up (origin: commit) |
//! | R05  | fault: the faulty peer's own work fails; compensate, fault up, abort down |
//! | R06  | abort-up: a fault is delivered; the parent compensates and spreads the abort |
//! | R07  | abort-down: an abort is delivered; the subordinate compensates and forwards it |
//! | R08  | compensate-op: undo one forward-log record (strictly decreasing index — §3.1) |
//! | R09  | commit: a commit is delivered; the subordinate finalizes and forwards it |
//! | R10  | crash: a peer loses volatile state and recovers by presumed abort (§4) |
//!
//! ## Invariant catalogue
//!
//! | Id | Invariant | Checked by |
//! |----|-----------|------------|
//! | I1 | atomicity: at quiescence all participants agree with the origin's outcome (modulo churn), and compensation is complete at aborted peers | final states of the bounded checker |
//! | I2 | compensation undoes forward-log records in strictly decreasing index order | every R08 step; conformance over `compensate-op` events (Monitor M001) |
//! | I3 | terminal means terminal: no forward activity after commit, at most one terminal decision per epoch | every step; conformance (Monitor M002) |
//! | I4 | every propagated abort lands: no peer is left non-terminal at quiescence | final states; conformance end-of-run (Monitor M004) |
//! | I5 | at-most-once processing per receiver epoch | conformance over the delivery layer (Monitor M003) |

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// Where a peer is in its transaction lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Not (yet) part of the transaction.
    Idle,
    /// Serving: children invoked, results outstanding, own work pending.
    Working,
    /// Results returned to the invoker; in doubt, awaiting the outcome.
    Done,
    /// Undoing forward-log records in reverse order.
    Compensating,
    /// Terminal: the transaction committed here.
    Committed,
    /// Terminal: the transaction aborted here and compensation is complete.
    Aborted,
}

impl Phase {
    /// Single-letter tag used in canonical state keys.
    fn tag(self) -> char {
        match self {
            Phase::Idle => 'I',
            Phase::Working => 'W',
            Phase::Done => 'D',
            Phase::Compensating => 'X',
            Phase::Committed => 'C',
            Phase::Aborted => 'A',
        }
    }

    /// True for the two terminal phases.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Committed | Phase::Aborted)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Idle => "idle",
            Phase::Working => "working",
            Phase::Done => "done",
            Phase::Compensating => "compensating",
            Phase::Committed => "committed",
            Phase::Aborted => "aborted",
        })
    }
}

/// One peer's abstract frame.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PeerFrame {
    /// Lifecycle phase.
    pub phase: Phase,
    /// Forward-log records written (one per materialized child + one for
    /// the peer's own completed work).
    pub log: u8,
    /// Forward-log records undone so far.
    pub undone: u8,
    /// Index of the last record undone, for the §3.1 order check.
    pub last_undo: Option<u8>,
    /// Children invoked but not yet answered.
    pub pending: BTreeSet<u32>,
    /// Whether the peer ever served the transaction (so we know which
    /// children it invoked when spreading an abort).
    pub served: bool,
    /// Whether the peer crashed (presumed-abort recovery ran here).
    pub crashed: bool,
}

impl PeerFrame {
    fn idle() -> PeerFrame {
        PeerFrame {
            phase: Phase::Idle,
            log: 0,
            undone: 0,
            last_undo: None,
            pending: BTreeSet::new(),
            served: false,
            crashed: false,
        }
    }
}

/// Message kinds on the abstract network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Parent invokes a child's service.
    Invoke,
    /// Child returns results to its parent.
    Result,
    /// Child raises a fault to its parent (abort propagates up).
    Fault,
    /// Parent aborts a subordinate (abort propagates down).
    Abort,
    /// Parent finalizes a subordinate (commit propagates down).
    Commit,
}

impl MsgKind {
    fn tag(self) -> char {
        match self {
            MsgKind::Invoke => 'i',
            MsgKind::Result => 'r',
            MsgKind::Fault => 'f',
            MsgKind::Abort => 'a',
            MsgKind::Commit => 'c',
        }
    }
}

/// One undelivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Msg {
    /// Sender.
    pub from: u32,
    /// Receiver.
    pub to: u32,
    /// Kind.
    pub kind: MsgKind,
}

/// An abstract protocol configuration: peer frames plus the in-flight
/// message multiset.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct State {
    /// Frames, keyed by peer id.
    pub peers: BTreeMap<u32, PeerFrame>,
    /// Undelivered messages with multiplicity.
    pub net: BTreeMap<Msg, u8>,
    /// Whether the transaction was submitted (R01 fired).
    pub started: bool,
    /// Whether the one modeled crash has fired.
    pub crashed_once: bool,
}

impl State {
    /// Canonical key: a deterministic rendering that uniquely identifies
    /// the configuration. Used for visited-set hashing and digests.
    #[must_use]
    pub fn key(&self) -> String {
        let mut k = String::with_capacity(64);
        for (p, f) in &self.peers {
            let _ = write!(k, "{}{}l{}u{}", p, f.phase.tag(), f.log, f.undone);
            if let Some(lu) = f.last_undo {
                let _ = write!(k, "@{lu}");
            }
            if !f.pending.is_empty() {
                k.push('p');
                for c in &f.pending {
                    let _ = write!(k, "{c},");
                }
            }
            if f.served {
                k.push('s');
            }
            if f.crashed {
                k.push('!');
            }
            k.push(';');
        }
        k.push('|');
        for (m, n) in &self.net {
            let _ = write!(k, "{}{}{}x{n};", m.from, m.kind.tag(), m.to);
        }
        if self.started {
            k.push('S');
        }
        if self.crashed_once {
            k.push('K');
        }
        k
    }

    fn send(&mut self, from: u32, to: u32, kind: MsgKind, copies: u8) {
        *self.net.entry(Msg { from, to, kind }).or_insert(0) += copies;
    }

    fn consume(&mut self, m: Msg) {
        if let Some(n) = self.net.get_mut(&m) {
            *n -= 1;
            if *n == 0 {
                self.net.remove(&m);
            }
        }
    }
}

/// One enabled transition out of a configuration.
#[derive(Debug, Clone)]
pub struct SpecStep {
    /// Transition rule (`R01` … `R10`).
    pub rule: &'static str,
    /// Human-readable description of the step.
    pub detail: String,
    /// The successor configuration.
    pub next: State,
    /// An invariant violated *by this step* (I2 order violations are
    /// per-transition), if any.
    pub violation: Option<(&'static str, String)>,
}

/// A small protocol configuration for the bounded checker.
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Name shown in reports.
    pub name: String,
    /// Origin (root) peer.
    pub origin: u32,
    /// Invocation-tree edges (parent, child).
    pub edges: Vec<(u32, u32)>,
    /// Peer whose own work faults after its children answer (R05).
    pub fault_at: Option<u32>,
    /// Peer that may crash once while working or in doubt (R10).
    pub crash_at: Option<u32>,
    /// Deliver each returned result twice (duplicate delivery).
    pub dup_results: bool,
    /// Broken-peer variant: compensate in forward log order instead of
    /// reverse (`PeerConfig::compensate_in_log_order` in `core`). The
    /// checker must refute this with an I2 counterexample.
    pub broken_forward_compensation: bool,
}

impl SpecConfig {
    /// A plain configuration with no failures.
    #[must_use]
    pub fn new(name: &str, origin: u32, edges: &[(u32, u32)]) -> SpecConfig {
        SpecConfig {
            name: name.to_string(),
            origin,
            edges: edges.to_vec(),
            fault_at: None,
            crash_at: None,
            dup_results: false,
            broken_forward_compensation: false,
        }
    }

    /// The children `peer` invokes, in edge order.
    #[must_use]
    pub fn children(&self, peer: u32) -> Vec<u32> {
        self.edges.iter().filter(|(p, _)| *p == peer).map(|(_, c)| *c).collect()
    }

    /// The peer that invokes `peer`, if any.
    #[must_use]
    pub fn parent(&self, peer: u32) -> Option<u32> {
        self.edges.iter().find(|(_, c)| *c == peer).map(|(p, _)| *p)
    }

    /// Every peer in the tree, sorted.
    #[must_use]
    pub fn peers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.edges.iter().flat_map(|(a, b)| [*a, *b]).chain([self.origin]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The initial configuration: everyone idle, nothing in flight.
    #[must_use]
    pub fn initial(&self) -> State {
        State {
            peers: self.peers().into_iter().map(|p| (p, PeerFrame::idle())).collect(),
            net: BTreeMap::new(),
            started: false,
            crashed_once: false,
        }
    }

    /// The clean configuration catalogue the checker explores: chains and
    /// forks derived from the paper's Figure 1 / Figure 2 trees, with
    /// fault, crash, and duplicate-delivery variants.
    #[must_use]
    pub fn catalogue() -> Vec<SpecConfig> {
        let mut v = Vec::new();
        v.push(SpecConfig::new("chain2", 1, &[(1, 2)]));
        v.push(SpecConfig::new("chain3", 1, &[(1, 2), (2, 3)]));
        let mut c = SpecConfig::new("chain3-abort", 1, &[(1, 2), (2, 3)]);
        c.fault_at = Some(3);
        v.push(c);
        let mut c = SpecConfig::new("fork3-abort", 1, &[(1, 2), (1, 3)]);
        c.fault_at = Some(3);
        v.push(c);
        let mut c = SpecConfig::new("fork4-abort", 1, &[(1, 2), (1, 3), (1, 4)]);
        c.fault_at = Some(4);
        v.push(c);
        // Figure 1 fragment: AP1 → {AP2, AP3}, AP3 → AP4 (the hotel/flight
        // fork with one nested provider).
        v.push(SpecConfig::new("fig1-frag", 1, &[(1, 2), (1, 3), (3, 4)]));
        let mut c = SpecConfig::new("fig1-frag-abort", 1, &[(1, 2), (1, 3), (3, 4)]);
        c.fault_at = Some(4);
        v.push(c);
        // Figure 2 fragment: the chained path AP1 → AP2 → {AP3, AP4}.
        v.push(SpecConfig::new("fig2-frag", 1, &[(1, 2), (2, 3), (2, 4)]));
        let mut c = SpecConfig::new("chain3-crash", 1, &[(1, 2), (2, 3)]);
        c.crash_at = Some(2);
        v.push(c);
        let mut c = SpecConfig::new("fork3-crash", 1, &[(1, 2), (1, 3)]);
        c.crash_at = Some(3);
        v.push(c);
        let mut c = SpecConfig::new("chain2-dup", 1, &[(1, 2)]);
        c.dup_results = true;
        v.push(c);
        let mut c = SpecConfig::new("fork3-abort-dup", 1, &[(1, 2), (1, 3)]);
        c.fault_at = Some(3);
        c.dup_results = true;
        v.push(c);
        v
    }

    /// The broken-peer variant the checker must refute: a fork where the
    /// origin can materialize two sibling results before the third child
    /// faults, then compensates in *forward* log order. Mirrors
    /// `PeerConfig::compensate_in_log_order` in `core`.
    #[must_use]
    pub fn broken_variant() -> SpecConfig {
        let mut c = SpecConfig::new("fork4-abort-broken", 1, &[(1, 2), (1, 3), (1, 4)]);
        c.fault_at = Some(4);
        c.broken_forward_compensation = true;
        c
    }

    /// Look up a catalogue configuration (or the broken variant) by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<SpecConfig> {
        if name == "fork4-abort-broken" {
            return Some(SpecConfig::broken_variant());
        }
        SpecConfig::catalogue().into_iter().find(|c| c.name == name)
    }

    /// Begin compensating `peer`: clear outstanding children and move to
    /// `Compensating` (or directly to `Aborted` when the log is empty).
    fn enter_compensation(frame: &mut PeerFrame) {
        frame.pending.clear();
        frame.phase = if frame.log == 0 { Phase::Aborted } else { Phase::Compensating };
    }

    /// Abort `peer`'s subtree: send `Abort` to every child it invoked,
    /// except `except` (a child that already aborted itself).
    fn abort_children(&self, s: &mut State, peer: u32, except: Option<u32>) {
        if !s.peers[&peer].served {
            return;
        }
        for c in self.children(peer) {
            if Some(c) != except {
                s.send(peer, c, MsgKind::Abort, 1);
            }
        }
    }

    /// Every enabled transition out of `s`, in deterministic order.
    ///
    /// # Panics
    ///
    /// Only if `s` was not produced from this configuration's
    /// [`SpecConfig::initial`] state (every configured peer must have a
    /// frame).
    // One block per rule R01..R10; splitting the rules across functions
    // would obscure the one-place reading of the transition relation.
    #[allow(clippy::too_many_lines)]
    #[must_use]
    pub fn successors(&self, s: &State) -> Vec<SpecStep> {
        let mut steps = Vec::new();

        // R01 — submit at the origin.
        if !s.started {
            let mut n = s.clone();
            n.started = true;
            let f = n.peers.get_mut(&self.origin).expect("origin frame");
            f.phase = Phase::Working;
            f.served = true;
            f.pending = self.children(self.origin).into_iter().collect();
            for c in self.children(self.origin) {
                n.send(self.origin, c, MsgKind::Invoke, 1);
            }
            steps.push(SpecStep {
                rule: "R01",
                detail: format!("submit at AP{}", self.origin),
                next: n,
                violation: None,
            });
            return steps; // Nothing else can be enabled before submit.
        }

        // Deliveries: one transition per distinct in-flight message.
        for &m in s.net.keys() {
            let mut n = s.clone();
            n.consume(m);
            let (rule, detail) = self.deliver(&mut n, m);
            steps.push(SpecStep { rule, detail, next: n, violation: None });
        }

        // Local rules, per peer.
        for (&p, f) in &s.peers {
            match f.phase {
                Phase::Working if f.pending.is_empty() => {
                    if self.fault_at == Some(p) {
                        // R05 — the peer's own work faults: its own record
                        // is never logged; compensate what materialized,
                        // raise the fault up, abort the subtree.
                        let mut n = s.clone();
                        if let Some(parent) = self.parent(p) {
                            n.send(p, parent, MsgKind::Fault, 1);
                        }
                        self.abort_children(&mut n, p, None);
                        SpecConfig::enter_compensation(n.peers.get_mut(&p).expect("frame"));
                        steps.push(SpecStep {
                            rule: "R05",
                            detail: format!("AP{p} faults during its own work"),
                            next: n,
                            violation: None,
                        });
                    } else {
                        // R04 — complete: log the peer's own work; the
                        // origin's completion is the commit decision.
                        let mut n = s.clone();
                        let f = n.peers.get_mut(&p).expect("frame");
                        f.log += 1;
                        if p == self.origin {
                            f.phase = Phase::Committed;
                            for c in self.children(p) {
                                n.send(p, c, MsgKind::Commit, 1);
                            }
                            steps.push(SpecStep {
                                rule: "R04",
                                detail: format!("AP{p} completes; origin commits"),
                                next: n,
                                violation: None,
                            });
                        } else {
                            f.phase = Phase::Done;
                            let parent = self.parent(p).expect("non-origin has a parent");
                            let copies = if self.dup_results { 2 } else { 1 };
                            n.send(p, parent, MsgKind::Result, copies);
                            steps.push(SpecStep {
                                rule: "R04",
                                detail: format!("AP{p} completes and returns results to AP{parent}"),
                                next: n,
                                violation: None,
                            });
                        }
                    }
                }
                Phase::Compensating => {
                    // R08 — undo one forward-log record. §3.1 requires
                    // strictly decreasing indices; the broken variant
                    // replays the log forward instead.
                    let mut n = s.clone();
                    let f = n.peers.get_mut(&p).expect("frame");
                    let idx = if self.broken_forward_compensation { f.undone } else { f.log - 1 - f.undone };
                    let violation = match f.last_undo {
                        Some(prev) if idx >= prev => Some((
                            "I2",
                            format!(
                                "AP{p} undoes log record {idx} after record {prev}; \
                                 §3.1 requires strictly decreasing order"
                            ),
                        )),
                        _ => None,
                    };
                    f.last_undo = Some(idx);
                    f.undone += 1;
                    if f.undone == f.log {
                        f.phase = Phase::Aborted;
                    }
                    steps.push(SpecStep {
                        rule: "R08",
                        detail: format!("AP{p} undoes log record {idx}"),
                        next: n,
                        violation,
                    });
                }
                _ => {}
            }

            // R10 — crash: volatile state is lost; recovery replays the
            // durable log and presumes abort, pushing the abort both ways.
            if self.crash_at == Some(p) && !s.crashed_once && matches!(f.phase, Phase::Working | Phase::Done) {
                let mut n = s.clone();
                n.crashed_once = true;
                if let Some(parent) = self.parent(p) {
                    n.send(p, parent, MsgKind::Fault, 1);
                }
                self.abort_children(&mut n, p, None);
                let f = n.peers.get_mut(&p).expect("frame");
                f.crashed = true;
                f.last_undo = None; // new epoch: the order rule re-arms
                SpecConfig::enter_compensation(f);
                steps.push(SpecStep {
                    rule: "R10",
                    detail: format!("AP{p} crashes and recovers by presumed abort"),
                    next: n,
                    violation: None,
                });
            }
        }

        steps
    }

    /// Apply the delivery of `m` to `n` (the message is already consumed)
    /// and name the step. Deliveries that find the receiver in a phase
    /// the protocol has already moved past are absorbed as no-ops — that
    /// is the protocol's own duplicate/stale-message discipline (I5's
    /// terminal excuses in the conformance checker mirror this).
    fn deliver(&self, n: &mut State, m: Msg) -> (&'static str, String) {
        let to = m.to;
        let phase = n.peers[&to].phase;
        match m.kind {
            MsgKind::Invoke => {
                if phase == Phase::Idle {
                    let f = n.peers.get_mut(&to).expect("frame");
                    f.phase = Phase::Working;
                    f.served = true;
                    f.pending = self.children(to).into_iter().collect();
                    for c in self.children(to) {
                        n.send(to, c, MsgKind::Invoke, 1);
                    }
                    ("R02", format!("AP{to} serves the invocation from AP{}", m.from))
                } else {
                    ("R02", format!("stale invoke dropped at AP{to} ({phase})"))
                }
            }
            MsgKind::Result => {
                if phase == Phase::Working && n.peers[&to].pending.contains(&m.from) {
                    let f = n.peers.get_mut(&to).expect("frame");
                    f.pending.remove(&m.from);
                    f.log += 1;
                    ("R03", format!("AP{to} materializes results from AP{}", m.from))
                } else {
                    ("R03", format!("stale result from AP{} dropped at AP{to} ({phase})", m.from))
                }
            }
            MsgKind::Fault => {
                if matches!(phase, Phase::Working | Phase::Done) {
                    // Nested recovery (§3.2): the parent compensates its
                    // own effects, spreads the abort to the rest of the
                    // subtree, and — unless it is the origin — raises the
                    // fault one level further up.
                    if let Some(parent) = self.parent(to) {
                        n.send(to, parent, MsgKind::Fault, 1);
                    }
                    self.abort_children(n, to, Some(m.from));
                    SpecConfig::enter_compensation(n.peers.get_mut(&to).expect("frame"));
                    ("R06", format!("AP{to} aborts on the fault from AP{}", m.from))
                } else {
                    ("R06", format!("fault from AP{} absorbed at AP{to} ({phase})", m.from))
                }
            }
            MsgKind::Abort => {
                match phase {
                    Phase::Working | Phase::Done => {
                        self.abort_children(n, to, None);
                        SpecConfig::enter_compensation(n.peers.get_mut(&to).expect("frame"));
                        ("R07", format!("AP{to} aborts on request from AP{}", m.from))
                    }
                    Phase::Idle => {
                        // Abort outran the invoke: nothing to undo.
                        n.peers.get_mut(&to).expect("frame").phase = Phase::Aborted;
                        ("R07", format!("AP{to} aborts before ever serving"))
                    }
                    _ => ("R07", format!("abort absorbed at AP{to} ({phase})")),
                }
            }
            MsgKind::Commit => {
                if phase == Phase::Done {
                    n.peers.get_mut(&to).expect("frame").phase = Phase::Committed;
                    for c in self.children(to) {
                        n.send(to, c, MsgKind::Commit, 1);
                    }
                    ("R09", format!("AP{to} commits"))
                } else {
                    ("R09", format!("commit absorbed at AP{to} ({phase})"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_quiet() {
        let cfg = SpecConfig::new("t", 1, &[(1, 2)]);
        let s = cfg.initial();
        assert!(s.net.is_empty());
        assert!(!s.started);
        assert_eq!(s.peers.len(), 2);
        // Only R01 is enabled.
        let steps = cfg.successors(&s);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].rule, "R01");
    }

    #[test]
    fn canonical_keys_distinguish_states() {
        let cfg = SpecConfig::new("t", 1, &[(1, 2)]);
        let s = cfg.initial();
        let n = &cfg.successors(&s)[0].next;
        assert_ne!(s.key(), n.key());
        assert_eq!(s.key(), cfg.initial().key());
    }

    #[test]
    fn tree_helpers() {
        let cfg = SpecConfig::new("t", 1, &[(1, 2), (1, 3), (3, 4)]);
        assert_eq!(cfg.children(1), vec![2, 3]);
        assert_eq!(cfg.parent(4), Some(3));
        assert_eq!(cfg.parent(1), None);
        assert_eq!(cfg.peers(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn catalogue_names_are_unique_and_resolvable() {
        let cat = SpecConfig::catalogue();
        let mut names: Vec<&str> = cat.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
        for c in &cat {
            assert!(SpecConfig::by_name(&c.name).is_some());
        }
        assert!(SpecConfig::by_name("fork4-abort-broken").is_some());
        assert!(SpecConfig::by_name("nope").is_none());
    }
}
