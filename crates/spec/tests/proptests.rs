//! Property-based tests for the reference model.
//!
//! - Bounded exploration is deterministic: the same configuration yields
//!   the same visited-state count and digest on every run, at any bound.
//! - Conformance verdicts on recorded fig1/fig2 journals are byte-stable
//!   across independent scenario re-runs and journal round-trips.

#![forbid(unsafe_code)]

use axml_core::scenarios::ScenarioBuilder;
use axml_spec::model::SpecConfig;
use axml_spec::{check, check_journal};
use axml_trace::TraceJournal;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exploration_is_deterministic(idx in 0usize..13, max_states in 16usize..4096) {
        let catalogue = SpecConfig::catalogue();
        let cfg = if idx == catalogue.len() {
            SpecConfig::broken_variant()
        } else {
            catalogue[idx % catalogue.len()].clone()
        };
        let a = check(&cfg, max_states);
        let b = check(&cfg, max_states);
        prop_assert_eq!(a.states, b.states);
        prop_assert_eq!(a.transitions, b.transitions);
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.truncated, b.truncated);
        prop_assert_eq!(a.violation_count, b.violation_count);
        prop_assert_eq!(a.render_json(), b.render_json());
        // A looser bound explores a superset of a tighter one.
        let wide = check(&cfg, max_states * 4);
        prop_assert!(wide.states >= a.states);
    }
}

/// Runs a shipped figure scenario with tracing on and returns the
/// journal as JSON lines.
fn recorded_journal(fig2: bool) -> String {
    let b = if fig2 { ScenarioBuilder::fig2() } else { ScenarioBuilder::fig1() };
    let mut s = b.traced().build();
    s.run();
    s.trace().expect("traced run").to_json_lines()
}

#[test]
fn conformance_on_recorded_figures_is_byte_stable() {
    for fig2 in [false, true] {
        let name = if fig2 { "fig2" } else { "fig1" };
        let lines_a = recorded_journal(fig2);
        let lines_b = recorded_journal(fig2);
        assert_eq!(lines_a, lines_b, "{name}: traced re-runs must journal identically");
        let journal = TraceJournal::from_json_lines(&lines_a).expect("journal parses");
        let verdict_a = check_journal(&journal);
        assert!(verdict_a.is_clean(), "{name}: {}", verdict_a.render_text());
        assert!(verdict_a.events > 0);
        // Byte-stable verdict across a journal round-trip and a re-check.
        let reparsed = TraceJournal::from_json_lines(&lines_b).expect("journal parses");
        let verdict_b = check_journal(&reparsed);
        assert_eq!(verdict_a.render_json(), verdict_b.render_json(), "{name}");
        assert_eq!(verdict_a.render_text(), verdict_b.render_text(), "{name}");
    }
}

#[test]
fn conformance_on_recorded_abort_is_byte_stable() {
    // The abort path exercises compensation + abort propagation: the
    // conformance verdict must stay clean and byte-stable there too.
    let run = || {
        let mut b = ScenarioBuilder::fig1().fault_at(2).traced();
        b.seed = 7;
        let mut s = b.build();
        s.run();
        let j = s.trace().expect("traced run");
        (j.to_json_lines(), check_journal(j).render_json())
    };
    let (lines_a, verdict_a) = run();
    let (lines_b, verdict_b) = run();
    assert_eq!(lines_a, lines_b);
    assert_eq!(verdict_a, verdict_b);
    assert!(verdict_a.contains("\"divergences\":[]"), "{verdict_a}");
}
