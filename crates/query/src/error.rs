//! Query-layer errors.

use axml_xml::TreeError;
use std::fmt;

/// An error while parsing or evaluating a query/update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error in a path, select query, or action.
    Syntax {
        /// What was being parsed.
        what: &'static str,
        /// Error description.
        message: String,
    },
    /// The underlying tree rejected an operation.
    Tree(TreeError),
    /// An update's `<data>` part was required but missing.
    MissingData,
    /// The location query selected no target nodes and the action requires
    /// at least one (configurable; see [`crate::UpdateAction`]).
    EmptyLocation,
    /// A structural address did not resolve (replica divergence).
    PathUnresolved(String),
}

impl QueryError {
    pub(crate) fn syntax(what: &'static str, message: impl Into<String>) -> Self {
        QueryError::Syntax { what, message: message.into() }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { what, message } => write!(f, "syntax error in {what}: {message}"),
            QueryError::Tree(e) => write!(f, "tree error: {e}"),
            QueryError::MissingData => write!(f, "update action requires a <data> part"),
            QueryError::EmptyLocation => write!(f, "location query selected no nodes"),
            QueryError::PathUnresolved(p) => write!(f, "structural path does not resolve: {p}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<TreeError> for QueryError {
    fn from(e: TreeError) -> Self {
        QueryError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryError::syntax("path", "bad step").to_string().contains("path"));
        assert!(QueryError::Tree(TreeError::StaleNode).to_string().contains("stale"));
        assert!(QueryError::MissingData.to_string().contains("<data>"));
        assert!(QueryError::EmptyLocation.to_string().contains("no nodes"));
        assert!(QueryError::PathUnresolved("/0/1".into()).to_string().contains("/0/1"));
    }

    #[test]
    fn from_tree_error() {
        let q: QueryError = TreeError::StaleNode.into();
        assert_eq!(q, QueryError::Tree(TreeError::StaleNode));
    }
}
