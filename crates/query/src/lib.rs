#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Query and update language over [`axml_xml`] trees.
//!
//! The paper expresses operations in a `select … from … where …` dialect
//! (§3.1):
//!
//! ```text
//! Select p/citizenship from p in ATPList//player
//!   where p/name/lastname = Federer;
//! ```
//!
//! and update actions as XQuery!-style actions with a `<location>` query
//! plus, for inserts/replaces, a `<data>` payload:
//!
//! ```text
//! <action type="delete"><location>Select …</location></action>
//! ```
//!
//! This crate implements:
//!
//! - [`PathExpr`]: path expressions (`/` child, `//` descendant, `*`
//!   wildcard, `..` parent, `[pred]` predicates) with evaluation in
//!   document order;
//! - [`SelectQuery`]: the select-from-where form, with existential
//!   comparison semantics in the `where` clause;
//! - [`UpdateAction`]: the four action types (`insert`, `delete`,
//!   `replace`, `query`) and their application to a document, reporting
//!   the **primitive effects** (what was inserted where, which subtrees
//!   were deleted from which positions) that the transaction layer logs to
//!   build compensating operations at run time;
//! - [`NodePath`]: stable root-relative structural addresses, the
//!   peer-independent way to refer to a node across document replicas.
//!
//! # Example
//!
//! ```
//! use axml_xml::Document;
//! use axml_query::SelectQuery;
//!
//! let doc = Document::parse(
//!     "<ATPList><player><name><lastname>Federer</lastname></name>\
//!      <citizenship>Swiss</citizenship></player></ATPList>").unwrap();
//! let q = SelectQuery::parse(
//!     "Select p/citizenship from p in ATPList//player \
//!      where p/name/lastname = Federer;").unwrap();
//! let hits = q.eval(&doc).unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(doc.text_content(hits[0]).unwrap(), "Swiss");
//! ```

pub mod cond;
pub mod error;
pub mod nodepath;
pub mod path;
pub mod select;
pub mod update;

pub use cond::{CmpOp, Condition, Operand};
pub use error::QueryError;
pub use nodepath::NodePath;
pub use path::{Axis, NameTest, PathExpr, Pred, Step};
pub use select::SelectQuery;
pub use update::{ActionType, Effect, InsertPos, Locator, UpdateAction, UpdateReport};
