//! Path expressions: parsing and evaluation.
//!
//! Grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! path      := ['/' | '//'] step ( ('/' | '//') step )*
//! step      := ('..' | '.' | '*' | name) pred*
//! pred      := '[' (position | '@'name cmp value | name cmp value) ']'
//! cmp       := '=' | '!='
//! value     := quoted-string | bare-word
//! ```
//!
//! Semantics follow XPath where the paper relies on it: `A//B` selects `B`
//! descendants of `A`, a leading name matches the document root element
//! ("ATPList//player" starts at the root), `..` is the parent axis, and
//! results are returned **deduplicated in document order** — the property
//! the compensation log needs so reverse-order undo visits nodes
//! consistently.

use crate::error::QueryError;
use axml_xml::{Document, NodeId, QName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Direct children (`/step`).
    Child,
    /// All descendants (`//step`).
    Descendant,
    /// The parent (`..`).
    Parent,
    /// The context node itself (`.`).
    SelfNode,
}

/// The name test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameTest {
    /// Match any element (`*`).
    Any,
    /// Match elements with this exact name.
    Name(QName),
}

impl NameTest {
    fn matches(&self, doc: &Document, node: NodeId) -> bool {
        match self {
            NameTest::Any => doc.name(node).is_ok(),
            NameTest::Name(q) => doc.name(node).map(|n| n == q).unwrap_or(false),
        }
    }
}

/// A predicate filtering the nodes a step selects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pred {
    /// `[3]` — 1-based position among the step's matches for one context.
    Position(usize),
    /// `[@rank=1]` / `[@rank!=1]` — attribute comparison.
    Attr {
        /// Attribute name.
        name: QName,
        /// Expected value.
        value: String,
        /// True for `=`, false for `!=`.
        eq: bool,
    },
    /// `[lastname=Federer]` — existential child-element text comparison.
    ChildText {
        /// Child element name.
        name: QName,
        /// Expected text.
        value: String,
        /// True for `=`, false for `!=`.
        eq: bool,
    },
}

impl Pred {
    fn matches(&self, doc: &Document, node: NodeId, position: usize) -> bool {
        match self {
            Pred::Position(p) => position == *p,
            Pred::Attr { name, value, eq } => {
                let actual = doc.attr(node, &name.as_string());
                let m = actual == Some(value.as_str());
                if *eq {
                    m
                } else {
                    !m
                }
            }
            Pred::ChildText { name, value, eq } => {
                let m = doc
                    .children(node)
                    .map(|cs| {
                        cs.iter().any(|c| {
                            doc.name(*c).map(|n| n == name).unwrap_or(false)
                                && doc.text_content(*c).map(|t| t.trim() == value).unwrap_or(false)
                        })
                    })
                    .unwrap_or(false);
                if *eq {
                    m
                } else {
                    !m
                }
            }
        }
    }
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Axis to navigate.
    pub axis: Axis,
    /// Name test applied to candidate nodes.
    pub test: NameTest,
    /// Predicates, applied in order.
    pub preds: Vec<Pred>,
}

impl Step {
    /// A child step with a plain name and no predicates.
    pub fn child(name: impl Into<QName>) -> Step {
        Step { axis: Axis::Child, test: NameTest::Name(name.into()), preds: Vec::new() }
    }

    /// A descendant step with a plain name.
    pub fn descendant(name: impl Into<QName>) -> Step {
        Step { axis: Axis::Descendant, test: NameTest::Name(name.into()), preds: Vec::new() }
    }

    /// The parent step (`..`).
    pub fn parent() -> Step {
        Step { axis: Axis::Parent, test: NameTest::Any, preds: Vec::new() }
    }
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathExpr {
    /// The steps, applied left to right.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Parses a path expression.
    ///
    /// ```
    /// use axml_query::PathExpr;
    /// let p = PathExpr::parse("ATPList//player/citizenship").unwrap();
    /// assert_eq!(p.steps.len(), 3);
    /// ```
    pub fn parse(input: &str) -> Result<PathExpr, QueryError> {
        let mut px = Parser { input, pos: 0 };
        let path = px.parse_path()?;
        px.skip_ws();
        if px.pos != px.input.len() {
            return Err(QueryError::syntax("path", format!("trailing input at `{}`", &px.input[px.pos..])));
        }
        Ok(path)
    }

    /// Evaluates this path as an **absolute** expression: the context is a
    /// virtual document node whose only child is the root element (so a
    /// leading name step matches the root, as in `ATPList//player`).
    pub fn eval(&self, doc: &Document) -> Vec<NodeId> {
        self.eval_with_virtual_root(doc)
    }

    fn eval_with_virtual_root(&self, doc: &Document) -> Vec<NodeId> {
        let root = doc.root();
        let mut ctx: Vec<NodeId> = Vec::new();
        // First step is applied against the virtual document node.
        match self.steps.first() {
            None => return vec![],
            Some(first) => {
                match first.axis {
                    Axis::Child => {
                        // Candidates: just the root element.
                        let mut matches = Vec::new();
                        if first.test.matches(doc, root) {
                            matches.push(root);
                        }
                        apply_preds(doc, first, &mut matches);
                        ctx = matches;
                    }
                    Axis::Descendant => {
                        let mut matches: Vec<NodeId> =
                            doc.descendants_and_self(root).filter(|n| first.test.matches(doc, *n)).collect();
                        apply_preds(doc, first, &mut matches);
                        ctx = matches;
                    }
                    Axis::SelfNode => ctx.push(root),
                    Axis::Parent => { /* document node has no parent: empty */ }
                }
            }
        }
        self.eval_steps_from(doc, ctx, 1)
    }

    /// Evaluates this path **relative** to `context` (all steps, including
    /// the first, navigate from the context node).
    pub fn eval_relative(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        self.eval_steps_from(doc, vec![context], 0)
    }

    fn eval_steps_from(&self, doc: &Document, mut ctx: Vec<NodeId>, from: usize) -> Vec<NodeId> {
        for step in &self.steps[from.min(self.steps.len())..] {
            let mut next: Vec<NodeId> = Vec::new();
            for &node in &ctx {
                let mut matches: Vec<NodeId> = match step.axis {
                    Axis::Child => doc
                        .children(node)
                        .map(|cs| cs.iter().copied().filter(|c| step.test.matches(doc, *c)).collect())
                        .unwrap_or_default(),
                    Axis::Descendant => {
                        let mut d: Vec<NodeId> =
                            doc.descendants_and_self(node).filter(|n| step.test.matches(doc, *n)).collect();
                        // descendant axis excludes self unless it re-matches below; XPath
                        // `//x` is descendant-or-self::node()/child::x — exclude the
                        // context node itself.
                        d.retain(|n| *n != node);
                        d
                    }
                    Axis::Parent => doc.parent(node).ok().flatten().into_iter().collect(),
                    Axis::SelfNode => vec![node],
                };
                apply_preds(doc, step, &mut matches);
                next.extend(matches);
            }
            ctx = dedup_document_order(doc, next);
        }
        ctx
    }

    /// Renders the path back to its textual form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            match step.axis {
                Axis::Child => {
                    if i > 0 {
                        out.push('/');
                    }
                }
                Axis::Descendant => out.push_str("//"),
                Axis::Parent => {
                    if i > 0 {
                        out.push('/');
                    }
                    out.push_str("..");
                    continue;
                }
                Axis::SelfNode => {
                    if i > 0 {
                        out.push('/');
                    }
                    out.push('.');
                    continue;
                }
            }
            match &step.test {
                NameTest::Any => out.push('*'),
                NameTest::Name(q) => out.push_str(&q.as_string()),
            }
            for p in &step.preds {
                match p {
                    Pred::Position(n) => out.push_str(&format!("[{n}]")),
                    Pred::Attr { name, value, eq } => {
                        out.push_str(&format!("[@{name}{}\"{value}\"]", if *eq { "=" } else { "!=" }))
                    }
                    Pred::ChildText { name, value, eq } => {
                        out.push_str(&format!("[{name}{}\"{value}\"]", if *eq { "=" } else { "!=" }))
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn apply_preds(doc: &Document, step: &Step, matches: &mut Vec<NodeId>) {
    for pred in &step.preds {
        let filtered: Vec<NodeId> =
            matches.iter().enumerate().filter(|(i, n)| pred.matches(doc, **n, i + 1)).map(|(_, n)| *n).collect();
        *matches = filtered;
    }
}

/// Deduplicates and sorts a node list into document order.
pub fn dedup_document_order(doc: &Document, mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    nodes.sort();
    nodes.dedup();
    nodes.sort_by(|a, b| doc.cmp_document_order(*a, *b).unwrap_or(std::cmp::Ordering::Equal));
    nodes
}

// ----------------------------------------------------------------------
// Parser.
// ----------------------------------------------------------------------

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn read_name(&mut self) -> Result<String, QueryError> {
        let start = self.pos;
        while let Some(c) = self.peek_char() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                // `..` must not be eaten as part of a name; stop if we're at
                // a `..` boundary and nothing consumed yet is a valid name.
                if c == '.' && self.input[self.pos..].starts_with("..") {
                    break;
                }
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(QueryError::syntax("path", format!("expected a name at `{}`", &self.input[self.pos..])));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_path(&mut self) -> Result<PathExpr, QueryError> {
        self.skip_ws();
        let mut steps = Vec::new();
        // Optional leading axis marker.
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            // A single leading '/' is allowed and means the same as none
            // (absolute path from the virtual document node).
            let _ = self.eat("/");
            Axis::Child
        };
        loop {
            steps.push(self.parse_step(axis)?);
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        Ok(PathExpr { steps })
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step, QueryError> {
        self.skip_ws();
        let (axis, test) = if self.eat("..") {
            (Axis::Parent, NameTest::Any)
        } else if self.input[self.pos..].starts_with('.') && !self.input[self.pos..].starts_with("..") {
            self.pos += 1;
            (Axis::SelfNode, NameTest::Any)
        } else if self.eat("*") {
            (axis, NameTest::Any)
        } else {
            let name = self.read_name()?;
            (axis, NameTest::Name(QName::new(&name)))
        };
        let mut preds = Vec::new();
        while self.eat("[") {
            preds.push(self.parse_pred()?);
            if !self.eat("]") {
                return Err(QueryError::syntax("path", "expected `]` closing a predicate"));
            }
        }
        Ok(Step { axis, test, preds })
    }

    fn parse_pred(&mut self) -> Result<Pred, QueryError> {
        self.skip_ws();
        // Position predicate: all digits.
        let rest = &self.input[self.pos..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].trim_start().starts_with(']') {
            self.pos += digits.len();
            let n: usize = digits.parse().map_err(|_| QueryError::syntax("path", "bad position predicate"))?;
            if n == 0 {
                return Err(QueryError::syntax("path", "positions are 1-based"));
            }
            self.skip_ws();
            return Ok(Pred::Position(n));
        }
        let is_attr = self.eat("@");
        let name = QName::new(&self.read_name()?);
        self.skip_ws();
        let eq = if self.eat("!=") {
            false
        } else if self.eat("=") {
            true
        } else {
            return Err(QueryError::syntax("path", "expected `=` or `!=` in predicate"));
        };
        self.skip_ws();
        let value = self.parse_value()?;
        Ok(if is_attr { Pred::Attr { name, value, eq } } else { Pred::ChildText { name, value, eq } })
    }

    fn parse_value(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        if let Some(q @ ('"' | '\'')) = self.peek_char() {
            self.pos += 1;
            let rest = &self.input[self.pos..];
            let end = rest.find(q).ok_or_else(|| QueryError::syntax("path", "unterminated quoted value"))?;
            let v = rest[..end].to_string();
            self.pos += end + 1;
            Ok(v)
        } else {
            let start = self.pos;
            while let Some(c) = self.peek_char() {
                if c == ']' || c.is_ascii_whitespace() {
                    break;
                }
                self.pos += c.len_utf8();
            }
            if self.pos == start {
                return Err(QueryError::syntax("path", "expected a value"));
            }
            Ok(self.input[start..self.pos].to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::Document;

    fn atp() -> Document {
        Document::parse(
            r#"<ATPList date="18042005">
                <player rank="1">
                    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
                    <citizenship>Swiss</citizenship>
                    <points>475</points>
                </player>
                <player rank="2">
                    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
                    <citizenship>Spanish</citizenship>
                    <points>390</points>
                </player>
            </ATPList>"#,
        )
        .unwrap()
    }

    fn texts(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|n| doc.text_content(*n).unwrap()).collect()
    }

    #[test]
    fn leading_name_matches_root() {
        let doc = atp();
        let p = PathExpr::parse("ATPList").unwrap();
        assert_eq!(p.eval(&doc), vec![doc.root()]);
        let p2 = PathExpr::parse("WrongName").unwrap();
        assert!(p2.eval(&doc).is_empty());
    }

    #[test]
    fn child_steps() {
        let doc = atp();
        let p = PathExpr::parse("ATPList/player/citizenship").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Swiss", "Spanish"]);
    }

    #[test]
    fn descendant_steps() {
        let doc = atp();
        let p = PathExpr::parse("ATPList//lastname").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Federer", "Nadal"]);
        let p2 = PathExpr::parse("//lastname").unwrap();
        assert_eq!(texts(&doc, &p2.eval(&doc)), vec!["Federer", "Nadal"]);
    }

    #[test]
    fn descendant_excludes_context() {
        let doc = atp();
        // ATPList//player: players are proper descendants.
        let p = PathExpr::parse("ATPList//ATPList").unwrap();
        assert!(p.eval(&doc).is_empty());
    }

    #[test]
    fn wildcard() {
        let doc = atp();
        let p = PathExpr::parse("ATPList/player/*").unwrap();
        assert_eq!(p.eval(&doc).len(), 6, "name, citizenship, points × 2");
    }

    #[test]
    fn parent_step() {
        let doc = atp();
        let p = PathExpr::parse("ATPList//lastname/..").unwrap();
        let hits = p.eval(&doc);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|n| doc.name(*n).unwrap().local == "name"));
        // Dedup: both lastname and firstname map to the same parent.
        let p2 = PathExpr::parse("ATPList//name/*/..").unwrap();
        assert_eq!(p2.eval(&doc).len(), 2);
    }

    #[test]
    fn self_step() {
        let doc = atp();
        let p = PathExpr::parse("ATPList/./player").unwrap();
        assert_eq!(p.eval(&doc).len(), 2);
    }

    #[test]
    fn attribute_predicate() {
        let doc = atp();
        let p = PathExpr::parse("ATPList/player[@rank=1]/citizenship").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Swiss"]);
        let p = PathExpr::parse("ATPList/player[@rank!=1]/citizenship").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Spanish"]);
        let p = PathExpr::parse(r#"ATPList/player[@rank="2"]/points"#).unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["390"]);
    }

    #[test]
    fn child_text_predicate() {
        let doc = atp();
        let p = PathExpr::parse("ATPList//name[lastname=Federer]/firstname").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Roger"]);
        let p = PathExpr::parse("ATPList/player[citizenship=Spanish]").unwrap();
        assert_eq!(p.eval(&doc).len(), 1);
    }

    #[test]
    fn position_predicate() {
        let doc = atp();
        let p = PathExpr::parse("ATPList/player[2]/citizenship").unwrap();
        assert_eq!(texts(&doc, &p.eval(&doc)), vec!["Spanish"]);
        let p = PathExpr::parse("ATPList/player[1]").unwrap();
        assert_eq!(p.eval(&doc).len(), 1);
        let p = PathExpr::parse("ATPList/player[9]").unwrap();
        assert!(p.eval(&doc).is_empty());
    }

    #[test]
    fn relative_evaluation() {
        let doc = atp();
        let players = PathExpr::parse("ATPList/player").unwrap().eval(&doc);
        let rel = PathExpr::parse("name/lastname").unwrap();
        assert_eq!(texts(&doc, &rel.eval_relative(&doc, players[0])), vec!["Federer"]);
        assert_eq!(texts(&doc, &rel.eval_relative(&doc, players[1])), vec!["Nadal"]);
    }

    #[test]
    fn document_order_and_dedup() {
        let doc = atp();
        // `//*/..` produces lots of duplicate parents.
        let p = PathExpr::parse("//*/..").unwrap();
        let hits = p.eval(&doc);
        let mut sorted = hits.clone();
        sorted.sort_by(|a, b| doc.cmp_document_order(*a, *b).unwrap());
        assert_eq!(hits, sorted, "results must be in document order");
        let unique: std::collections::HashSet<_> = hits.iter().collect();
        assert_eq!(unique.len(), hits.len(), "results must be deduplicated");
    }

    #[test]
    fn to_text_roundtrip() {
        for src in [
            "ATPList//player/citizenship",
            "//lastname/..",
            "ATPList/player[2]/points",
            "a/*/b",
            r#"ATPList/player[@rank="1"]"#,
            r#"ATPList//name[lastname="Federer"]"#,
        ] {
            let p = PathExpr::parse(src).unwrap();
            let p2 = PathExpr::parse(&p.to_text()).unwrap();
            assert_eq!(p, p2, "src={src} text={}", p.to_text());
        }
    }

    #[test]
    fn syntax_errors() {
        assert!(PathExpr::parse("").is_err());
        assert!(PathExpr::parse("a/").is_err());
        assert!(PathExpr::parse("a[").is_err());
        assert!(PathExpr::parse("a[@x]").is_err());
        assert!(PathExpr::parse("a[0]").is_err());
        assert!(PathExpr::parse("a[x=\"unterminated]").is_err());
        assert!(PathExpr::parse("a b").is_err());
    }

    #[test]
    fn namespaced_steps() {
        let doc = Document::parse(r#"<r><axml:sc mode="replace"><points>1</points></axml:sc></r>"#).unwrap();
        let p = PathExpr::parse("r/axml:sc/points").unwrap();
        assert_eq!(p.eval(&doc).len(), 1);
        let p = PathExpr::parse("//axml:sc[@mode=replace]").unwrap();
        assert_eq!(p.eval(&doc).len(), 1);
    }

    #[test]
    fn builders() {
        let p = PathExpr { steps: vec![Step::child("a"), Step::descendant("b"), Step::parent()] };
        assert_eq!(p.to_text(), "a//b/..");
    }
}
