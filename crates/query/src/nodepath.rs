//! Stable structural node addresses.
//!
//! A [`NodePath`] identifies a node by the sequence of child positions from
//! the document root. Unlike [`axml_xml::NodeId`]s — which are private to
//! one document instance — structural paths are meaningful across
//! **replicas** of a document on different peers, which is what the
//! paper's peer-independent compensation (§3.2) needs: a compensating
//! service shipped to another peer must be able to say *which* node to
//! delete or *where* to re-insert without sharing arena ids.

use crate::error::QueryError;
use axml_xml::{Document, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A root-relative structural address: child indices from the root.
///
/// The empty path addresses the root itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct NodePath(pub Vec<usize>);

impl NodePath {
    /// The path of the document root.
    pub fn root() -> NodePath {
        NodePath(Vec::new())
    }

    /// Computes the structural path of an **attached** node.
    pub fn of(doc: &Document, node: NodeId) -> Result<NodePath, QueryError> {
        let mut rev = Vec::new();
        let mut cur = node;
        loop {
            match doc.parent(cur)? {
                None => break,
                Some(parent) => {
                    rev.push(doc.position_in_parent(cur)?);
                    cur = parent;
                }
            }
        }
        if cur != doc.root() {
            // Detached subtree: has no root-relative address.
            return Err(QueryError::Tree(axml_xml::TreeError::NotAttached));
        }
        rev.reverse();
        Ok(NodePath(rev))
    }

    /// Resolves this path in (a replica of) the document.
    pub fn resolve(&self, doc: &Document) -> Result<NodeId, QueryError> {
        let mut cur = doc.root();
        for &idx in &self.0 {
            let children = doc.children(cur)?;
            cur = *children.get(idx).ok_or_else(|| QueryError::PathUnresolved(self.to_string()))?;
        }
        Ok(cur)
    }

    /// The parent path (None for the root).
    pub fn parent(&self) -> Option<NodePath> {
        if self.0.is_empty() {
            None
        } else {
            Some(NodePath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The last child index (None for the root).
    pub fn last_index(&self) -> Option<usize> {
        self.0.last().copied()
    }

    /// Extends the path by one child index.
    pub fn child(&self, idx: usize) -> NodePath {
        let mut v = self.0.clone();
        v.push(idx);
        NodePath(v)
    }

    /// Depth of the addressed node.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// True if `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &NodePath) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for idx in &self.0 {
            write!(f, "/{idx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse("<r><a><b/><c/></a><d>text</d></r>").unwrap()
    }

    #[test]
    fn of_and_resolve_roundtrip() {
        let d = doc();
        for node in d.all_nodes().collect::<Vec<_>>() {
            let path = NodePath::of(&d, node).unwrap();
            assert_eq!(path.resolve(&d).unwrap(), node, "{path}");
        }
    }

    #[test]
    fn root_path() {
        let d = doc();
        assert_eq!(NodePath::root().resolve(&d).unwrap(), d.root());
        assert_eq!(NodePath::of(&d, d.root()).unwrap(), NodePath::root());
        assert_eq!(NodePath::root().to_string(), "/");
    }

    #[test]
    fn resolves_across_replicas() {
        let d1 = doc();
        let d2 = doc(); // structurally identical replica, different NodeIds
        let a = d1.first_child_element(d1.root(), "a").unwrap();
        let c = d1.first_child_element(a, "c").unwrap();
        let path = NodePath::of(&d1, c).unwrap();
        let resolved = path.resolve(&d2).unwrap();
        assert_eq!(d2.name(resolved).unwrap().local, "c");
    }

    #[test]
    fn unresolvable_after_divergence() {
        let d1 = doc();
        let mut d2 = doc();
        let a2 = d2.first_child_element(d2.root(), "a").unwrap();
        d2.delete(a2).unwrap();
        let a1 = d1.first_child_element(d1.root(), "a").unwrap();
        let c1 = d1.first_child_element(a1, "c").unwrap();
        let path = NodePath::of(&d1, c1).unwrap();
        // `/0/1` now points into <d>, which has one text child only.
        assert!(matches!(path.resolve(&d2), Err(QueryError::PathUnresolved(_))));
    }

    #[test]
    fn detached_nodes_have_no_path() {
        let mut d = doc();
        let a = d.first_child_element(d.root(), "a").unwrap();
        d.detach(a).unwrap();
        assert!(NodePath::of(&d, a).is_err());
    }

    #[test]
    fn parent_child_helpers() {
        let p = NodePath(vec![0, 1]);
        assert_eq!(p.parent(), Some(NodePath(vec![0])));
        assert_eq!(p.last_index(), Some(1));
        assert_eq!(p.child(3), NodePath(vec![0, 1, 3]));
        assert_eq!(p.depth(), 2);
        assert!(NodePath(vec![0]).is_ancestor_of(&p));
        assert!(!p.is_ancestor_of(&p));
        assert!(!p.is_ancestor_of(&NodePath(vec![0])));
        assert_eq!(NodePath::root().parent(), None);
        assert_eq!(NodePath::root().last_index(), None);
    }

    #[test]
    fn display() {
        assert_eq!(NodePath(vec![0, 2, 1]).to_string(), "/0/2/1");
    }
}
