//! `where`-clause conditions for select-from-where queries.
//!
//! Comparison semantics are existential over node sets, as in XPath:
//! `p/name/lastname = Federer` holds if *any* selected `lastname` node has
//! that text. Values compare numerically when both sides parse as numbers,
//! textually otherwise.

use crate::error::QueryError;
use crate::path::PathExpr;
use axml_xml::{Document, NodeId, QName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(&self, a: &str, b: &str) -> bool {
        if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            return match self {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A path relative to the bound variable, optionally ending in an
    /// attribute access (`p/player/@rank`). An empty path refers to the
    /// binding node itself.
    Path {
        /// Relative path from the binding node.
        path: PathExpr,
        /// Trailing `@attr`, if any.
        attr: Option<QName>,
    },
    /// A literal value (bare word, quoted string, or number).
    Literal(String),
}

impl Operand {
    /// Evaluates the operand to its value set for one binding node.
    pub fn values(&self, doc: &Document, binding: NodeId) -> Vec<String> {
        match self {
            Operand::Literal(s) => vec![s.clone()],
            Operand::Path { path, attr } => {
                let nodes = if path.steps.is_empty() { vec![binding] } else { path.eval_relative(doc, binding) };
                match attr {
                    None => {
                        nodes.iter().filter_map(|n| doc.text_content(*n).ok()).map(|t| t.trim().to_string()).collect()
                    }
                    Some(a) => nodes.iter().filter_map(|n| doc.attr(*n, &a.as_string())).map(str::to_string).collect(),
                }
            }
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Literal(s) => write!(f, "\"{s}\""),
            Operand::Path { path, attr } => {
                write!(f, "$v")?;
                if !path.steps.is_empty() {
                    let text = path.to_text();
                    if text.starts_with("//") {
                        write!(f, "{text}")?;
                    } else {
                        write!(f, "/{text}")?;
                    }
                }
                if let Some(a) = attr {
                    write!(f, "/@{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A boolean condition over one binding node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Always true (empty `where`).
    True,
    /// Existential comparison between two operands.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// A relative path selects at least one node.
    Exists(PathExpr),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Evaluates the condition for one binding node.
    pub fn eval(&self, doc: &Document, binding: NodeId) -> bool {
        match self {
            Condition::True => true,
            Condition::Cmp { left, op, right } => {
                let lv = left.values(doc, binding);
                let rv = right.values(doc, binding);
                lv.iter().any(|a| rv.iter().any(|b| op.apply(a, b)))
            }
            Condition::Exists(path) => !path.eval_relative(doc, binding).is_empty(),
            Condition::And(a, b) => a.eval(doc, binding) && b.eval(doc, binding),
            Condition::Or(a, b) => a.eval(doc, binding) || b.eval(doc, binding),
            Condition::Not(c) => !c.eval(doc, binding),
        }
    }

    /// Parses a condition; `var` is the name of the bound variable.
    pub fn parse(input: &str, var: &str) -> Result<Condition, QueryError> {
        let mut p = CondParser { input, pos: 0, var };
        let c = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(QueryError::syntax("where clause", format!("trailing input at `{}`", &p.input[p.pos..])));
        }
        Ok(c)
    }

    /// Renders the condition to text (with `$v` for the variable).
    pub fn to_text(&self) -> String {
        match self {
            Condition::True => "true".into(),
            Condition::Cmp { left, op, right } => format!("{left} {} {right}", op.symbol()),
            Condition::Exists(p) => {
                let text = p.to_text();
                if text.starts_with("//") {
                    format!("exists $v{text}")
                } else {
                    format!("exists $v/{text}")
                }
            }
            Condition::And(a, b) => format!("({} and {})", a.to_text(), b.to_text()),
            Condition::Or(a, b) => format!("({} or {})", a.to_text(), b.to_text()),
            Condition::Not(c) => format!("not {}", c.to_text()),
        }
    }
}

struct CondParser<'a> {
    input: &'a str,
    pos: usize,
    var: &'a str,
}

impl<'a> CondParser<'a> {
    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = &rest[kw.len()..];
            if after.is_empty() || after.starts_with(|c: char| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Condition, QueryError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Condition, QueryError> {
        let mut left = self.parse_atom()?;
        while self.eat_keyword("and") {
            let right = self.parse_atom()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_atom(&mut self) -> Result<Condition, QueryError> {
        self.skip_ws();
        if self.eat_keyword("not") {
            return Ok(Condition::Not(Box::new(self.parse_atom()?)));
        }
        if self.eat_keyword("exists") {
            let operand = self.parse_operand()?;
            return match operand {
                Operand::Path { path, attr: None } => Ok(Condition::Exists(path)),
                _ => Err(QueryError::syntax("where clause", "`exists` requires a plain path operand")),
            };
        }
        if self.eat("(") {
            let c = self.parse_or()?;
            if !self.eat(")") {
                return Err(QueryError::syntax("where clause", "expected `)`"));
            }
            return Ok(c);
        }
        let left = self.parse_operand()?;
        self.skip_ws();
        let op = if self.eat("!=") {
            CmpOp::Ne
        } else if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("=") {
            CmpOp::Eq
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else {
            return Err(QueryError::syntax("where clause", "expected a comparison operator"));
        };
        let right = self.parse_operand()?;
        Ok(Condition::Cmp { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<Operand, QueryError> {
        self.skip_ws();
        // Quoted literal.
        if let Some(q @ ('"' | '\'')) = self.input[self.pos..].chars().next() {
            self.pos += 1;
            let rest = &self.input[self.pos..];
            let end = rest.find(q).ok_or_else(|| QueryError::syntax("where clause", "unterminated string"))?;
            let v = rest[..end].to_string();
            self.pos += end + 1;
            return Ok(Operand::Literal(v));
        }
        // Read a "word": chars up to whitespace/operator/paren, allowing
        // path characters and bracketed predicates.
        let start = self.pos;
        let mut depth = 0usize;
        for c in self.input[self.pos..].chars() {
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                c if depth == 0 && (c.is_ascii_whitespace() || matches!(c, '=' | '!' | '<' | '>' | '(' | ')')) => break,
                _ => {}
            }
            self.pos += c.len_utf8();
        }
        let raw_word = &self.input[start..self.pos];
        if raw_word.is_empty() {
            return Err(QueryError::syntax("where clause", "expected an operand"));
        }
        // Variable-rooted path? (tolerate the `$var` spelling). A `$word`
        // that does NOT match the variable stays a literal verbatim —
        // service parameter placeholders (`$who`) depend on that.
        let word = raw_word.strip_prefix('$').unwrap_or(raw_word);
        let var = self.var.strip_prefix('$').unwrap_or(self.var);
        if word == var {
            return Ok(Operand::Path { path: PathExpr { steps: vec![] }, attr: None });
        }
        if let Some(rest) = word.strip_prefix(var).filter(|r| r.starts_with('/')) {
            // `rest` keeps its leading slash(es): `/x` is a child step,
            // `//x` a descendant step.
            if let Some(attr) = rest.strip_prefix("/@") {
                return Ok(Operand::Path { path: PathExpr { steps: vec![] }, attr: Some(QName::new(attr)) });
            }
            // Trailing attribute access?
            if let Some((head, attr)) = rest.rsplit_once("/@") {
                let path = if head.is_empty() { PathExpr { steps: vec![] } } else { PathExpr::parse(head)? };
                return Ok(Operand::Path { path, attr: Some(QName::new(attr)) });
            }
            return Ok(Operand::Path { path: PathExpr::parse(rest)?, attr: None });
        }
        Ok(Operand::Literal(raw_word.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::Document;

    fn doc() -> Document {
        Document::parse(
            r#"<ATPList>
                <player rank="1">
                    <name><lastname>Federer</lastname></name>
                    <citizenship>Swiss</citizenship>
                    <points>475</points>
                </player>
            </ATPList>"#,
        )
        .unwrap()
    }

    fn player(d: &Document) -> axml_xml::NodeId {
        d.first_child_element(d.root(), "player").unwrap()
    }

    #[test]
    fn simple_equality() {
        let d = doc();
        let c = Condition::parse("p/name/lastname = Federer", "p").unwrap();
        assert!(c.eval(&d, player(&d)));
        let c = Condition::parse("p/name/lastname = Nadal", "p").unwrap();
        assert!(!c.eval(&d, player(&d)));
    }

    #[test]
    fn quoted_literals() {
        let d = doc();
        let c = Condition::parse(r#"p/citizenship = "Swiss""#, "p").unwrap();
        assert!(c.eval(&d, player(&d)));
        let c = Condition::parse("p/citizenship = 'Swiss'", "p").unwrap();
        assert!(c.eval(&d, player(&d)));
    }

    #[test]
    fn numeric_comparisons() {
        let d = doc();
        for (expr, expect) in [
            ("p/points > 400", true),
            ("p/points >= 475", true),
            ("p/points < 475", false),
            ("p/points <= 475", true),
            ("p/points != 475", false),
            ("p/points = 475.0", true), // numeric, not textual
        ] {
            let c = Condition::parse(expr, "p").unwrap();
            assert_eq!(c.eval(&d, player(&d)), expect, "{expr}");
        }
    }

    #[test]
    fn attribute_operand() {
        let d = doc();
        let c = Condition::parse("p/@rank = 1", "p").unwrap();
        assert!(c.eval(&d, player(&d)));
        let c = Condition::parse("p/@rank = 2", "p").unwrap();
        assert!(!c.eval(&d, player(&d)));
    }

    #[test]
    fn boolean_connectives() {
        let d = doc();
        let p = player(&d);
        let c = Condition::parse("p/points > 400 and p/citizenship = Swiss", "p").unwrap();
        assert!(c.eval(&d, p));
        let c = Condition::parse("p/points > 500 or p/citizenship = Swiss", "p").unwrap();
        assert!(c.eval(&d, p));
        let c = Condition::parse("not p/points > 500", "p").unwrap();
        assert!(c.eval(&d, p));
        let c = Condition::parse("(p/points > 500 and p/citizenship = Swiss) or p/@rank = 1", "p").unwrap();
        assert!(c.eval(&d, p));
    }

    #[test]
    fn exists() {
        let d = doc();
        let p = player(&d);
        let c = Condition::parse("exists p/name", "p").unwrap();
        assert!(c.eval(&d, p));
        let c = Condition::parse("exists p/trophies", "p").unwrap();
        assert!(!c.eval(&d, p));
    }

    #[test]
    fn var_self_operand() {
        let d = doc();
        // `p` alone refers to the binding node: text content of the player.
        let c = Condition::parse("p != empty", "p").unwrap();
        assert!(c.eval(&d, player(&d)));
    }

    #[test]
    fn literal_vs_literal() {
        let d = doc();
        let c = Condition::parse("a = a", "p").unwrap();
        assert!(c.eval(&d, d.root()));
        let c = Condition::parse("1 < 2", "p").unwrap();
        assert!(c.eval(&d, d.root()));
        // String comparison when not numeric.
        let c = Condition::parse("abc < abd", "p").unwrap();
        assert!(c.eval(&d, d.root()));
    }

    #[test]
    fn existential_over_node_sets() {
        let d = Document::parse("<r><x>1</x><x>2</x><x>3</x></r>").unwrap();
        let c = Condition::parse("v/x = 2", "v").unwrap();
        assert!(c.eval(&d, d.root()), "any x matching suffices");
        let c = Condition::parse("v/x = 9", "v").unwrap();
        assert!(!c.eval(&d, d.root()));
        // Note: existential semantics make `=` and `!=` both true here.
        let c = Condition::parse("v/x != 2", "v").unwrap();
        assert!(c.eval(&d, d.root()));
    }

    #[test]
    fn keyword_case_insensitive() {
        let d = doc();
        let p = player(&d);
        let c = Condition::parse("p/points > 1 AND p/points > 2 Or p/points > 3", "p").unwrap();
        assert!(c.eval(&d, p));
        let c = Condition::parse("NOT p/points > 500", "p").unwrap();
        assert!(c.eval(&d, p));
    }

    #[test]
    fn keyword_prefix_words_are_operands() {
        // `android` starts with `and` but must parse as a literal operand.
        let d = doc();
        let c = Condition::parse("android = android", "p").unwrap();
        assert!(c.eval(&d, d.root()));
    }

    #[test]
    fn missing_paths_yield_empty_and_false() {
        let d = doc();
        let c = Condition::parse("p/no/such/path = anything", "p").unwrap();
        assert!(!c.eval(&d, player(&d)));
    }

    #[test]
    fn syntax_errors() {
        assert!(Condition::parse("", "p").is_err());
        assert!(Condition::parse("p/x =", "p").is_err());
        assert!(Condition::parse("p/x ~ 2", "p").is_err());
        assert!(Condition::parse("(p/x = 1", "p").is_err());
        assert!(Condition::parse("p/x = 1 extra", "p").is_err());
        assert!(Condition::parse("exists \"lit\"", "p").is_err());
        assert!(Condition::parse("p/x = \"open", "p").is_err());
    }

    #[test]
    fn to_text_reparses() {
        for src in
            ["p/name/lastname = Federer", "p/points > 400 and p/@rank = 1", "not (p/a = 1 or p/b = 2)", "exists p/name"]
        {
            let c = Condition::parse(src, "p").unwrap();
            let c2 = Condition::parse(&c.to_text().replace("$v", "p"), "p").unwrap();
            assert_eq!(c, c2, "src={src} text={}", c.to_text());
        }
    }
}
