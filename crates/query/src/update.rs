//! Update actions and their primitive effects.
//!
//! The paper models operations on AXML documents as XQuery!-style actions
//! (§3.1): each action has a *type* (`insert`, `delete`, `replace`, or
//! `query`), a `<location>` query that selects the target nodes, and — for
//! inserts/replaces — a `<data>` payload. A replace "is usually implemented
//! as a combination of a delete and update operation, i.e., delete the node
//! to be replaced followed by insertion of a node (having the updated
//! value) at the same position"; we reproduce that decomposition literally:
//! applying a replace emits a [`Effect::Deleted`] followed by
//! [`Effect::Inserted`] at the same position.
//!
//! [`Effect`]s are the unit the transaction log stores. They capture
//! everything §3.1 says must be logged: "the delete operations as well as
//! the results of the `<location>` queries of the delete operations need to
//! be logged to enable compensation" — i.e. the removed subtree, its parent
//! and its sibling position; and for inserts, the unique ID (plus the
//! structural path, for peer-independent replay on replicas).

use crate::error::QueryError;
use crate::nodepath::NodePath;
use crate::path::PathExpr;
use crate::select::SelectQuery;
use axml_xml::{Document, Fragment, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four action types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionType {
    /// Insert `<data>` at the located nodes.
    Insert,
    /// Delete the located nodes.
    Delete,
    /// Replace the located nodes with `<data>` (delete + insert in place).
    Replace,
    /// Read-only selection (side effects only arise from materialization,
    /// handled by the AXML layer).
    Query,
}

impl ActionType {
    /// The `type` attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            ActionType::Insert => "insert",
            ActionType::Delete => "delete",
            ActionType::Replace => "replace",
            ActionType::Query => "query",
        }
    }

    /// Parses a `type` attribute value.
    pub fn parse(s: &str) -> Result<ActionType, QueryError> {
        match s {
            "insert" => Ok(ActionType::Insert),
            "delete" => Ok(ActionType::Delete),
            "replace" => Ok(ActionType::Replace),
            "query" => Ok(ActionType::Query),
            other => Err(QueryError::syntax("action", format!("unknown action type `{other}`"))),
        }
    }
}

/// How an action locates its target nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Locator {
    /// A select-from-where query (the paper's normal form).
    Select(SelectQuery),
    /// A bare absolute path expression.
    Path(PathExpr),
    /// A structural address — how compensating operations shipped across
    /// peers refer to nodes on replicas.
    Node(NodePath),
    /// Several structural addresses (pre-located targets, e.g. after
    /// transparent evaluation over an AXML view).
    Nodes(Vec<NodePath>),
}

impl Locator {
    /// Evaluates the locator to target nodes, in document order.
    pub fn locate(&self, doc: &Document) -> Result<Vec<NodeId>, QueryError> {
        match self {
            Locator::Select(q) => q.eval(doc),
            Locator::Path(p) => Ok(p.eval(doc)),
            Locator::Node(path) => Ok(vec![path.resolve(doc)?]),
            Locator::Nodes(paths) => paths.iter().map(|p| p.resolve(doc)).collect(),
        }
    }

    /// Textual form (used in the `<location>` element).
    pub fn to_text(&self) -> String {
        match self {
            Locator::Select(q) => q.to_text(),
            Locator::Path(p) => p.to_text(),
            Locator::Node(n) => format!("node:{n}"),
            Locator::Nodes(ns) => {
                let parts: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
                format!("nodes:{}", parts.join(","))
            }
        }
    }

    /// Parses the textual form.
    pub fn parse(s: &str) -> Result<Locator, QueryError> {
        let s = s.trim();
        fn parse_node_path(rest: &str) -> Result<NodePath, QueryError> {
            let mut idxs = Vec::new();
            for part in rest.split('/').filter(|p| !p.is_empty()) {
                idxs.push(
                    part.parse::<usize>()
                        .map_err(|_| QueryError::syntax("locator", format!("bad node path `{rest}`")))?,
                );
            }
            Ok(NodePath(idxs))
        }
        if let Some(rest) = s.strip_prefix("node:") {
            return Ok(Locator::Node(parse_node_path(rest)?));
        }
        if let Some(rest) = s.strip_prefix("nodes:") {
            let paths = rest
                .split(',')
                .filter(|p| !p.trim().is_empty())
                .map(|p| parse_node_path(p.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Locator::Nodes(paths));
        }
        if s.to_lowercase().starts_with("select") {
            Ok(Locator::Select(SelectQuery::parse(s)?))
        } else {
            Ok(Locator::Path(PathExpr::parse(s)?))
        }
    }
}

impl fmt::Display for Locator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Where, relative to each located node, inserted data is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InsertPos {
    /// As the last children of the located node (default).
    #[default]
    LastChild,
    /// As the first children of the located node.
    FirstChild,
    /// At a specific child index of the located node.
    At(usize),
    /// As siblings immediately before the located node — the
    /// "insertion before/after a specific node" the paper points to for
    /// order-preserving compensation.
    Before,
    /// As siblings immediately after the located node.
    After,
}

impl InsertPos {
    /// The `pos` attribute value.
    pub fn to_text(&self) -> String {
        match self {
            InsertPos::LastChild => "last-child".into(),
            InsertPos::FirstChild => "first-child".into(),
            InsertPos::At(i) => format!("at:{i}"),
            InsertPos::Before => "before".into(),
            InsertPos::After => "after".into(),
        }
    }

    /// Parses a `pos` attribute value.
    pub fn parse(s: &str) -> Result<InsertPos, QueryError> {
        match s {
            "last-child" => Ok(InsertPos::LastChild),
            "first-child" => Ok(InsertPos::FirstChild),
            "before" => Ok(InsertPos::Before),
            "after" => Ok(InsertPos::After),
            other => {
                if let Some(n) = other.strip_prefix("at:") {
                    Ok(InsertPos::At(
                        n.parse()
                            .map_err(|_| QueryError::syntax("action", format!("bad insert position `{other}`")))?,
                    ))
                } else {
                    Err(QueryError::syntax("action", format!("unknown insert position `{other}`")))
                }
            }
        }
    }
}

/// One primitive, logged document effect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// A subtree was inserted. `node` is the unique ID the paper's insert
    /// returns; `path` is its structural address for replica-side replay.
    Inserted {
        /// Arena id of the new subtree root (local to this document).
        node: NodeId,
        /// Structural address of the new subtree root.
        path: NodePath,
        /// The inserted content.
        fragment: Fragment,
    },
    /// A subtree was deleted. Everything a compensating insert needs.
    Deleted {
        /// The removed content ("the results of the `<location>` queries
        /// of the delete operations need to be logged").
        fragment: Fragment,
        /// Structural address of the parent ("the `<location>` … of the
        /// compensating insert operation \[is\] the parent (/..) of the
        /// deleted node").
        parent_path: NodePath,
        /// Child position the subtree occupied.
        position: usize,
    },
}

impl Effect {
    /// The paper's cost measure: number of XML nodes affected.
    pub fn cost_nodes(&self) -> usize {
        match self {
            Effect::Inserted { fragment, .. } | Effect::Deleted { fragment, .. } => fragment.node_count(),
        }
    }
}

/// The result of applying an [`UpdateAction`].
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Primitive effects, in application order.
    pub effects: Vec<Effect>,
    /// For `query` actions: the selected nodes. For updates: the located
    /// target nodes (note: for deletes these ids are stale afterwards).
    pub selected: Vec<NodeId>,
    /// Total nodes affected (sum of effect costs).
    pub cost_nodes: usize,
}

/// A parsed update/query action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateAction {
    /// The action type.
    pub ty: ActionType,
    /// Payload fragments (inserts/replaces; empty otherwise).
    pub data: Vec<Fragment>,
    /// Target locator.
    pub location: Locator,
    /// Placement for inserts.
    pub insert_pos: InsertPos,
    /// If false (default), applying an update whose location selects no
    /// nodes fails with [`QueryError::EmptyLocation`]; queries never fail
    /// on empty results.
    pub allow_empty_location: bool,
}

impl UpdateAction {
    /// Builds a delete action.
    pub fn delete(location: Locator) -> UpdateAction {
        UpdateAction {
            ty: ActionType::Delete,
            data: vec![],
            location,
            insert_pos: InsertPos::default(),
            allow_empty_location: false,
        }
    }

    /// Builds an insert action.
    pub fn insert(location: Locator, data: Vec<Fragment>) -> UpdateAction {
        UpdateAction {
            ty: ActionType::Insert,
            data,
            location,
            insert_pos: InsertPos::default(),
            allow_empty_location: false,
        }
    }

    /// Builds an insert action with explicit placement.
    pub fn insert_at(location: Locator, data: Vec<Fragment>, pos: InsertPos) -> UpdateAction {
        UpdateAction { ty: ActionType::Insert, data, location, insert_pos: pos, allow_empty_location: false }
    }

    /// Builds a replace action.
    pub fn replace(location: Locator, data: Vec<Fragment>) -> UpdateAction {
        UpdateAction {
            ty: ActionType::Replace,
            data,
            location,
            insert_pos: InsertPos::default(),
            allow_empty_location: false,
        }
    }

    /// Builds a query action.
    pub fn query(location: Locator) -> UpdateAction {
        UpdateAction {
            ty: ActionType::Query,
            data: vec![],
            location,
            insert_pos: InsertPos::default(),
            allow_empty_location: true,
        }
    }

    /// Applies the action to `doc`, returning the logged effects.
    pub fn apply(&self, doc: &mut Document) -> Result<UpdateReport, QueryError> {
        let targets = self.location.locate(doc)?;
        if targets.is_empty() && !self.allow_empty_location && self.ty != ActionType::Query {
            return Err(QueryError::EmptyLocation);
        }
        let mut report = UpdateReport { selected: targets.clone(), ..Default::default() };
        match self.ty {
            ActionType::Query => { /* read-only here; materialization lives in axml-doc */ }
            ActionType::Delete => {
                // Reverse document order: deleting later nodes first keeps
                // earlier siblings' positions valid, and nested targets are
                // handled by the staleness check.
                for &t in targets.iter().rev() {
                    if !doc.contains(t) {
                        continue; // already removed as part of an ancestor target
                    }
                    if t == doc.root() {
                        return Err(QueryError::Tree(axml_xml::TreeError::RootImmutable));
                    }
                    let parent = doc.parent(t)?.ok_or(QueryError::Tree(axml_xml::TreeError::NotAttached))?;
                    let parent_path = NodePath::of(doc, parent)?;
                    let (fragment, _parent, position) = doc.remove_to_fragment(t)?;
                    report.effects.push(Effect::Deleted { fragment, parent_path, position });
                }
            }
            ActionType::Insert => {
                if self.data.is_empty() {
                    return Err(QueryError::MissingData);
                }
                for &t in &targets {
                    self.insert_data_at(doc, t, &mut report)?;
                }
            }
            ActionType::Replace => {
                if self.data.is_empty() {
                    return Err(QueryError::MissingData);
                }
                for &t in targets.iter().rev() {
                    if !doc.contains(t) {
                        continue;
                    }
                    if t == doc.root() {
                        return Err(QueryError::Tree(axml_xml::TreeError::RootImmutable));
                    }
                    let parent = doc.parent(t)?.ok_or(QueryError::Tree(axml_xml::TreeError::NotAttached))?;
                    let parent_path = NodePath::of(doc, parent)?;
                    // Paper: replace ≡ delete, then insert at the same position.
                    let (old, parent_id, position) = doc.remove_to_fragment(t)?;
                    report.effects.push(Effect::Deleted { fragment: old, parent_path: parent_path.clone(), position });
                    for (k, frag) in self.data.iter().enumerate() {
                        let node = doc.insert_fragment(parent_id, position + k, frag)?;
                        let path = NodePath::of(doc, node)?;
                        report.effects.push(Effect::Inserted { node, path, fragment: frag.clone() });
                    }
                }
            }
        }
        report.cost_nodes = report.effects.iter().map(Effect::cost_nodes).sum();
        Ok(report)
    }

    fn insert_data_at(&self, doc: &mut Document, target: NodeId, report: &mut UpdateReport) -> Result<(), QueryError> {
        // Resolve the base (parent, index) for the first fragment.
        let (parent, base) = match self.insert_pos {
            InsertPos::LastChild => (target, doc.children(target)?.len()),
            InsertPos::FirstChild => (target, 0),
            InsertPos::At(i) => (target, i),
            InsertPos::Before => {
                let p = doc.parent(target)?.ok_or(QueryError::Tree(axml_xml::TreeError::NotAttached))?;
                (p, doc.position_in_parent(target)?)
            }
            InsertPos::After => {
                let p = doc.parent(target)?.ok_or(QueryError::Tree(axml_xml::TreeError::NotAttached))?;
                (p, doc.position_in_parent(target)? + 1)
            }
        };
        for (k, frag) in self.data.iter().enumerate() {
            let node = doc.insert_fragment(parent, base + k, frag)?;
            let path = NodePath::of(doc, node)?;
            report.effects.push(Effect::Inserted { node, path, fragment: frag.clone() });
        }
        Ok(())
    }

    /// Serializes the action to its XML form, e.g.
    /// `<action type="delete"><location>Select …</location></action>`.
    pub fn to_action_xml(&self) -> String {
        let mut action = Fragment::elem("action").with_attr("type", self.ty.as_str());
        if self.insert_pos != InsertPos::LastChild {
            action = action.with_attr("pos", self.insert_pos.to_text());
        }
        if !self.data.is_empty() {
            let mut data = Fragment::elem("data");
            for f in &self.data {
                data = data.with_child(f.clone());
            }
            action = action.with_child(data);
        }
        action = action.with_child(Fragment::elem("location").with_text(self.location.to_text()));
        action.to_xml()
    }

    /// Parses the XML action form.
    pub fn parse_action_xml(xml: &str) -> Result<UpdateAction, QueryError> {
        let frag =
            Fragment::parse_one(xml).map_err(|e| QueryError::syntax("action", format!("bad action XML: {e}")))?;
        if frag.name().map(|n| n.local.as_str()) != Some("action") {
            return Err(QueryError::syntax("action", "root element must be <action>"));
        }
        let ty = ActionType::parse(
            frag.attr("type").ok_or_else(|| QueryError::syntax("action", "missing type attribute"))?,
        )?;
        let insert_pos = match frag.attr("pos") {
            Some(p) => InsertPos::parse(p)?,
            None => InsertPos::LastChild,
        };
        let mut data = Vec::new();
        let mut location = None;
        for child in frag.children() {
            match child.name().map(|n| n.local.as_str()) {
                Some("data") => data.extend(child.children().iter().cloned()),
                Some("location") => location = Some(Locator::parse(&child.text_content())?),
                _ => {}
            }
        }
        let location = location.ok_or_else(|| QueryError::syntax("action", "missing <location>"))?;
        Ok(UpdateAction { ty, data, location, insert_pos, allow_empty_location: ty == ActionType::Query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atp() -> Document {
        Document::parse(
            r#"<ATPList>
                <player rank="1">
                    <name><lastname>Federer</lastname></name>
                    <citizenship>Swiss</citizenship>
                </player>
                <player rank="2">
                    <name><lastname>Nadal</lastname></name>
                    <citizenship>Spanish</citizenship>
                </player>
            </ATPList>"#,
        )
        .unwrap()
    }

    fn loc(q: &str) -> Locator {
        Locator::parse(q).unwrap()
    }

    #[test]
    fn paper_delete_operation() {
        // §3.1's delete example.
        let mut doc = atp();
        let action = UpdateAction::delete(loc(
            "Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;",
        ));
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(report.effects.len(), 1);
        match &report.effects[0] {
            Effect::Deleted { fragment, parent_path, position } => {
                assert_eq!(fragment.to_xml(), "<citizenship>Swiss</citizenship>");
                assert_eq!(*position, 1, "citizenship was the second child of player");
                // Parent is the first player.
                let parent = parent_path.resolve(&doc).unwrap();
                assert_eq!(doc.name(parent).unwrap().local, "player");
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(report.cost_nodes, 2, "citizenship element + its text node");
        assert!(!doc.to_xml().contains("Swiss"));
    }

    #[test]
    fn paper_compensating_insert_restores() {
        // §3.1: the compensating insert's location is the parent of the
        // deleted node, the data is the logged result.
        let mut doc = atp();
        let before = doc.to_xml();
        let del = UpdateAction::delete(loc(
            "Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;",
        ));
        let report = del.apply(&mut doc).unwrap();
        let Effect::Deleted { fragment, parent_path, position } = report.effects[0].clone() else { panic!() };
        let comp = UpdateAction::insert_at(Locator::Node(parent_path), vec![fragment], InsertPos::At(position));
        comp.apply(&mut doc).unwrap();
        assert_eq!(doc.to_xml(), before, "order-preserving compensation");
    }

    #[test]
    fn paper_replace_decomposes_to_delete_insert() {
        // §3.1's replace example: set Nadal's citizenship to USA.
        let mut doc = atp();
        let action = UpdateAction::replace(
            loc("Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal;"),
            vec![Fragment::elem_text("citizenship", "USA")],
        );
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(report.effects.len(), 2);
        assert!(matches!(&report.effects[0], Effect::Deleted { fragment, .. } if fragment.text_content() == "Spanish"));
        assert!(matches!(&report.effects[1], Effect::Inserted { fragment, .. } if fragment.text_content() == "USA"));
        assert!(doc.to_xml().contains("<citizenship>USA</citizenship>"));
        assert!(!doc.to_xml().contains("Spanish"));
        // Replacement happened in place (same sibling position).
        let (Effect::Deleted { position: dp, .. }, Effect::Inserted { path, .. }) =
            (&report.effects[0], &report.effects[1])
        else {
            panic!()
        };
        assert_eq!(path.last_index(), Some(*dp));
    }

    #[test]
    fn insert_returns_unique_ids() {
        let mut doc = atp();
        let action = UpdateAction::insert(loc("ATPList/player[@rank=1]"), vec![Fragment::elem_text("points", "475")]);
        let report = action.apply(&mut doc).unwrap();
        let Effect::Inserted { node, path, .. } = &report.effects[0] else { panic!() };
        assert!(doc.contains(*node));
        assert_eq!(path.resolve(&doc).unwrap(), *node);
        // Compensation by unique ID: delete that node.
        let comp = UpdateAction::delete(Locator::Node(path.clone()));
        comp.apply(&mut doc).unwrap();
        assert!(!doc.contains(*node));
    }

    #[test]
    fn multi_target_delete_reverse_order() {
        let mut doc = atp();
        let action = UpdateAction::delete(loc("ATPList/player/citizenship"));
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(report.effects.len(), 2);
        // Applied in reverse document order: Spanish deleted first.
        assert!(matches!(&report.effects[0], Effect::Deleted { fragment, .. } if fragment.text_content() == "Spanish"));
        assert!(matches!(&report.effects[1], Effect::Deleted { fragment, .. } if fragment.text_content() == "Swiss"));
    }

    #[test]
    fn nested_targets_no_double_delete() {
        // Selecting both a node and its descendant: ancestor deletion
        // subsumes the descendant.
        let mut doc = Document::parse("<r><a><b/></a></r>").unwrap();
        let action = UpdateAction::delete(loc("//*"));
        // //* selects r, a, b — r is the root and can't be deleted.
        let err = action.apply(&mut doc).unwrap_err();
        assert!(matches!(err, QueryError::Tree(axml_xml::TreeError::RootImmutable)));

        let mut doc = Document::parse("<r><a><b/></a></r>").unwrap();
        let action = UpdateAction::delete(loc("r//*"));
        let report = action.apply(&mut doc).unwrap();
        // b deleted first (reverse order) then a; both effects logged.
        assert_eq!(report.effects.len(), 2);
        assert_eq!(doc.to_xml(), "<r/>");
    }

    #[test]
    fn empty_location_policy() {
        let mut doc = atp();
        let action = UpdateAction::delete(loc("ATPList/nosuch"));
        assert_eq!(action.apply(&mut doc).unwrap_err(), QueryError::EmptyLocation);
        let mut tolerant = UpdateAction::delete(loc("ATPList/nosuch"));
        tolerant.allow_empty_location = true;
        assert!(tolerant.apply(&mut doc).unwrap().effects.is_empty());
        // Queries never fail on empty.
        let q = UpdateAction::query(loc("ATPList/nosuch"));
        assert!(q.apply(&mut doc).unwrap().selected.is_empty());
    }

    #[test]
    fn missing_data_rejected() {
        let mut doc = atp();
        let action = UpdateAction::insert(loc("ATPList/player"), vec![]);
        assert_eq!(action.apply(&mut doc).unwrap_err(), QueryError::MissingData);
        let action = UpdateAction::replace(loc("ATPList/player"), vec![]);
        assert_eq!(action.apply(&mut doc).unwrap_err(), QueryError::MissingData);
    }

    #[test]
    fn insert_positions() {
        let base = "<r><a/><b/></r>";
        let frag = vec![Fragment::elem("x")];
        let cases = [
            (InsertPos::LastChild, "r", "<r><a/><b/><x/></r>"),
            (InsertPos::FirstChild, "r", "<r><x/><a/><b/></r>"),
            (InsertPos::At(1), "r", "<r><a/><x/><b/></r>"),
            (InsertPos::Before, "r/b", "<r><a/><x/><b/></r>"),
            (InsertPos::After, "r/a", "<r><a/><x/><b/></r>"),
        ];
        for (pos, target, expect) in cases {
            let mut doc = Document::parse(base).unwrap();
            let action = UpdateAction::insert_at(loc(target), frag.clone(), pos);
            action.apply(&mut doc).unwrap();
            assert_eq!(doc.to_xml(), expect, "{pos:?}");
        }
    }

    #[test]
    fn multiple_data_fragments_keep_order() {
        let mut doc = Document::parse("<r><a/></r>").unwrap();
        let action =
            UpdateAction::insert_at(loc("r/a"), vec![Fragment::elem("x"), Fragment::elem("y")], InsertPos::After);
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(doc.to_xml(), "<r><a/><x/><y/></r>");
        assert_eq!(report.effects.len(), 2);
    }

    #[test]
    fn query_action_selects_without_effects() {
        let mut doc = atp();
        let before = doc.to_xml();
        let action = UpdateAction::query(loc("ATPList//lastname"));
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(report.selected.len(), 2);
        assert!(report.effects.is_empty());
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn action_xml_roundtrip() {
        let actions = [
            UpdateAction::delete(loc(
                "Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;",
            )),
            UpdateAction::insert(loc("ATPList/player[@rank=1]"), vec![Fragment::elem_text("points", "475")]),
            UpdateAction::insert_at(loc("r/a"), vec![Fragment::elem("x")], InsertPos::Before),
            UpdateAction::replace(loc("node:/0/1"), vec![Fragment::elem_text("citizenship", "USA")]),
            UpdateAction::query(loc("ATPList//lastname")),
        ];
        for a in actions {
            let xml = a.to_action_xml();
            let back = UpdateAction::parse_action_xml(&xml).unwrap();
            assert_eq!(a, back, "xml={xml}");
        }
    }

    #[test]
    fn paper_action_xml_form_parses() {
        // The exact shape printed in §3.1.
        let xml = r#"<action type="delete"><location>Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;</location></action>"#;
        let action = UpdateAction::parse_action_xml(xml).unwrap();
        assert_eq!(action.ty, ActionType::Delete);
        let mut doc = atp();
        let report = action.apply(&mut doc).unwrap();
        assert_eq!(report.effects.len(), 1);
    }

    #[test]
    fn bad_action_xml() {
        assert!(UpdateAction::parse_action_xml("<notaction/>").is_err());
        assert!(UpdateAction::parse_action_xml("<action/>").is_err());
        assert!(UpdateAction::parse_action_xml(r#"<action type="bogus"><location>r</location></action>"#).is_err());
        assert!(UpdateAction::parse_action_xml(r#"<action type="delete"/>"#).is_err());
        assert!(UpdateAction::parse_action_xml(r#"<action type="insert" pos="weird"><location>r</location></action>"#)
            .is_err());
        assert!(UpdateAction::parse_action_xml("not xml at all").is_err());
        assert!(Locator::parse("node:/x/y").is_err());
    }

    #[test]
    fn locator_text_roundtrip() {
        for src in ["ATPList//player", "node:/0/1/2", "node:/", "nodes:/0/1,/2", "nodes:", "Select p from p in r;"] {
            let l = Locator::parse(src).unwrap();
            let l2 = Locator::parse(&l.to_text()).unwrap();
            assert_eq!(l, l2, "{src}");
        }
    }
}
