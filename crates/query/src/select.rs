//! The paper's `Select … from … where …` query form.
//!
//! ```text
//! Select p/citizenship, p/grandslamswon
//! from p in ATPList//player
//! where p/name/lastname = Federer;
//! ```
//!
//! Evaluation binds the variable to each node selected by the absolute
//! `from` path, keeps bindings satisfying the `where` condition, and
//! returns the union of all projection paths evaluated relative to each
//! surviving binding — deduplicated, in document order.

use crate::cond::Condition;
use crate::error::QueryError;
use crate::path::{dedup_document_order, PathExpr};
use axml_xml::{Document, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed select-from-where query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// Projection paths, relative to the bound variable. An empty path
    /// projects the binding node itself.
    pub projections: Vec<PathExpr>,
    /// The variable name (only used for parsing/printing).
    pub var: String,
    /// The absolute path the variable ranges over.
    pub from: PathExpr,
    /// The filter condition (defaults to [`Condition::True`]).
    pub condition: Condition,
}

impl SelectQuery {
    /// Parses a query. Keywords are case-insensitive; the trailing `;` is
    /// optional. The paper's examples parse verbatim.
    pub fn parse(input: &str) -> Result<SelectQuery, QueryError> {
        let input = input.trim().trim_end_matches(';').trim();
        let lower = input.to_lowercase();
        if !lower.starts_with("select") {
            return Err(QueryError::syntax("select query", "must start with `select`"));
        }
        let from_pos =
            find_keyword(&lower, "from").ok_or_else(|| QueryError::syntax("select query", "missing `from` clause"))?;
        let where_pos = find_keyword(&lower, "where");

        let proj_src = input["select".len()..from_pos].trim();
        let (from_src, where_src) = match where_pos {
            Some(w) if w > from_pos => (input[from_pos + 4..w].trim(), Some(input[w + 5..].trim())),
            _ => (input[from_pos + 4..].trim(), None),
        };

        // from: `<var> in <abs-path>`
        let (var, from_path_src) = from_src
            .split_once(|c: char| c.is_ascii_whitespace())
            .ok_or_else(|| QueryError::syntax("select query", "expected `<var> in <path>` after `from`"))?;
        let from_path_src = from_path_src.trim();
        let rest = from_path_src
            .strip_prefix("in")
            .filter(|r| r.starts_with(|c: char| c.is_ascii_whitespace()))
            .or_else(|| from_path_src.strip_prefix("IN").filter(|r| r.starts_with(|c: char| c.is_ascii_whitespace())))
            .ok_or_else(|| QueryError::syntax("select query", "expected `in` after the variable"))?;
        let var = var.trim().trim_start_matches('$').to_string();
        if var.is_empty() {
            return Err(QueryError::syntax("select query", "empty variable name"));
        }
        let from = PathExpr::parse(rest.trim())?;

        // projections: comma-separated variable-relative paths. The slash
        // count after the variable matters: `v/x` is a child step, `v//x`
        // a descendant step.
        let mut projections = Vec::new();
        for part in proj_src.split(',') {
            let part = part.trim().trim_start_matches('$');
            if part.is_empty() {
                return Err(QueryError::syntax("select query", "empty projection"));
            }
            if part == var {
                projections.push(PathExpr { steps: vec![] });
            } else if let Some(rel) = part.strip_prefix(&var).filter(|r| r.starts_with('/')) {
                projections.push(PathExpr::parse(rel)?);
            } else {
                return Err(QueryError::syntax(
                    "select query",
                    format!("projection `{part}` must start with the variable `{var}`"),
                ));
            }
        }
        if projections.is_empty() {
            return Err(QueryError::syntax("select query", "no projections"));
        }

        let condition = match where_src {
            None => Condition::True,
            Some("") => Condition::True,
            Some(src) => Condition::parse(src, &var)?,
        };

        Ok(SelectQuery { projections, var, from, condition })
    }

    /// Builds a query programmatically.
    pub fn new(from: PathExpr, projections: Vec<PathExpr>, condition: Condition) -> SelectQuery {
        SelectQuery { projections, var: "v".into(), from, condition }
    }

    /// The binding nodes: `from` matches that satisfy the condition.
    pub fn bindings(&self, doc: &Document) -> Vec<NodeId> {
        self.from.eval(doc).into_iter().filter(|n| self.condition.eval(doc, *n)).collect()
    }

    /// Evaluates the query: union of projections over all bindings,
    /// deduplicated in document order.
    pub fn eval(&self, doc: &Document) -> Result<Vec<NodeId>, QueryError> {
        let mut out = Vec::new();
        for binding in self.bindings(doc) {
            for proj in &self.projections {
                if proj.steps.is_empty() {
                    out.push(binding);
                } else {
                    out.extend(proj.eval_relative(doc, binding));
                }
            }
        }
        Ok(dedup_document_order(doc, out))
    }

    /// Renders the query back to text.
    pub fn to_text(&self) -> String {
        let projs: Vec<String> = self
            .projections
            .iter()
            .map(|p| {
                if p.steps.is_empty() {
                    self.var.clone()
                } else {
                    let text = p.to_text();
                    // A leading descendant step already prints its own `//`.
                    if text.starts_with("//") {
                        format!("{}{}", self.var, text)
                    } else {
                        format!("{}/{}", self.var, text)
                    }
                }
            })
            .collect();
        let mut s = format!("Select {} from {} in {}", projs.join(", "), self.var, self.from.to_text());
        if self.condition != Condition::True {
            s.push_str(&format!(" where {}", self.condition.to_text().replace("$v", &self.var)));
        }
        s.push(';');
        s
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Finds a keyword at a word boundary, skipping quoted strings.
fn find_keyword(lower: &str, kw: &str) -> Option<usize> {
    let bytes = lower.as_bytes();
    let mut i = 0;
    let mut quote: Option<u8> = None;
    while i < lower.len() {
        let b = bytes[i];
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            i += 1;
            continue;
        }
        if b == b'"' || b == b'\'' {
            quote = Some(b);
            i += 1;
            continue;
        }
        if lower[i..].starts_with(kw) {
            let before_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
            let after = i + kw.len();
            let after_ok = after >= lower.len() || !bytes[after].is_ascii_alphanumeric();
            if before_ok && after_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atp() -> Document {
        Document::parse(
            r#"<ATPList date="18042005">
                <player rank="1">
                    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
                    <citizenship>Swiss</citizenship>
                    <points>475</points>
                    <grandslamswon year="2003">A, W</grandslamswon>
                    <grandslamswon year="2004">A, U</grandslamswon>
                </player>
                <player rank="2">
                    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
                    <citizenship>Spanish</citizenship>
                    <points>390</points>
                </player>
            </ATPList>"#,
        )
        .unwrap()
    }

    fn texts(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|n| doc.text_content(*n).unwrap()).collect()
    }

    #[test]
    fn paper_delete_location_query() {
        // Verbatim from §3.1 (modulo the paper's stray `:`).
        let doc = atp();
        let q = SelectQuery::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;")
            .unwrap();
        let hits = q.eval(&doc).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["Swiss"]);
    }

    #[test]
    fn paper_compensating_insert_location_query() {
        // The compensation addresses the *parent* of the deleted node.
        let doc = atp();
        let q =
            SelectQuery::parse("Select p/citizenship/.. from p in ATPList//player where p/name/lastname = Federer;")
                .unwrap();
        let hits = q.eval(&doc).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.name(hits[0]).unwrap().local, "player");
    }

    #[test]
    fn paper_query_a_two_projections() {
        let doc = atp();
        let q = SelectQuery::parse(
            "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
        )
        .unwrap();
        let hits = q.eval(&doc).unwrap();
        assert_eq!(hits.len(), 3, "citizenship + two grandslamswon");
        assert_eq!(texts(&doc, &hits), vec!["Swiss", "A, W", "A, U"]);
    }

    #[test]
    fn no_where_clause() {
        let doc = atp();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player").unwrap();
        assert_eq!(texts(&doc, &q.eval(&doc).unwrap()), vec!["475", "390"]);
        assert_eq!(q.condition, Condition::True);
    }

    #[test]
    fn variable_projection_selects_binding() {
        let doc = atp();
        let q = SelectQuery::parse("Select p from p in ATPList//player where p/@rank = 2").unwrap();
        let hits = q.eval(&doc).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.name(hits[0]).unwrap().local, "player");
    }

    #[test]
    fn dollar_variable_accepted() {
        let doc = atp();
        let q = SelectQuery::parse("Select $p/points from $p in ATPList//player where $p/@rank = 1").unwrap();
        assert_eq!(texts(&doc, &q.eval(&doc).unwrap()), vec!["475"]);
    }

    #[test]
    fn bindings_exposed() {
        let doc = atp();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player where p/points > 400").unwrap();
        assert_eq!(q.bindings(&doc).len(), 1);
    }

    #[test]
    fn results_deduped_in_doc_order() {
        let doc = atp();
        // Both projections hit the same nodes.
        let q = SelectQuery::parse("Select p/name/.., p from p in ATPList//player").unwrap();
        let hits = q.eval(&doc).unwrap();
        assert_eq!(hits.len(), 2, "deduped");
    }

    #[test]
    fn keyword_case_insensitivity() {
        let doc = atp();
        let q = SelectQuery::parse("SELECT p/points FROM p IN ATPList//player WHERE p/@rank = 1").unwrap();
        assert_eq!(texts(&doc, &q.eval(&doc).unwrap()), vec!["475"]);
    }

    #[test]
    fn keywords_inside_quotes_ignored() {
        let doc = Document::parse("<r><a>from where</a></r>").unwrap();
        let q = SelectQuery::parse(r#"Select v/a from v in r where v/a = "from where""#).unwrap();
        assert_eq!(q.eval(&doc).unwrap().len(), 1);
    }

    #[test]
    fn to_text_roundtrip() {
        for src in [
            "Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;",
            "Select p/a, p/b from p in r//x;",
            "Select p from p in r//x where p/@k = 1;",
        ] {
            let q = SelectQuery::parse(src).unwrap();
            let q2 = SelectQuery::parse(&q.to_text()).unwrap();
            assert_eq!(q.eval(&atp()).unwrap(), q2.eval(&atp()).unwrap(), "src={src}");
        }
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "",
            "p/citizenship from p in r",    // missing select
            "Select p/x where p/y = 1",     // missing from
            "Select from p in r",           // no projections
            "Select q/x from p in r",       // projection not var-rooted
            "Select p/x from p r",          // missing `in`
            "Select p/x from p in",         // missing path
            "Select p/x from p in r where", // empty where is ok...
        ] {
            let res = SelectQuery::parse(bad);
            if bad.ends_with("where") {
                assert!(res.is_ok(), "trailing empty where tolerated: {bad}");
            } else {
                assert!(res.is_err(), "should fail: {bad}");
            }
        }
    }
}

#[cfg(test)]
mod descendant_projection_tests {
    use super::*;
    use crate::path::Axis;

    /// Regression: `v//x` after the variable must keep the descendant
    /// axis (an earlier version silently degraded it to a child step).
    #[test]
    fn double_slash_after_variable_is_descendant() {
        let doc = Document::parse("<r><mid><deep><x>found</x></deep></mid></r>").unwrap();
        let q = SelectQuery::parse("Select v//x from v in r").unwrap();
        assert_eq!(q.projections[0].steps[0].axis, Axis::Descendant);
        let hits = q.eval(&doc).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]).unwrap(), "found");
        // Single slash stays a child step and misses the deep node.
        let q = SelectQuery::parse("Select v/x from v in r").unwrap();
        assert_eq!(q.projections[0].steps[0].axis, Axis::Child);
        assert!(q.eval(&doc).unwrap().is_empty());
    }

    #[test]
    fn double_slash_in_where_clause_is_descendant() {
        let doc = Document::parse("<r><mid><lastname>Federer</lastname></mid><hit>y</hit></r>").unwrap();
        let q = SelectQuery::parse("Select v/hit from v in r where v//lastname = Federer").unwrap();
        assert_eq!(q.eval(&doc).unwrap().len(), 1);
        let q = SelectQuery::parse("Select v/hit from v in r where v/lastname = Federer").unwrap();
        assert!(q.eval(&doc).unwrap().is_empty(), "child axis must not see the deep node");
    }

    #[test]
    fn descendant_projection_to_text_roundtrip() {
        let src = "Select v//x, v/y from v in r where v//z = 1";
        let q = SelectQuery::parse(src).unwrap();
        let q2 = SelectQuery::parse(&q.to_text()).unwrap();
        assert_eq!(q, q2, "text={}", q.to_text());
        assert!(q.to_text().contains("v//x"), "{}", q.to_text());
        assert!(q.to_text().contains("v//z"), "{}", q.to_text());
    }

    #[test]
    fn variable_prefix_words_remain_errors_or_literals() {
        // `very/x` does not start with `v/` — projection must be rejected…
        assert!(SelectQuery::parse("Select very/x from v in r").is_err());
        // …and in a where clause, `very` is a literal, not a path.
        let doc = Document::parse("<r/>").unwrap();
        let q = SelectQuery::parse("Select v from v in r where very = very").unwrap();
        assert_eq!(q.eval(&doc).unwrap().len(), 1);
    }
}
