//! Property-based tests for the query layer.
//!
//! - Path evaluation agrees with a naive reference evaluator on random
//!   documents (DESIGN.md §6).
//! - Results are always deduplicated and in document order.
//! - `apply(delete); apply(compensating insert)` is the identity at the
//!   update-action level (the §3.1 construction, before the transaction
//!   layer automates it).
//! - NodePath of/resolve round-trips on random documents.

use axml_query::update::Effect;
use axml_query::{InsertPos, Locator, NodePath, PathExpr, SelectQuery, UpdateAction};
use axml_xml::{Document, Fragment, NodeId, QName};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Random documents over a tiny name alphabet (so paths actually match).
// ----------------------------------------------------------------------

const NAMES: &[&str] = &["a", "b", "c"];

fn doc_strategy() -> impl Strategy<Value = Document> {
    let leaf = (0usize..NAMES.len()).prop_map(|i| Fragment::elem(NAMES[i]));
    let frag = leaf.prop_recursive(4, 40, 4, |inner| {
        (0usize..NAMES.len(), prop::collection::vec(inner, 0..4)).prop_map(|(i, children)| Fragment::Element {
            name: QName::local(NAMES[i]),
            attrs: vec![],
            children,
        })
    });
    prop::collection::vec(frag, 0..5).prop_map(|frags| {
        let mut doc = Document::new("r");
        let root = doc.root();
        for f in &frags {
            doc.append_fragment(root, f).unwrap();
        }
        doc
    })
}

/// Random simple path: steps of child/descendant axes over the alphabet.
fn path_strategy() -> impl Strategy<Value = String> {
    let step = (0usize..NAMES.len() + 1, prop::bool::ANY).prop_map(|(i, desc)| {
        let name = if i == NAMES.len() { "*" } else { NAMES[i] };
        (name.to_string(), desc)
    });
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let mut s = String::from("r");
        for (name, desc) in steps {
            s.push_str(if desc { "//" } else { "/" });
            s.push_str(&name);
        }
        s
    })
}

// ----------------------------------------------------------------------
// Naive reference evaluator: brute force over all nodes.
// ----------------------------------------------------------------------

fn ref_eval(doc: &Document, path: &str) -> Vec<NodeId> {
    // Parse manually: "r" then steps separated by / or //.
    let mut ctx: Vec<NodeId> = vec![];
    let mut rest = path;
    let mut first = true;
    while !rest.is_empty() {
        let (axis_desc, step_src) = if let Some(r) = rest.strip_prefix("//") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix('/') {
            (false, r)
        } else {
            (false, rest)
        };
        let end = step_src.find('/').unwrap_or(step_src.len());
        let name = &step_src[..end];
        rest = &step_src[end..];
        let matches_name = |doc: &Document, n: NodeId| -> bool {
            match doc.name(n) {
                Ok(q) => name == "*" || q.local == name,
                Err(_) => false,
            }
        };
        if first {
            first = false;
            // Virtual document node: candidates are root (child) or all
            // descendants of root (descendant).
            let root = doc.root();
            ctx = if axis_desc {
                doc.descendants_and_self(root).filter(|n| matches_name(doc, *n)).collect()
            } else if matches_name(doc, root) {
                vec![root]
            } else {
                vec![]
            };
            continue;
        }
        let mut next = Vec::new();
        for n in doc.all_nodes() {
            let related = if axis_desc {
                ctx.iter().any(|c| doc.is_descendant_of(n, *c))
            } else {
                doc.parent(n).ok().flatten().map(|p| ctx.contains(&p)).unwrap_or(false)
            };
            if related && matches_name(doc, n) {
                next.push(n);
            }
        }
        ctx = next; // all_nodes is pre-order, so this is doc-order + deduped
    }
    ctx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn path_eval_matches_reference(doc in doc_strategy(), path in path_strategy()) {
        let parsed = PathExpr::parse(&path).unwrap();
        let fast = parsed.eval(&doc);
        let slow = ref_eval(&doc, &path);
        prop_assert_eq!(&fast, &slow, "path={} doc={}", path, doc.to_xml());
    }

    #[test]
    fn path_results_doc_ordered_and_deduped(doc in doc_strategy(), path in path_strategy()) {
        let parsed = PathExpr::parse(&path).unwrap();
        let hits = parsed.eval(&doc);
        let mut sorted = hits.clone();
        sorted.sort_by(|a, b| doc.cmp_document_order(*a, *b).unwrap());
        prop_assert_eq!(&hits, &sorted);
        let mut dedup = hits.clone();
        dedup.dedup();
        prop_assert_eq!(&hits, &dedup);
    }

    #[test]
    fn delete_then_compensate_is_identity(doc in doc_strategy(), path in path_strategy()) {
        let mut doc = doc;
        let before = doc.to_xml();
        let mut action = UpdateAction::delete(Locator::Path(PathExpr::parse(&path).unwrap()));
        action.allow_empty_location = true;
        let report = match action.apply(&mut doc) {
            Ok(r) => r,
            Err(_) => return Ok(()), // e.g. root selected: rejected, doc untouched
        };
        // Compensate in reverse order of effects.
        for effect in report.effects.iter().rev() {
            let Effect::Deleted { fragment, parent_path, position } = effect else {
                panic!("delete produced a non-delete effect");
            };
            let comp = UpdateAction::insert_at(
                Locator::Node(parent_path.clone()),
                vec![fragment.clone()],
                InsertPos::At(*position),
            );
            comp.apply(&mut doc).unwrap();
        }
        prop_assert_eq!(doc.to_xml(), before, "path={}", path);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn replace_then_compensate_is_identity(doc in doc_strategy(), path in path_strategy()) {
        let mut doc = doc;
        let before = doc.to_xml();
        let mut action = UpdateAction::replace(
            Locator::Path(PathExpr::parse(&path).unwrap()),
            vec![Fragment::elem_text("z", "new")],
        );
        action.allow_empty_location = true;
        let report = match action.apply(&mut doc) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        // Reverse order, inverting each primitive.
        for effect in report.effects.iter().rev() {
            match effect {
                Effect::Deleted { fragment, parent_path, position } => {
                    UpdateAction::insert_at(
                        Locator::Node(parent_path.clone()),
                        vec![fragment.clone()],
                        InsertPos::At(*position),
                    )
                    .apply(&mut doc)
                    .unwrap();
                }
                Effect::Inserted { path, .. } => {
                    UpdateAction::delete(Locator::Node(path.clone())).apply(&mut doc).unwrap();
                }
            }
        }
        prop_assert_eq!(doc.to_xml(), before, "path={}", path);
    }

    #[test]
    fn nodepath_roundtrip_random_docs(doc in doc_strategy()) {
        for node in doc.all_nodes().collect::<Vec<_>>() {
            let p = NodePath::of(&doc, node).unwrap();
            prop_assert_eq!(p.resolve(&doc).unwrap(), node);
        }
    }

    #[test]
    fn action_xml_roundtrip_random_paths(path in path_strategy()) {
        let action = UpdateAction::insert(
            Locator::Path(PathExpr::parse(&path).unwrap()),
            vec![Fragment::elem_text("k", "v")],
        );
        let xml = action.to_action_xml();
        let back = UpdateAction::parse_action_xml(&xml).unwrap();
        prop_assert_eq!(action, back);
    }
}

// ----------------------------------------------------------------------
// Select-from-where vs a naive reference evaluator.
// ----------------------------------------------------------------------

/// Random select queries: `Select v<proj> from v in <from> where v<path> = <val>`.
fn select_strategy() -> impl Strategy<Value = String> {
    let rel = prop_oneof![
        (0usize..NAMES.len()).prop_map(|i| format!("/{}", NAMES[i])),
        (0usize..NAMES.len()).prop_map(|i| format!("//{}", NAMES[i])),
        (0usize..NAMES.len(), 0usize..NAMES.len()).prop_map(|(i, j)| format!("/{}/{}", NAMES[i], NAMES[j])),
    ];
    (path_strategy(), rel.clone(), prop::option::of(rel)).prop_map(|(from, proj, cond)| match cond {
        None => format!("Select v{proj} from v in {from}"),
        Some(c) => format!("Select v{proj} from v in {from} where exists v{c}"),
    })
}

/// Naive reference: enumerate from-bindings via ref_eval on the absolute
/// path, apply exists-condition and projection by brute force.
fn ref_select(doc: &Document, from: &str, proj: &str, cond: Option<&str>) -> Vec<NodeId> {
    let rel_eval = |binding: NodeId, rel: &str| -> Vec<NodeId> {
        // rel is "/x", "//x", or "/x/y".
        let (desc_first, rest) =
            if let Some(r) = rel.strip_prefix("//") { (true, r) } else { (false, rel.trim_start_matches('/')) };
        let parts: Vec<&str> = rest.split('/').collect();
        let mut ctx = vec![binding];
        for (k, name) in parts.iter().enumerate() {
            let mut next = Vec::new();
            for n in doc.all_nodes() {
                let matches = doc.name(n).map(|q| q.local == *name).unwrap_or(false);
                if !matches {
                    continue;
                }
                let related = if k == 0 && desc_first {
                    ctx.iter().any(|c| doc.is_descendant_of(n, *c))
                } else {
                    doc.parent(n).ok().flatten().map(|p| ctx.contains(&p)).unwrap_or(false)
                };
                if related {
                    next.push(n);
                }
            }
            ctx = next;
        }
        ctx
    };
    let mut out = Vec::new();
    for binding in ref_eval(doc, from) {
        if let Some(c) = cond {
            if rel_eval(binding, c).is_empty() {
                continue;
            }
        }
        out.extend(rel_eval(binding, proj));
    }
    out.sort();
    out.dedup();
    out.sort_by(|a, b| doc.cmp_document_order(*a, *b).unwrap());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn select_matches_reference(doc in doc_strategy(), q in select_strategy()) {
        let parsed = SelectQuery::parse(&q).unwrap();
        let fast = parsed.eval(&doc).unwrap();
        // Re-extract the pieces for the reference evaluator.
        let from = parsed.from.to_text();
        let proj_text = parsed.projections[0].to_text();
        let proj = if proj_text.starts_with("//") { proj_text.clone() } else { format!("/{proj_text}") };
        let cond = match &parsed.condition {
            axml_query::Condition::True => None,
            axml_query::Condition::Exists(p) => {
                let t = p.to_text();
                Some(if t.starts_with("//") { t } else { format!("/{t}") })
            }
            other => panic!("unexpected condition {other:?}"),
        };
        let slow = ref_select(&doc, &from, &proj, cond.as_deref());
        prop_assert_eq!(&fast, &slow, "q={} doc={}", q, doc.to_xml());
    }

    #[test]
    fn select_to_text_is_semantically_stable(doc in doc_strategy(), q in select_strategy()) {
        let parsed = SelectQuery::parse(&q).unwrap();
        let reparsed = SelectQuery::parse(&parsed.to_text()).unwrap();
        prop_assert_eq!(parsed.eval(&doc).unwrap(), reparsed.eval(&doc).unwrap(), "q={}", q);
    }
}
