use super::*;
use axml_core::chain::ActiveList;
use axml_core::ids::{InvocationId, TxnId};
use axml_p2p::PeerId;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test temp directory (removed by `TempDir::drop`).
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("axml-store-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn entry(i: u64) -> JournalEntry {
    let txn = TxnId::new(PeerId(1), i);
    match i % 3 {
        0 => JournalEntry::Begin { txn, parent: None, chain: ActiveList::new(PeerId(1), true), at: i },
        1 => JournalEntry::RemoteInvoked {
            txn,
            child: PeerId(2),
            inv: InvocationId::new(PeerId(1), i),
            method: format!("S{i}"),
        },
        _ => JournalEntry::Resolved { txn, committed: i.is_multiple_of(2), at: i },
    }
}

#[test]
fn torn_commit_record_presumes_abort_and_compensates() {
    // End-to-end presumed-abort recovery through a torn tail: a peer
    // journals Begin + Local effects, then crashes while writing the
    // commit record — the frame tears, so the decision was never
    // acknowledged. Recovery discards the torn tail, replay finds the
    // context in doubt, and presumed abort compensates the logged
    // effects, restoring the document to its baseline.
    use axml_core::context::TxnState;
    use axml_core::durability::{recover_in_doubt, replay};
    use axml_doc::Repository;
    use axml_query::{Locator, UpdateAction};
    use axml_xml::Fragment;

    let tmp = TempDir::new();
    let mut repo = Repository::new();
    repo.put_xml("d1", "<d><slot>initial</slot></d>").unwrap();
    let baseline = repo.get("d1").unwrap().to_xml();
    let action = UpdateAction::replace(Locator::parse("d/slot").unwrap(), vec![Fragment::elem_text("slot", "written")]);
    let report = action.apply(repo.get_mut("d1").unwrap()).unwrap();
    assert_ne!(repo.get("d1").unwrap().to_xml(), baseline, "the update really landed");

    let txn = TxnId::new(PeerId(1), 0);
    let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
    assert!(sink.append(&JournalEntry::Begin { txn, parent: None, chain: ActiveList::new(PeerId(1), true), at: 1 }));
    assert!(sink.append(&JournalEntry::Local {
        txn,
        doc: "d1".into(),
        op_label: "replace".into(),
        effects: report.effects,
    }));
    // The commit decision tears mid-write and the peer dies before the
    // heal: the torn frame stays on disk, but it was never acknowledged.
    sink.faults = StorageFaultPlane { torn_append_prob: 1.0, sync_failure_prob: 0.0, partial_segment_on_crash: false };
    assert!(!sink.append(&JournalEntry::Resolved { txn, committed: true, at: 2 }));
    let entries = sink.crash_restart();
    assert_eq!(sink.stats().torn_tails_discarded, 1, "the torn commit record is a discarded crash artifact");
    assert_eq!(entries.len(), 2, "Begin + Local survive; the unacknowledged decision does not");

    let mut contexts = replay(&entries).unwrap();
    assert_eq!(contexts.len(), 1);
    assert_eq!(contexts[0].state, TxnState::Active, "no decision on disk: the context is in doubt");
    let outcome = recover_in_doubt(&mut contexts, &mut repo, 99);
    assert_eq!(outcome.presumed_aborted, vec![txn]);
    assert_eq!(contexts[0].state, TxnState::Aborted);
    assert_eq!(repo.get("d1").unwrap().to_xml(), baseline, "compensation undid the logged effects");
}

#[test]
fn append_then_crash_restart_round_trips() {
    let tmp = TempDir::new();
    let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
    let entries: Vec<JournalEntry> = (0..20).map(entry).collect();
    for e in &entries {
        assert!(sink.append(e), "fault-free append succeeds");
    }
    assert!(sink.stats().bytes_appended > 0);
    let recovered = sink.crash_restart();
    assert_eq!(recovered, entries);
    assert_eq!(sink.stats().recovery_entries, 20);
    assert_eq!(sink.stats().torn_tails_discarded, 0);
}

#[test]
fn wal_stats_are_monotone_pure_reads_for_the_gauge_plane() {
    // The time-series sampler reads `stats()` at every window boundary
    // and publishes `bytes_appended` / `segments_rotated` as the
    // `wal_bytes` / `wal_segments` gauges. That is only sound if the
    // counters never move backwards under appends and the read itself
    // changes nothing — sampling twice in a row must see the same log.
    let tmp = TempDir::new();
    let mut config = WalConfig::new(tmp.path());
    config.segment_bytes = 256; // force rotations mid-sequence
    let mut sink = WalSink::create(config).unwrap();
    let (mut bytes, mut segments) = (0u64, 0u64);
    for i in 0..30 {
        assert!(sink.append(&entry(i)));
        let s = sink.stats();
        assert!(s.bytes_appended > bytes, "bytes strictly grow per append");
        assert!(s.segments_rotated >= segments, "rotations never rewind");
        assert_eq!(sink.stats(), s, "stats() is a pure read");
        (bytes, segments) = (s.bytes_appended, s.segments_rotated);
    }
    assert!(segments >= 1, "the tiny threshold forced at least one rotation");
}

#[test]
fn recovery_survives_sink_reopen() {
    // A brand-new sink over the same directory (a true process restart)
    // sees exactly what the dead one acknowledged.
    let tmp = TempDir::new();
    let entries: Vec<JournalEntry> = (0..7).map(entry).collect();
    {
        let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
        for e in &entries {
            assert!(sink.append(e));
        }
        // Dropped without any clean shutdown.
    }
    let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
    assert_eq!(sink.crash_restart(), entries);
}

#[test]
fn segments_rotate_at_threshold_and_recover_in_order() {
    let tmp = TempDir::new();
    let mut config = WalConfig::new(tmp.path());
    config.segment_bytes = 256; // tiny: force many rotations
    let mut sink = WalSink::create(config).unwrap();
    let entries: Vec<JournalEntry> = (0..40).map(entry).collect();
    for e in &entries {
        assert!(sink.append(e));
    }
    assert!(sink.stats().segments_rotated >= 2, "rotated {}", sink.stats().segments_rotated);
    let segs = segment_indices(tmp.path()).unwrap();
    assert!(segs.len() >= 3, "{segs:?}");
    assert_eq!(sink.crash_restart(), entries, "recovery stitches segments in order");
}

#[test]
fn torn_tail_in_final_segment_is_discarded_and_truncated() {
    let tmp = TempDir::new();
    let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
    let entries: Vec<JournalEntry> = (0..5).map(entry).collect();
    for e in &entries {
        assert!(sink.append(e));
    }
    drop(sink);
    // Tear the tail: append half of a valid frame.
    let frame = encode_frame(&entry(99));
    let path = segment_path(tmp.path(), 0);
    let mut bytes = std::fs::read(&path).unwrap();
    let clean_len = bytes.len() as u64;
    bytes.extend_from_slice(&frame[..frame.len() / 2]);
    std::fs::write(&path, &bytes).unwrap();
    let recovered = recover_dir(tmp.path()).unwrap();
    assert_eq!(recovered.entries, entries);
    assert_eq!(recovered.torn_tails_discarded, 1);
    assert_eq!(recovered.last_segment_len, clean_len);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "segment truncated to high water");
    // Idempotent: a second scan finds nothing torn.
    let again = recover_dir(tmp.path()).unwrap();
    assert_eq!(again.entries, entries);
    assert_eq!(again.torn_tails_discarded, 0);
}

#[test]
fn corrupt_frame_in_sealed_segment_is_a_hard_error() {
    let tmp = TempDir::new();
    let mut config = WalConfig::new(tmp.path());
    config.segment_bytes = 200;
    let mut sink = WalSink::create(config).unwrap();
    for i in 0..30 {
        assert!(sink.append(&entry(i)));
    }
    drop(sink);
    let segs = segment_indices(tmp.path()).unwrap();
    assert!(segs.len() >= 2);
    // Flip one payload byte in the FIRST (sealed) segment.
    let path = segment_path(tmp.path(), segs[0]);
    let mut bytes = std::fs::read(&path).unwrap();
    let idx = FRAME_HEADER + 2;
    bytes[idx] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let err = recover_dir(tmp.path()).unwrap_err();
    assert!(matches!(err, WalError::CorruptInterior { segment, .. } if segment == segs[0]), "{err}");
}

#[test]
fn sync_failure_rolls_back_cleanly() {
    let tmp = TempDir::new();
    let faults = StorageFaultPlane { sync_failure_prob: 1.0, ..StorageFaultPlane::default() };
    let mut sink = WalSink::with_faults(WalConfig::new(tmp.path()), faults, 7).unwrap();
    assert!(!sink.append(&entry(0)), "every append faults");
    assert!(!sink.append(&entry(1)));
    assert_eq!(sink.stats().append_faults, 2);
    assert_eq!(sink.stats().bytes_appended, 0);
    assert_eq!(sink.crash_restart(), Vec::new(), "nothing became durable");
}

#[test]
fn torn_append_reports_failure_and_heals_on_next_append() {
    let tmp = TempDir::new();
    // Deterministic: first append tears, later draws depend on the seed;
    // prob 1.0 makes every faulting append tear.
    let faults = StorageFaultPlane { torn_append_prob: 1.0, ..StorageFaultPlane::default() };
    let mut sink = WalSink::with_faults(WalConfig::new(tmp.path()), faults, 3).unwrap();
    assert!(!sink.append(&entry(0)), "torn append reports failure");
    let seg = segment_path(tmp.path(), 0);
    assert!(std::fs::metadata(&seg).unwrap().len() > 0, "torn bytes are on disk");
    // The forced path heals the torn bytes and lands the entry.
    sink.append_forced(&entry(1));
    let recovered = sink.crash_restart();
    assert_eq!(recovered, vec![entry(1)], "only the acknowledged entry survives");
}

#[test]
fn torn_append_then_crash_leaves_tail_for_recovery_to_discard() {
    let tmp = TempDir::new();
    let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
    assert!(sink.append(&entry(0)));
    // Switch on tearing for the next append only.
    sink.faults.torn_append_prob = 1.0;
    assert!(!sink.append(&entry(1)));
    sink.faults.torn_append_prob = 0.0;
    // Crash before any heal: the torn frame is still on disk.
    let recovered = sink.crash_restart();
    assert_eq!(recovered, vec![entry(0)]);
    assert_eq!(sink.stats().torn_tails_discarded, 1);
    // The sink keeps working after the restart.
    assert!(sink.append(&entry(2)));
    assert_eq!(sink.crash_restart(), vec![entry(0), entry(2)]);
}

#[test]
fn partial_segment_garbage_on_crash_is_discarded() {
    let tmp = TempDir::new();
    let faults = StorageFaultPlane { partial_segment_on_crash: true, ..StorageFaultPlane::default() };
    let mut sink = WalSink::with_faults(WalConfig::new(tmp.path()), faults, 11).unwrap();
    let entries: Vec<JournalEntry> = (0..6).map(entry).collect();
    for e in &entries {
        assert!(sink.append(e));
    }
    let recovered = sink.crash_restart();
    assert_eq!(recovered, entries, "garbage tail discarded, clean prefix kept");
    assert_eq!(sink.stats().torn_tails_discarded, 1);
}

#[test]
fn append_forced_lands_under_full_fault_storm() {
    let tmp = TempDir::new();
    let faults = StorageFaultPlane { torn_append_prob: 0.7, sync_failure_prob: 0.7, partial_segment_on_crash: true };
    let mut sink = WalSink::with_faults(WalConfig::new(tmp.path()), faults, 5).unwrap();
    let entries: Vec<JournalEntry> = (0..12).map(entry).collect();
    for e in &entries {
        sink.append_forced(e);
    }
    assert_eq!(sink.crash_restart(), entries, "forced appends are never lost");
}

#[test]
fn frame_codec_round_trips() {
    for i in 0..9 {
        let e = entry(i);
        let frame = encode_frame(&e);
        match scan_segment(&frame) {
            SegmentScan::Clean(v) => assert_eq!(v, vec![e]),
            SegmentScan::Torn { .. } => panic!("clean frame scanned as torn"),
        }
    }
}

#[test]
fn empty_directory_recovers_empty() {
    let tmp = TempDir::new();
    let recovered = recover_dir(tmp.path()).unwrap();
    assert!(recovered.entries.is_empty());
    assert_eq!(recovered.last_segment, 0);
}

proptest! {
    /// Satellite: arbitrary entry sequences → frames → truncate the file
    /// at an arbitrary byte → recovery equals the longest clean prefix.
    #[test]
    fn truncation_recovers_longest_clean_prefix(
        picks in prop::collection::vec(0u64..50, 1..12),
        cut_seed in 0u64..10_000,
    ) {
        let tmp = TempDir::new();
        let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
        let entries: Vec<JournalEntry> = picks.iter().map(|&i| entry(i)).collect();
        let mut boundaries = vec![0u64]; // cumulative frame end offsets
        for e in &entries {
            prop_assert!(sink.append(e));
            boundaries.push(boundaries.last().unwrap() + encode_frame(e).len() as u64);
        }
        drop(sink);
        let path = segment_path(tmp.path(), 0);
        let total = std::fs::metadata(&path).unwrap().len();
        prop_assert_eq!(total, *boundaries.last().unwrap());
        let cut = cut_seed % (total + 1);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        // Longest clean prefix: every frame wholly before the cut.
        let survivors = boundaries.iter().skip(1).filter(|&&end| end <= cut).count();
        let recovered = recover_dir(tmp.path()).unwrap();
        prop_assert_eq!(&recovered.entries[..], &entries[..survivors]);
        let expect_torn = u64::from(boundaries[survivors] != cut);
        prop_assert_eq!(recovered.torn_tails_discarded, expect_torn);
    }

    /// Satellite: corrupting a byte inside the final frame drops exactly
    /// that frame.
    #[test]
    fn tail_corruption_drops_only_the_tail_frame(
        picks in prop::collection::vec(0u64..50, 2..10),
        flip_seed in 0u64..10_000,
    ) {
        let tmp = TempDir::new();
        let mut sink = WalSink::create(WalConfig::new(tmp.path())).unwrap();
        let entries: Vec<JournalEntry> = picks.iter().map(|&i| entry(i)).collect();
        for e in &entries {
            prop_assert!(sink.append(e));
        }
        drop(sink);
        let path = segment_path(tmp.path(), 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let last_len = encode_frame(entries.last().unwrap()).len() as u64;
        let last_start = bytes.len() as u64 - last_len;
        let flip = last_start + flip_seed % last_len;
        bytes[flip as usize] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = recover_dir(tmp.path()).unwrap();
        prop_assert_eq!(&recovered.entries[..], &entries[..entries.len() - 1]);
        prop_assert_eq!(recovered.torn_tails_discarded, 1);
    }
}
