//! Per-peer on-disk write-ahead log for the durability journal.
//!
//! The paper assumes the transaction context "encapsulates all the
//! information required for recovery"; `axml-core`'s journal makes that
//! concrete in memory, and this crate makes it survive real crashes. A
//! [`WalSink`] implements [`DurabilitySink`] over segment files of
//! length-prefixed, checksummed frames, with buffered writes, explicit
//! flush/sync points, segment rotation at a size threshold, and recovery
//! that scans the segments to a high-water mark.
//!
//! ## Frame format
//!
//! ```text
//! [ len: u32 LE ][ checksum: u64 LE = fnv1a64(payload) ][ payload ]
//! ```
//!
//! The payload is one [`JournalEntry`] in the journal's JSON codec.
//! Segments are `wal-NNNNNNNN.seg`, numbered from zero; the writer
//! rotates to a fresh segment once the current one reaches the
//! configured threshold.
//!
//! ## Torn-tail rule
//!
//! Recovery reads frames segment by segment. A truncated or
//! checksum-corrupt frame in the **final** segment is a crash artifact:
//! the tail is discarded (and the segment truncated back to the clean
//! high-water mark). The same damage in any earlier segment cannot be
//! explained by a crash — earlier segments were sealed — so it is a hard
//! [`WalError::CorruptInterior`].
//!
//! ## Fault injection
//!
//! A [`StorageFaultPlane`] (carried on the network fault plane, consumed
//! here) makes appends fail prospectively: a *sync failure* writes
//! nothing, a *torn append* leaves a prefix of the frame's bytes on disk
//! and reports failure (the writer heals the torn bytes before its next
//! append; a crash first leaves them for the torn-tail rule), and
//! *partial segment on crash* appends seeded garbage at crash time.
//! Acknowledged appends are never retroactively lost — that is the
//! soundness contract [`DurabilitySink`] demands.
//!
//! ## Determinism contract
//!
//! Frames carry no wall-clock time and no absolute paths; fault draws
//! come from a seeded RNG. Harnesses give each case its own temp
//! directory and never feed paths into digests, so runs stay
//! byte-identical across hosts and parallelism levels.
//!
//! ## Observability
//!
//! [`WalStats`] (via `DurabilitySink::stats`) is the sink's side of the
//! time-series plane: the peer samples `bytes_appended` as the
//! `wal_bytes` gauge and `segments_rotated` as `wal_segments` at every
//! sampling window boundary. Both counters are monotone under appends
//! and `stats()` is a pure read, so sampling can never perturb the log
//! or the seeded schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::missing_errors_doc, clippy::missing_panics_doc, clippy::module_name_repetitions)]
// Frame offsets and fault cut points all fit comfortably in the lossy
// range of these casts (lengths are bounded by MAX_PAYLOAD).
#![allow(clippy::cast_possible_truncation)]

use axml_core::durability::{self, DurabilitySink, JournalEntry, WalStats};
use axml_p2p::StorageFaultPlane;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: `u32` length + `u64` FNV-1a checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on one frame's payload — larger length prefixes are
/// treated as corruption, so a garbage header cannot make recovery
/// attempt a multi-gigabyte read.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// FNV-1a 64-bit, the workspace's standard content hash.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one journal entry as a WAL frame (header + JSON payload).
#[must_use]
pub fn encode_frame(entry: &JournalEntry) -> Vec<u8> {
    let payload = serde_json::to_string(entry).expect("journal entries are serializable");
    let payload = payload.as_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("payload under 4 GiB").to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a WAL could not be recovered.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A corrupt or truncated frame in a non-final segment — damage a
    /// crash cannot explain (sealed segments are never appended to).
    CorruptInterior {
        /// Segment number holding the damage.
        segment: u64,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::CorruptInterior { segment, offset } => {
                write!(f, "corrupt frame in sealed segment {segment} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What one segment scan found.
enum SegmentScan {
    /// Every byte decoded into frames.
    Clean(Vec<JournalEntry>),
    /// A clean prefix followed by a torn/corrupt frame at `high_water`.
    Torn {
        entries: Vec<JournalEntry>,
        /// Byte offset of the last clean frame's end.
        high_water: u64,
    },
}

/// Decodes one segment's bytes. Frames after the first damaged one are
/// unreachable (framing is sequential), so the scan stops there.
fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut entries = Vec::new();
    let mut pos: usize = 0;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER) else {
            return SegmentScan::Torn { entries, high_water: pos as u64 };
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len == 0 || len > MAX_PAYLOAD {
            return SegmentScan::Torn { entries, high_water: pos as u64 };
        }
        let start = pos + FRAME_HEADER;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            return SegmentScan::Torn { entries, high_water: pos as u64 };
        };
        if fnv1a64(payload) != sum {
            return SegmentScan::Torn { entries, high_water: pos as u64 };
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return SegmentScan::Torn { entries, high_water: pos as u64 };
        };
        match durability::decode(text) {
            Ok(mut decoded) if decoded.len() == 1 => entries.push(decoded.remove(0)),
            _ => return SegmentScan::Torn { entries, high_water: pos as u64 },
        }
        pos = start + len as usize;
    }
    SegmentScan::Clean(entries)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

/// Sorted segment indices present in `dir`.
fn segment_indices(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name.strip_prefix("wal-").and_then(|n| n.strip_suffix(".seg")) {
            if let Ok(i) = num.parse::<u64>() {
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// The result of recovering a WAL directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Entries surviving on disk, oldest first.
    pub entries: Vec<JournalEntry>,
    /// 1 if a torn tail was discarded from the final segment.
    pub torn_tails_discarded: u64,
    /// The final segment's index (0 when the directory was empty).
    pub last_segment: u64,
    /// Clean byte length of the final segment (the high-water mark).
    pub last_segment_len: u64,
}

/// Scans a WAL directory to its high-water mark: every sealed segment
/// must decode fully ([`WalError::CorruptInterior`] otherwise), while a
/// torn tail in the final segment is discarded as a crash artifact — the
/// final segment is truncated back to its last clean frame.
pub fn recover_dir(dir: &Path) -> Result<Recovered, WalError> {
    let indices = segment_indices(dir)?;
    let mut out = Recovered::default();
    let Some(&last) = indices.last() else {
        return Ok(out);
    };
    for &i in &indices {
        let path = segment_path(dir, i);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        match scan_segment(&bytes) {
            SegmentScan::Clean(entries) => {
                if i == last {
                    out.last_segment_len = bytes.len() as u64;
                }
                out.entries.extend(entries);
            }
            SegmentScan::Torn { entries, high_water } => {
                if i != last {
                    return Err(WalError::CorruptInterior { segment: i, offset: high_water });
                }
                // Crash artifact: discard the tail and truncate the
                // segment back to the clean prefix.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(high_water)?;
                file.sync_all()?;
                out.torn_tails_discarded = 1;
                out.last_segment_len = high_water;
                out.entries.extend(entries);
            }
        }
    }
    out.last_segment = last;
    Ok(out)
}

/// Configuration for a [`WalSink`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding this peer's segments (one peer per directory).
    pub dir: PathBuf,
    /// Rotation threshold: a segment reaching this many bytes is sealed
    /// and a fresh one opened.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// A config with the default 64 KiB rotation threshold.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig { dir: dir.into(), segment_bytes: 64 * 1024 }
    }
}

/// How many faulting attempts [`DurabilitySink::append_forced`] makes
/// before writing fault-free.
const FORCE_RETRIES: u32 = 4;

/// An on-disk [`DurabilitySink`]: buffered segment writer with explicit
/// flush points, rotation, torn-tail-tolerant recovery, and seeded
/// storage fault injection.
pub struct WalSink {
    config: WalConfig,
    faults: StorageFaultPlane,
    rng: StdRng,
    writer: Option<BufWriter<File>>,
    /// Current (tail) segment index.
    segment: u64,
    /// Clean, acknowledged byte length of the tail segment.
    clean_len: u64,
    /// Bytes of an unhealed torn append sitting past `clean_len` on
    /// disk. Healed (truncated) before the next write; left in place by
    /// a crash for recovery to discard.
    torn_bytes: u64,
    stats: WalStats,
}

impl fmt::Debug for WalSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `rng` and the buffered `writer` have no useful rendering.
        f.debug_struct("WalSink")
            .field("dir", &self.config.dir)
            .field("segment", &self.segment)
            .field("clean_len", &self.clean_len)
            .field("torn_bytes", &self.torn_bytes)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl WalSink {
    /// Opens (creating the directory if needed) a fault-free sink.
    pub fn create(config: WalConfig) -> Result<WalSink, WalError> {
        Self::with_faults(config, StorageFaultPlane::default(), 0)
    }

    /// Opens a sink whose appends draw storage faults from `faults`
    /// using a deterministic RNG seeded with `seed`.
    pub fn with_faults(config: WalConfig, faults: StorageFaultPlane, seed: u64) -> Result<WalSink, WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let recovered = recover_dir(&config.dir)?;
        let mut sink = WalSink {
            config,
            faults,
            rng: StdRng::seed_from_u64(seed),
            writer: None,
            segment: recovered.last_segment,
            clean_len: recovered.last_segment_len,
            torn_bytes: 0,
            stats: WalStats::default(),
        };
        sink.stats.torn_tails_discarded = recovered.torn_tails_discarded;
        Ok(sink)
    }

    /// The sink's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    fn open_writer(&mut self) -> Result<(), WalError> {
        if self.writer.is_some() {
            return Ok(());
        }
        let path = segment_path(&self.config.dir, self.segment);
        let mut file = OpenOptions::new().create(true).truncate(false).write(true).read(true).open(&path)?;
        // Never trust whatever sits past the clean high-water mark.
        file.set_len(self.clean_len)?;
        file.seek(SeekFrom::Start(self.clean_len))?;
        self.writer = Some(BufWriter::new(file));
        Ok(())
    }

    /// Truncates unacknowledged torn bytes off the tail segment — the
    /// writer's heal step before reusing the segment.
    fn heal(&mut self) -> Result<(), WalError> {
        if self.torn_bytes == 0 {
            return Ok(());
        }
        self.writer = None; // drop the buffered writer over the torn tail
        let path = segment_path(&self.config.dir, self.segment);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(self.clean_len)?;
        file.sync_all()?;
        self.torn_bytes = 0;
        Ok(())
    }

    /// Seals the tail segment (flush + sync) and opens the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        self.segment += 1;
        self.clean_len = 0;
        self.stats.segments_rotated += 1;
        self.open_writer()
    }

    /// One append attempt. `with_faults` gates the fault draws so the
    /// forced path can finish with a clean write.
    fn try_append(&mut self, entry: &JournalEntry, with_faults: bool) -> Result<bool, WalError> {
        self.heal()?;
        self.open_writer()?;
        // Draw both faults unconditionally: the RNG consumption (and so
        // the whole fault schedule) must not depend on which append path
        // asked, or determinism across call sites would be a lie.
        let sync_fail = self.faults.sync_failure_prob > 0.0 && self.rng.gen_bool(self.faults.sync_failure_prob);
        let torn = self.faults.torn_append_prob > 0.0 && self.rng.gen_bool(self.faults.torn_append_prob);
        let frame = encode_frame(entry);
        if with_faults && sync_fail {
            // Nothing reaches the segment: a failed fsync with the page
            // cache dropped. Clean rollback.
            self.stats.append_faults += 1;
            return Ok(false);
        }
        if with_faults && torn {
            // A strict prefix of the frame lands on disk; the append
            // still reports failure. The torn bytes stay until the next
            // append heals them — or a crash hands them to recovery.
            let cut = self.rng.gen_range(1..frame.len() as u64) as usize;
            let w = self.writer.as_mut().expect("opened above");
            w.write_all(&frame[..cut])?;
            w.flush()?;
            self.torn_bytes = cut as u64;
            self.stats.append_faults += 1;
            return Ok(false);
        }
        let w = self.writer.as_mut().expect("opened above");
        w.write_all(&frame)?;
        // Explicit flush point: the entry must be durable before its
        // consequences escape the peer.
        w.flush()?;
        self.clean_len += frame.len() as u64;
        self.stats.bytes_appended += frame.len() as u64;
        if self.clean_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(true)
    }
}

impl DurabilitySink for WalSink {
    fn append(&mut self, entry: &JournalEntry) -> bool {
        self.try_append(entry, true).unwrap_or(false)
    }

    fn append_forced(&mut self, entry: &JournalEntry) {
        for _ in 0..FORCE_RETRIES {
            if self.try_append(entry, true).unwrap_or(false) {
                return;
            }
        }
        // Out of patience: write without fault draws. Decision records
        // and cross-peer obligations must not be lost (see the trait).
        self.try_append(entry, false).expect("forced WAL append failed");
    }

    fn crash_restart(&mut self) -> Vec<JournalEntry> {
        // Crash: volatile state vanishes. The buffered writer is dropped
        // (flushed bytes are on disk; torn bytes stay torn) and, with
        // `partial_segment_on_crash`, a burst of seeded garbage lands on
        // the tail — the partial write of a frame that never completed.
        self.writer = None;
        if self.faults.partial_segment_on_crash {
            let path = segment_path(&self.config.dir, self.segment);
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                let n = self.rng.gen_range(1..=24u64);
                let garbage: Vec<u8> = (0..n).map(|_| (self.rng.gen_range(0..=255u64)) as u8).collect();
                let _ = file.write_all(&garbage);
                let _ = file.flush();
            }
        }
        // Restart: recover from the segments alone.
        let recovered = recover_dir(&self.config.dir).expect("sealed WAL segments must recover");
        self.segment = recovered.last_segment;
        self.clean_len = recovered.last_segment_len;
        self.torn_bytes = 0;
        self.stats.torn_tails_discarded += recovered.torn_tails_discarded;
        self.stats.recovery_entries = recovered.entries.len() as u64;
        recovered.entries
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests;
