//! Document equivalence for compensation checking.
//!
//! The paper (§3.1) notes that compensation "moves the system to an
//! acceptable state (which maybe different from the initial state)" and
//! that plain delete-compensation "does not preserve the original ordering
//! of the deleted nodes". We therefore need two comparison modes:
//!
//! - [`equivalent_ordered`]: exact structural equality (sibling order
//!   matters) — the guarantee achieved when the insert operation supports
//!   "before/after a specific node" positioning.
//! - [`equivalent_unordered`]: equality up to sibling permutation — the
//!   weaker guarantee of naive append-compensation.
//!
//! Both normalize adjacent text, treat CDATA as text, ignore comments and
//! processing instructions, and compare attributes as unordered sets.

use crate::fragment::Fragment;
use crate::name::QName;
use crate::tree::{Document, NodeId};

/// Canonical form of a subtree used for comparisons.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Canon {
    Element { name: QName, attrs: Vec<(QName, String)>, children: Vec<Canon> },
    Text(String),
}

fn canon_fragment(f: &Fragment, sort_siblings: bool) -> Option<Canon> {
    match f {
        Fragment::Element { name, attrs, children } => {
            let mut attrs: Vec<(QName, String)> = attrs.clone();
            attrs.sort();
            let kids = canon_children(children.iter().filter_map(|c| canon_fragment(c, sort_siblings)), sort_siblings);
            Some(Canon::Element { name: name.clone(), attrs, children: kids })
        }
        Fragment::Text(t) | Fragment::Cdata(t) => {
            let t = t.trim();
            if t.is_empty() {
                None
            } else {
                Some(Canon::Text(t.to_string()))
            }
        }
        Fragment::Comment(_) | Fragment::Pi { .. } => None,
    }
}

fn canon_children<I: Iterator<Item = Canon>>(iter: I, sort_siblings: bool) -> Vec<Canon> {
    // Merge adjacent text nodes.
    let mut out: Vec<Canon> = Vec::new();
    for c in iter {
        match (&mut out.last_mut(), c) {
            (Some(Canon::Text(prev)), Canon::Text(t)) => {
                prev.push_str(&t);
            }
            (_, c) => out.push(c),
        }
    }
    if sort_siblings {
        out.sort();
    }
    out
}

fn canon_node(doc: &Document, node: NodeId, sort_siblings: bool) -> Option<Canon> {
    let frag = Fragment::from_node(doc, node).ok()?;
    canon_fragment(&frag, sort_siblings)
}

/// True if the two documents are structurally identical (order-sensitive,
/// ignoring comments/PIs, with attributes compared as sets).
pub fn equivalent_ordered(a: &Document, b: &Document) -> bool {
    canon_node(a, a.root(), false) == canon_node(b, b.root(), false)
}

/// True if the two documents are identical up to recursive sibling
/// permutation.
pub fn equivalent_unordered(a: &Document, b: &Document) -> bool {
    canon_node(a, a.root(), true) == canon_node(b, b.root(), true)
}

/// Fragment-level ordered equivalence (same normalization rules).
pub fn fragments_equivalent_ordered(a: &Fragment, b: &Fragment) -> bool {
    canon_fragment(a, false) == canon_fragment(b, false)
}

/// Fragment-level unordered equivalence.
pub fn fragments_equivalent_unordered(a: &Fragment, b: &Fragment) -> bool {
    canon_fragment(a, true) == canon_fragment(b, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn d(s: &str) -> Document {
        parse(s).unwrap()
    }

    #[test]
    fn identical_docs_equivalent_both_ways() {
        let a = d("<r><a/><b>x</b></r>");
        let b = d("<r><a/><b>x</b></r>");
        assert!(equivalent_ordered(&a, &b));
        assert!(equivalent_unordered(&a, &b));
    }

    #[test]
    fn sibling_order_matters_only_for_ordered() {
        let a = d("<r><a/><b/></r>");
        let b = d("<r><b/><a/></r>");
        assert!(!equivalent_ordered(&a, &b));
        assert!(equivalent_unordered(&a, &b));
    }

    #[test]
    fn attribute_order_never_matters() {
        let a = d(r#"<r x="1" y="2"/>"#);
        let b = d(r#"<r y="2" x="1"/>"#);
        assert!(equivalent_ordered(&a, &b));
    }

    #[test]
    fn attribute_values_matter() {
        let a = d(r#"<r x="1"/>"#);
        let b = d(r#"<r x="2"/>"#);
        assert!(!equivalent_unordered(&a, &b));
    }

    #[test]
    fn comments_and_pis_ignored() {
        let a = d("<r><!-- hey --><a/><?pi?></r>");
        let b = d("<r><a/></r>");
        assert!(equivalent_ordered(&a, &b));
    }

    #[test]
    fn cdata_equals_text() {
        let a = d("<r><![CDATA[xy]]></r>");
        let b = d("<r>xy</r>");
        assert!(equivalent_ordered(&a, &b));
    }

    #[test]
    fn adjacent_text_merged() {
        let mut a = Document::new("r");
        let root = a.root();
        let t1 = a.create_text("x");
        let t2 = a.create_text("y");
        a.append_child(root, t1).unwrap();
        a.append_child(root, t2).unwrap();
        let b = d("<r>xy</r>");
        assert!(equivalent_ordered(&a, &b));
    }

    #[test]
    fn text_differences_detected() {
        let a = d("<r>x</r>");
        let b = d("<r>y</r>");
        assert!(!equivalent_ordered(&a, &b));
        assert!(!equivalent_unordered(&a, &b));
    }

    #[test]
    fn deep_permutation() {
        let a = d("<r><p><a/><b/></p><q/></r>");
        let b = d("<r><q/><p><b/><a/></p></r>");
        assert!(equivalent_unordered(&a, &b));
        assert!(!equivalent_ordered(&a, &b));
    }

    #[test]
    fn fragment_equivalence() {
        let a = Fragment::parse_one("<p><a/><b/></p>").unwrap();
        let b = Fragment::parse_one("<p><b/><a/></p>").unwrap();
        assert!(fragments_equivalent_unordered(&a, &b));
        assert!(!fragments_equivalent_ordered(&a, &b));
        assert!(fragments_equivalent_ordered(&a, &a));
    }

    #[test]
    fn different_names_not_equivalent() {
        assert!(!equivalent_unordered(&d("<r/>"), &d("<s/>")));
    }
}
