//! Owned, detached XML subtrees.
//!
//! A [`Fragment`] is the value form of a subtree: it is what transaction
//! logs store (the data a compensating insert must restore), what service
//! invocations return across peers, and what update operations carry in
//! their `<data>` part. Unlike [`crate::NodeId`]s, fragments are
//! self-contained and serializable.

use crate::error::TreeError;
use crate::name::QName;
use crate::serialize::{escape_attr, escape_text};
use crate::tree::{Document, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned XML subtree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fragment {
    /// An element with attributes and children.
    Element {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attrs: Vec<(QName, String)>,
        /// Child fragments in document order.
        children: Vec<Fragment>,
    },
    /// A text node.
    Text(String),
    /// A CDATA section.
    Cdata(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

impl Fragment {
    /// Builds an empty element fragment.
    pub fn elem(name: impl Into<QName>) -> Fragment {
        Fragment::Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builds an element fragment containing a single text child.
    ///
    /// ```
    /// use axml_xml::Fragment;
    /// let f = Fragment::elem_text("citizenship", "Swiss");
    /// assert_eq!(f.to_xml(), "<citizenship>Swiss</citizenship>");
    /// ```
    pub fn elem_text(name: impl Into<QName>, text: impl Into<String>) -> Fragment {
        Fragment::Element { name: name.into(), attrs: Vec::new(), children: vec![Fragment::Text(text.into())] }
    }

    /// Builder: adds an attribute (elements only; no-op otherwise).
    pub fn with_attr(mut self, name: impl Into<QName>, value: impl Into<String>) -> Fragment {
        if let Fragment::Element { attrs, .. } = &mut self {
            attrs.push((name.into(), value.into()));
        }
        self
    }

    /// Builder: appends a child (elements only; no-op otherwise).
    pub fn with_child(mut self, child: Fragment) -> Fragment {
        if let Fragment::Element { children, .. } = &mut self {
            children.push(child);
        }
        self
    }

    /// Builder: appends a text child (elements only).
    pub fn with_text(self, text: impl Into<String>) -> Fragment {
        self.with_child(Fragment::Text(text.into()))
    }

    /// Parses XML content into fragments (may yield several top-level items).
    pub fn parse_all(input: &str) -> Result<Vec<Fragment>, crate::ParseError> {
        crate::parser::parse_fragment(input)
    }

    /// Parses XML content expected to contain exactly one top-level item.
    pub fn parse_one(input: &str) -> Result<Fragment, crate::ParseError> {
        let mut all = Self::parse_all(input)?;
        if all.len() != 1 {
            return Err(crate::ParseError::new(0, 1, 1, format!("expected exactly one fragment, got {}", all.len())));
        }
        Ok(all.remove(0))
    }

    /// Captures the subtree rooted at `node` as a fragment (non-destructive).
    pub fn from_node(doc: &Document, node: NodeId) -> Result<Fragment, TreeError> {
        match doc.kind(node)? {
            NodeKind::Element { name, attrs } => {
                let mut children = Vec::new();
                for &child in doc.children(node)? {
                    children.push(Fragment::from_node(doc, child)?);
                }
                Ok(Fragment::Element { name: name.clone(), attrs: attrs.clone(), children })
            }
            NodeKind::Text(t) => Ok(Fragment::Text(t.clone())),
            NodeKind::Cdata(t) => Ok(Fragment::Cdata(t.clone())),
            NodeKind::Comment(t) => Ok(Fragment::Comment(t.clone())),
            NodeKind::Pi { target, data } => Ok(Fragment::Pi { target: target.clone(), data: data.clone() }),
        }
    }

    /// Materializes this fragment as a fresh **detached** node in `doc`.
    ///
    /// Returns the new subtree's root id; attach it with the `Document`
    /// editing API.
    pub fn instantiate(&self, doc: &mut Document) -> NodeId {
        match self {
            Fragment::Element { name, attrs, children } => {
                let id = doc.create_element_with_attrs(name.clone(), attrs.iter().cloned());
                for child in children {
                    let cid = child.instantiate(doc);
                    doc.append_child(id, cid).expect("freshly created element accepts children");
                }
                id
            }
            Fragment::Text(t) => doc.create_text(t.clone()),
            Fragment::Cdata(t) => doc.create_cdata(t.clone()),
            Fragment::Comment(t) => doc.create_comment(t.clone()),
            Fragment::Pi { target, data } => doc.create_pi(target.clone(), data.clone()),
        }
    }

    /// Element name, if this is an element.
    pub fn name(&self) -> Option<&QName> {
        match self {
            Fragment::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute lookup, if this is an element.
    pub fn attr(&self, name: &str) -> Option<&str> {
        let q = QName::new(name);
        match self {
            Fragment::Element { attrs, .. } => attrs.iter().find(|(n, _)| *n == q).map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Children, if this is an element (empty slice otherwise).
    pub fn children(&self) -> &[Fragment] {
        match self {
            Fragment::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Concatenated descendant text (like XPath `string()`).
    pub fn text_content(&self) -> String {
        match self {
            Fragment::Text(t) | Fragment::Cdata(t) => t.clone(),
            Fragment::Element { children, .. } => children.iter().map(Fragment::text_content).collect(),
            _ => String::new(),
        }
    }

    /// Total node count of this fragment.
    pub fn node_count(&self) -> usize {
        match self {
            Fragment::Element { children, .. } => 1 + children.iter().map(Fragment::node_count).sum::<usize>(),
            _ => 1,
        }
    }

    /// Serializes this fragment to compact XML.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        match self {
            Fragment::Element { name, attrs, children } => {
                out.push('<');
                out.push_str(&name.as_string());
                for (an, av) in attrs {
                    out.push(' ');
                    out.push_str(&an.as_string());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(av));
                    out.push('"');
                }
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in children {
                        c.write_xml(out);
                    }
                    out.push_str("</");
                    out.push_str(&name.as_string());
                    out.push('>');
                }
            }
            Fragment::Text(t) => out.push_str(&escape_text(t)),
            Fragment::Cdata(t) => {
                out.push_str("<![CDATA[");
                out.push_str(t);
                out.push_str("]]>");
            }
            Fragment::Comment(t) => {
                out.push_str("<!--");
                out.push_str(t);
                out.push_str("-->");
            }
            Fragment::Pi { target, data } => {
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl Document {
    /// Captures the subtree at `node` as a fragment without modifying
    /// the document.
    pub fn extract_fragment(&self, node: NodeId) -> Result<Fragment, TreeError> {
        Fragment::from_node(self, node)
    }

    /// Removes the subtree at `node`, returning `(fragment, parent,
    /// position)` — everything a compensating insert needs.
    pub fn remove_to_fragment(&mut self, node: NodeId) -> Result<(Fragment, NodeId, usize), TreeError> {
        let fragment = Fragment::from_node(self, node)?;
        let (parent, pos) = self.detach(node)?;
        self.delete(node)?;
        Ok((fragment, parent, pos))
    }

    /// Instantiates `fragment` and inserts it under `parent` at `pos`.
    /// Returns the new subtree root.
    pub fn insert_fragment(&mut self, parent: NodeId, pos: usize, fragment: &Fragment) -> Result<NodeId, TreeError> {
        let id = fragment.instantiate(self);
        match self.insert_child(parent, pos, id) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Roll back the orphan allocation so failed inserts leak nothing.
                let _ = self.delete(id);
                Err(e)
            }
        }
    }

    /// Instantiates `fragment` as the last child of `parent`.
    pub fn append_fragment(&mut self, parent: NodeId, fragment: &Fragment) -> Result<NodeId, TreeError> {
        let pos = self.children(parent)?.len();
        self.insert_fragment(parent, pos, fragment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_node_fragment_node() {
        let doc = parse(r#"<r><a x="1">hi<b/></a></r>"#).unwrap();
        let root = doc.root();
        let a = doc.first_child_element(root, "a").unwrap();
        let frag = doc.extract_fragment(a).unwrap();
        assert_eq!(frag.to_xml(), r#"<a x="1">hi<b/></a>"#);

        let mut doc2 = Document::new("other");
        let r2 = doc2.root();
        doc2.append_fragment(r2, &frag).unwrap();
        assert_eq!(doc2.to_xml(), r#"<other><a x="1">hi<b/></a></other>"#);
    }

    #[test]
    fn remove_to_fragment_reports_position() {
        let mut doc = parse("<r><a/><b/><c/></r>").unwrap();
        let root = doc.root();
        let b = doc.first_child_element(root, "b").unwrap();
        let (frag, parent, pos) = doc.remove_to_fragment(b).unwrap();
        assert_eq!(frag.to_xml(), "<b/>");
        assert_eq!(parent, root);
        assert_eq!(pos, 1);
        assert_eq!(doc.to_xml(), "<r><a/><c/></r>");
        // Compensate: restore at the recorded position.
        doc.insert_fragment(parent, pos, &frag).unwrap();
        assert_eq!(doc.to_xml(), "<r><a/><b/><c/></r>");
    }

    #[test]
    fn builders() {
        let f = Fragment::elem("player")
            .with_attr("rank", "1")
            .with_child(Fragment::elem_text("firstname", "Roger"))
            .with_text("!");
        assert_eq!(f.to_xml(), r#"<player rank="1"><firstname>Roger</firstname>!</player>"#);
        assert_eq!(f.attr("rank"), Some("1"));
        assert_eq!(f.children().len(), 2);
        assert_eq!(f.text_content(), "Roger!");
        assert_eq!(f.node_count(), 4);
    }

    #[test]
    fn builders_noop_on_non_elements() {
        let t = Fragment::Text("x".into()).with_attr("a", "1").with_child(Fragment::elem("y"));
        assert_eq!(t, Fragment::Text("x".into()));
        assert_eq!(t.children(), &[] as &[Fragment]);
        assert_eq!(t.attr("a"), None);
        assert_eq!(t.name(), None);
    }

    #[test]
    fn parse_one() {
        let f = Fragment::parse_one("<a><b/></a>").unwrap();
        assert_eq!(f.node_count(), 2);
        assert!(Fragment::parse_one("<a/><b/>").is_err());
        assert!(Fragment::parse_one("").is_err());
    }

    #[test]
    fn escaping_in_fragment_serialization() {
        let f = Fragment::elem("m").with_attr("q", "a\"b").with_text("1 < 2 & 3");
        assert_eq!(f.to_xml(), r#"<m q="a&quot;b">1 &lt; 2 &amp; 3</m>"#);
        // And it re-parses to the same value.
        assert_eq!(Fragment::parse_one(&f.to_xml()).unwrap(), f);
    }

    #[test]
    fn insert_fragment_failure_leaks_nothing() {
        let mut doc = parse("<r><a/></r>").unwrap();
        let before = doc.node_count();
        let root = doc.root();
        let frag = Fragment::elem("big").with_child(Fragment::elem("inner"));
        let err = doc.insert_fragment(root, 99, &frag).unwrap_err();
        assert!(matches!(err, TreeError::PositionOutOfBounds { .. }));
        assert_eq!(doc.node_count(), before, "orphan allocation must be rolled back");
        doc.check_consistency().unwrap();
    }

    #[test]
    fn display_matches_to_xml_and_reparses() {
        let f = Fragment::elem("a").with_attr("x", "1").with_child(Fragment::Cdata("raw<".into()));
        assert_eq!(format!("{f}"), f.to_xml());
        assert_eq!(Fragment::parse_one(&f.to_xml()).unwrap(), f);
    }
}
