//! Arena-based mutable XML tree with stable, unique node identifiers.
//!
//! The paper's dynamic-compensation scheme (§3.1) hinges on two properties
//! of the underlying store:
//!
//! 1. **Insert returns a unique ID** — "we assume that the operation returns
//!    the (unique) ID of the inserted node. As such, the compensating
//!    operation is a delete operation to delete the node having the
//!    corresponding ID." [`NodeId`]s are generational: once a node is
//!    deleted its id can never be resurrected, so a stale compensation can
//!    be detected rather than silently deleting an unrelated node.
//! 2. **Deletes can be logged with enough context to re-insert** — the
//!    editing API reports parent and sibling position for every detach, and
//!    [`crate::Fragment`] captures the removed subtree.

use crate::error::TreeError;
use crate::name::QName;
use crate::serialize::{self, SerializeOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable, unique identifier for a node within one [`Document`].
///
/// Ids are generational (`index` + `generation`): deleting a node bumps the
/// slot's generation, so ids referring to deleted nodes become *stale* and
/// every API taking a [`NodeId`] rejects them with [`TreeError::StaleNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId {
    index: u32,
    generation: u32,
}

impl NodeId {
    /// A compact display form, e.g. `n17.2`, used in logs and traces.
    pub fn display(&self) -> String {
        format!("n{}.{}", self.index, self.generation)
    }

    /// Raw (index, generation) pair; mainly for diagnostics and tests.
    pub fn raw(&self) -> (u32, u32) {
        (self.index, self.generation)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.{}", self.index, self.generation)
    }
}

/// The payload of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a qualified name and ordered attributes.
    Element {
        /// Element name.
        name: QName,
        /// Attributes, in document order.
        attrs: Vec<(QName, String)>,
    },
    /// A text node.
    Text(String),
    /// A CDATA section (serialized as `<![CDATA[..]]>`, compared as text).
    Cdata(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

impl NodeKind {
    /// Short kind label for error messages.
    pub fn label(&self) -> &'static str {
        match self {
            NodeKind::Element { .. } => "element",
            NodeKind::Text(_) => "text",
            NodeKind::Cdata(_) => "cdata",
            NodeKind::Comment(_) => "comment",
            NodeKind::Pi { .. } => "pi",
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    node: Option<Node>,
}

/// A mutable XML document: one arena of nodes plus a distinguished root
/// element.
///
/// All structural edits go through methods that validate ids, preserve
/// well-formedness (no cycles, parent/child links consistent) and surface
/// enough information (positions, detached subtrees) for a transaction log
/// to construct compensating operations later.
#[derive(Debug, Clone)]
pub struct Document {
    slots: Vec<Slot>,
    free: Vec<u32>,
    root: NodeId,
    live: usize,
}

impl Document {
    /// Creates a document whose root is an empty element named `root_name`.
    pub fn new(root_name: impl Into<QName>) -> Self {
        let mut doc =
            Document { slots: Vec::new(), free: Vec::new(), root: NodeId { index: 0, generation: 0 }, live: 0 };
        let root = doc.alloc(NodeKind::Element { name: root_name.into(), attrs: Vec::new() });
        doc.root = root;
        doc
    }

    /// Parses `input` into a new document (convenience for [`crate::parse`]).
    pub fn parse(input: &str) -> Result<Self, crate::ParseError> {
        crate::parser::parse(input)
    }

    /// The root element of the document.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.live
    }

    /// True if `id` refers to a live node of this document.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    fn get(&self, id: NodeId) -> Option<&Node> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.node.as_ref()
    }

    fn get_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.node.as_mut()
    }

    fn expect(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.get(id).ok_or(TreeError::StaleNode)
    }

    fn expect_mut(&mut self, id: NodeId) -> Result<&mut Node, TreeError> {
        self.get_mut(id).ok_or(TreeError::StaleNode)
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        self.live += 1;
        let node = Node { parent: None, children: Vec::new(), kind };
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.node.is_none());
            slot.node = Some(node);
            NodeId { index, generation: slot.generation }
        } else {
            let index = u32::try_from(self.slots.len()).expect("more than u32::MAX nodes");
            self.slots.push(Slot { generation: 0, node: Some(node) });
            NodeId { index, generation: 0 }
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index as usize];
        debug_assert_eq!(slot.generation, id.generation);
        slot.node = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
    }

    // ------------------------------------------------------------------
    // Node creation (detached).
    // ------------------------------------------------------------------

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: impl Into<QName>) -> NodeId {
        self.alloc(NodeKind::Element { name: name.into(), attrs: Vec::new() })
    }

    /// Creates a detached element node with attributes.
    pub fn create_element_with_attrs<N, A>(&mut self, name: N, attrs: A) -> NodeId
    where
        N: Into<QName>,
        A: IntoIterator<Item = (QName, String)>,
    {
        self.alloc(NodeKind::Element { name: name.into(), attrs: attrs.into_iter().collect() })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text(text.into()))
    }

    /// Creates a detached CDATA node.
    pub fn create_cdata(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Cdata(text.into()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Comment(text.into()))
    }

    /// Creates a detached processing-instruction node.
    pub fn create_pi(&mut self, target: impl Into<String>, data: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Pi { target: target.into(), data: data.into() })
    }

    // ------------------------------------------------------------------
    // Structural edits.
    // ------------------------------------------------------------------

    /// Appends detached node `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), TreeError> {
        let len = self.expect(parent)?.children.len();
        self.insert_child(parent, len, child)
    }

    /// Inserts detached node `child` under `parent` at child position `index`.
    ///
    /// Positional insertion is what makes **order-preserving compensation**
    /// possible: the log records the position a node was deleted from, and
    /// the compensating insert restores it "before/after a specific node"
    /// as the paper notes XQuery! allows.
    pub fn insert_child(&mut self, parent: NodeId, index: usize, child: NodeId) -> Result<(), TreeError> {
        if !matches!(self.expect(parent)?.kind, NodeKind::Element { .. }) {
            return Err(TreeError::WrongKind { expected: "element" });
        }
        let child_node = self.expect(child)?;
        if child_node.parent.is_some() {
            return Err(TreeError::NotAttached);
        }
        if child == self.root {
            return Err(TreeError::RootImmutable);
        }
        // A detached child can still have descendants; make sure `parent`
        // isn't among them (that would create a cycle).
        if parent == child || self.is_descendant_of(parent, child) {
            return Err(TreeError::WouldCycle);
        }
        let len = self.expect(parent)?.children.len();
        if index > len {
            return Err(TreeError::PositionOutOfBounds { len, index });
        }
        self.expect_mut(parent)?.children.insert(index, child);
        self.expect_mut(child)?.parent = Some(parent);
        Ok(())
    }

    /// Inserts detached node `child` immediately before `reference`
    /// (which must be attached).
    pub fn insert_before(&mut self, reference: NodeId, child: NodeId) -> Result<(), TreeError> {
        let parent = self.expect(reference)?.parent.ok_or(TreeError::NotAttached)?;
        let pos = self.position_in_parent(reference)?;
        self.insert_child(parent, pos, child)
    }

    /// Inserts detached node `child` immediately after `reference`
    /// (which must be attached).
    pub fn insert_after(&mut self, reference: NodeId, child: NodeId) -> Result<(), TreeError> {
        let parent = self.expect(reference)?.parent.ok_or(TreeError::NotAttached)?;
        let pos = self.position_in_parent(reference)?;
        self.insert_child(parent, pos + 1, child)
    }

    /// Detaches `node` from its parent, keeping its subtree alive.
    ///
    /// Returns `(parent, position)` — exactly the context a compensating
    /// insert needs to restore the node at its original place.
    pub fn detach(&mut self, node: NodeId) -> Result<(NodeId, usize), TreeError> {
        if node == self.root {
            return Err(TreeError::RootImmutable);
        }
        let parent = self.expect(node)?.parent.ok_or(TreeError::NotAttached)?;
        let pos = self.position_in_parent(node)?;
        self.expect_mut(parent)?.children.remove(pos);
        self.expect_mut(node)?.parent = None;
        Ok((parent, pos))
    }

    /// Deletes `node` and its entire subtree, freeing their slots.
    ///
    /// The node may be attached (it is detached first) or already detached.
    /// Returns the number of nodes deleted — the paper's cost measure
    /// ("the number of XML nodes affected is usually a good measure of the
    /// cost of an operation").
    pub fn delete(&mut self, node: NodeId) -> Result<usize, TreeError> {
        if node == self.root {
            return Err(TreeError::RootImmutable);
        }
        self.expect(node)?;
        if self.expect(node)?.parent.is_some() {
            self.detach(node)?;
        }
        let mut stack = vec![node];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            let children = std::mem::take(&mut self.expect_mut(id)?.children);
            stack.extend(children);
            self.dealloc(id);
            count += 1;
        }
        Ok(count)
    }

    /// Replaces attached node `old` with detached node `new`, deleting
    /// `old`'s subtree. Returns the position the replacement happened at.
    pub fn replace(&mut self, old: NodeId, new: NodeId) -> Result<usize, TreeError> {
        if old == self.root {
            return Err(TreeError::RootImmutable);
        }
        self.expect(new)?;
        let (parent, pos) = self.detach(old)?;
        self.delete(old)?;
        self.insert_child(parent, pos, new)?;
        Ok(pos)
    }

    // ------------------------------------------------------------------
    // Node accessors.
    // ------------------------------------------------------------------

    /// The kind (payload) of a node.
    pub fn kind(&self, node: NodeId) -> Result<&NodeKind, TreeError> {
        Ok(&self.expect(node)?.kind)
    }

    /// The element name of a node, if it is an element.
    pub fn name(&self, node: NodeId) -> Result<&QName, TreeError> {
        match &self.expect(node)?.kind {
            NodeKind::Element { name, .. } => Ok(name),
            _ => Err(TreeError::WrongKind { expected: "element" }),
        }
    }

    /// Renames an element node.
    pub fn set_name(&mut self, node: NodeId, name: impl Into<QName>) -> Result<(), TreeError> {
        match &mut self.expect_mut(node)?.kind {
            NodeKind::Element { name: n, .. } => {
                *n = name.into();
                Ok(())
            }
            _ => Err(TreeError::WrongKind { expected: "element" }),
        }
    }

    /// The text of a text/CDATA node.
    pub fn node_text(&self, node: NodeId) -> Result<&str, TreeError> {
        match &self.expect(node)?.kind {
            NodeKind::Text(t) | NodeKind::Cdata(t) => Ok(t),
            _ => Err(TreeError::WrongKind { expected: "text" }),
        }
    }

    /// Overwrites the text of a text/CDATA node, returning the old value.
    pub fn set_node_text(&mut self, node: NodeId, text: impl Into<String>) -> Result<String, TreeError> {
        match &mut self.expect_mut(node)?.kind {
            NodeKind::Text(t) | NodeKind::Cdata(t) => Ok(std::mem::replace(t, text.into())),
            _ => Err(TreeError::WrongKind { expected: "text" }),
        }
    }

    /// Concatenated descendant text content of `node` (like XPath `string()`).
    pub fn text_content(&self, node: NodeId) -> Result<String, TreeError> {
        self.expect(node)?;
        let mut out = String::new();
        for id in self.descendants_and_self(node) {
            if let NodeKind::Text(t) | NodeKind::Cdata(t) = &self.expect(id)?.kind {
                out.push_str(t);
            }
        }
        Ok(out)
    }

    /// Attribute value by name, if present (element nodes only).
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        let qname = QName::new(name);
        match &self.get(node)?.kind {
            NodeKind::Element { attrs, .. } => attrs.iter().find(|(n, _)| *n == qname).map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// All attributes of an element, in document order.
    pub fn attrs(&self, node: NodeId) -> Result<&[(QName, String)], TreeError> {
        match &self.expect(node)?.kind {
            NodeKind::Element { attrs, .. } => Ok(attrs),
            _ => Err(TreeError::WrongKind { expected: "element" }),
        }
    }

    /// Sets (or inserts) an attribute, returning the previous value if any.
    pub fn set_attr(
        &mut self,
        node: NodeId,
        name: impl Into<QName>,
        value: impl Into<String>,
    ) -> Result<Option<String>, TreeError> {
        let name = name.into();
        let value = value.into();
        match &mut self.expect_mut(node)?.kind {
            NodeKind::Element { attrs, .. } => {
                for (n, v) in attrs.iter_mut() {
                    if *n == name {
                        return Ok(Some(std::mem::replace(v, value)));
                    }
                }
                attrs.push((name, value));
                Ok(None)
            }
            _ => Err(TreeError::WrongKind { expected: "element" }),
        }
    }

    /// Removes an attribute, returning its previous value if present.
    pub fn remove_attr(&mut self, node: NodeId, name: &str) -> Result<Option<String>, TreeError> {
        let qname = QName::new(name);
        match &mut self.expect_mut(node)?.kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(pos) = attrs.iter().position(|(n, _)| *n == qname) {
                    Ok(Some(attrs.remove(pos).1))
                } else {
                    Ok(None)
                }
            }
            _ => Err(TreeError::WrongKind { expected: "element" }),
        }
    }

    // ------------------------------------------------------------------
    // Navigation.
    // ------------------------------------------------------------------

    /// The parent of `node`, or `None` for the root / detached nodes.
    pub fn parent(&self, node: NodeId) -> Result<Option<NodeId>, TreeError> {
        Ok(self.expect(node)?.parent)
    }

    /// The children of `node`, in document order.
    pub fn children(&self, node: NodeId) -> Result<&[NodeId], TreeError> {
        Ok(&self.expect(node)?.children)
    }

    /// Child elements only (skipping text/comments/PIs).
    pub fn child_elements(&self, node: NodeId) -> Result<Vec<NodeId>, TreeError> {
        Ok(self
            .expect(node)?
            .children
            .iter()
            .copied()
            .filter(|c| matches!(self.get(*c).map(|n| &n.kind), Some(NodeKind::Element { .. })))
            .collect())
    }

    /// First child element with the given name.
    pub fn first_child_element(&self, node: NodeId, name: &str) -> Option<NodeId> {
        let qname = QName::new(name);
        self.get(node)?
            .children
            .iter()
            .copied()
            .find(|c| matches!(self.get(*c).map(|n| &n.kind), Some(NodeKind::Element { name: n, .. }) if *n == qname))
    }

    /// Position of `node` among its parent's children.
    pub fn position_in_parent(&self, node: NodeId) -> Result<usize, TreeError> {
        let parent = self.expect(node)?.parent.ok_or(TreeError::NotAttached)?;
        self.expect(parent)?.children.iter().position(|c| *c == node).ok_or(TreeError::StaleNode)
    }

    /// True if `node` is a (strict) descendant of `ancestor`.
    pub fn is_descendant_of(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut cur = match self.get(node) {
            Some(n) => n.parent,
            None => return false,
        };
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.get(p).and_then(|n| n.parent);
        }
        false
    }

    /// Iterator over `node`'s ancestors, nearest first.
    pub fn ancestors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.get(node).and_then(|n| n.parent);
        std::iter::from_fn(move || {
            let next = cur?;
            cur = self.get(next).and_then(|n| n.parent);
            Some(next)
        })
    }

    /// Pre-order iterator over `node` and all its descendants.
    pub fn descendants_and_self(&self, node: NodeId) -> Descendants<'_> {
        let stack = if self.contains(node) { vec![node] } else { Vec::new() };
        Descendants { doc: self, stack }
    }

    /// Pre-order iterator over the whole document starting at the root.
    pub fn all_nodes(&self) -> Descendants<'_> {
        self.descendants_and_self(self.root)
    }

    /// Number of nodes in the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.descendants_and_self(node).count()
    }

    /// Depth of `node` below the root (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    /// Compares two attached nodes in document order.
    ///
    /// Returns `Less` if `a` strictly precedes `b` in pre-order.
    pub fn cmp_document_order(&self, a: NodeId, b: NodeId) -> Result<std::cmp::Ordering, TreeError> {
        use std::cmp::Ordering;
        if a == b {
            return Ok(Ordering::Equal);
        }
        self.expect(a)?;
        self.expect(b)?;
        // Paths from root: sequence of child positions.
        let path = |mut n: NodeId| -> Result<Vec<usize>, TreeError> {
            let mut p = Vec::new();
            while let Some(parent) = self.expect(n)?.parent {
                p.push(self.position_in_parent(n)?);
                n = parent;
            }
            p.reverse();
            Ok(p)
        };
        let pa = path(a)?;
        let pb = path(b)?;
        Ok(pa.cmp(&pb))
    }

    // ------------------------------------------------------------------
    // Serialization.
    // ------------------------------------------------------------------

    /// Serializes the whole document (no XML declaration, compact).
    pub fn to_xml(&self) -> String {
        serialize::serialize(self, self.root, &SerializeOptions::compact())
    }

    /// Serializes the whole document with options.
    pub fn to_xml_with(&self, opts: &SerializeOptions) -> String {
        serialize::serialize(self, self.root, opts)
    }

    /// Serializes one subtree (compact).
    pub fn subtree_to_xml(&self, node: NodeId) -> String {
        serialize::serialize(self, node, &SerializeOptions::compact())
    }

    /// Validates internal consistency; used by tests and debug assertions.
    ///
    /// Checks that every live node is reachable from the root or from a
    /// detached head, that parent/child links agree, and the live count
    /// matches. Returns the number of live nodes on success.
    pub fn check_consistency(&self) -> Result<usize, String> {
        let mut seen = 0usize;
        for (index, slot) in self.slots.iter().enumerate() {
            let Some(node) = &slot.node else { continue };
            seen += 1;
            let id = NodeId { index: index as u32, generation: slot.generation };
            if let Some(parent) = node.parent {
                let pnode = self.get(parent).ok_or_else(|| format!("{id}: dangling parent {parent}"))?;
                if !pnode.children.contains(&id) {
                    return Err(format!("{id}: parent {parent} does not list it as a child"));
                }
            }
            for &child in &node.children {
                let cnode = self.get(child).ok_or_else(|| format!("{id}: dangling child {child}"))?;
                if cnode.parent != Some(id) {
                    return Err(format!("{id}: child {child} has parent {:?}", cnode.parent));
                }
            }
        }
        if seen != self.live {
            return Err(format!("live count mismatch: counted {seen}, recorded {}", self.live));
        }
        if self.get(self.root).is_none() {
            return Err("root is not live".into());
        }
        Ok(seen)
    }
}

/// Pre-order (document order) iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        if let Some(node) = self.doc.get(id) {
            self.stack.extend(node.children.iter().rev());
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        // <root><a x="1">hi</a><b/></root>
        let mut doc = Document::new("root");
        let root = doc.root();
        let a = doc.create_element("a");
        doc.set_attr(a, "x", "1").unwrap();
        let t = doc.create_text("hi");
        doc.append_child(a, t).unwrap();
        doc.append_child(root, a).unwrap();
        let b = doc.create_element("b");
        doc.append_child(root, b).unwrap();
        (doc, a, t, b)
    }

    #[test]
    fn build_and_serialize() {
        let (doc, ..) = sample();
        assert_eq!(doc.to_xml(), r#"<root><a x="1">hi</a><b/></root>"#);
        assert_eq!(doc.node_count(), 4);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn ids_are_stable_across_unrelated_edits() {
        let (mut doc, a, _t, b) = sample();
        doc.delete(b).unwrap();
        assert!(doc.contains(a));
        assert_eq!(doc.name(a).unwrap().local, "a");
    }

    #[test]
    fn deleted_ids_become_stale_and_are_not_resurrected() {
        let (mut doc, a, t, _b) = sample();
        doc.delete(a).unwrap();
        assert!(!doc.contains(a));
        assert!(!doc.contains(t), "descendants die with the subtree");
        // Allocate into the freed slots: fresh ids must differ.
        let c = doc.create_element("c");
        let d = doc.create_element("d");
        assert_ne!(c, a);
        assert_ne!(d, a);
        assert_ne!(c, t);
        assert_ne!(d, t);
        assert_eq!(doc.kind(a).err(), Some(TreeError::StaleNode));
    }

    #[test]
    fn delete_returns_affected_node_count() {
        let (mut doc, a, _t, b) = sample();
        assert_eq!(doc.delete(a).unwrap(), 2, "a + its text");
        assert_eq!(doc.delete(b).unwrap(), 1);
        assert_eq!(doc.node_count(), 1);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn detach_reports_parent_and_position() {
        let (mut doc, a, _t, b) = sample();
        let (parent, pos) = doc.detach(b).unwrap();
        assert_eq!(parent, doc.root());
        assert_eq!(pos, 1);
        assert!(doc.contains(b), "detach keeps the subtree alive");
        // Re-attach it where it was.
        doc.insert_child(parent, pos, b).unwrap();
        assert_eq!(doc.to_xml(), r#"<root><a x="1">hi</a><b/></root>"#);
        let (_, pos_a) = doc.detach(a).unwrap();
        assert_eq!(pos_a, 0);
    }

    #[test]
    fn insert_before_and_after() {
        let (mut doc, a, _t, b) = sample();
        let c = doc.create_element("c");
        doc.insert_before(a, c).unwrap();
        let d = doc.create_element("d");
        doc.insert_after(b, d).unwrap();
        assert_eq!(doc.to_xml(), r#"<root><c/><a x="1">hi</a><b/><d/></root>"#);
    }

    #[test]
    fn replace_swaps_subtrees_in_place() {
        let (mut doc, a, _t, _b) = sample();
        let new = doc.create_element("z");
        let pos = doc.replace(a, new).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(doc.to_xml(), r#"<root><z/><b/></root>"#);
        assert!(!doc.contains(a));
        doc.check_consistency().unwrap();
    }

    #[test]
    fn cycle_rejected() {
        let (mut doc, a, _t, _b) = sample();
        let root = doc.root();
        // Detach a, then try to append root under a's subtree: root is immutable.
        doc.detach(a).unwrap();
        assert_eq!(doc.append_child(a, root), Err(TreeError::RootImmutable));
        // Build a real cycle attempt: x under y, then y under x's descendant.
        let x = doc.create_element("x");
        let y = doc.create_element("y");
        doc.append_child(x, y).unwrap();
        assert_eq!(doc.insert_child(y, 0, x), Err(TreeError::WouldCycle));
        assert_eq!(doc.insert_child(x, 0, x), Err(TreeError::WouldCycle));
    }

    #[test]
    fn double_attach_rejected() {
        let (mut doc, a, _t, _b) = sample();
        let root = doc.root();
        assert_eq!(doc.append_child(root, a), Err(TreeError::NotAttached), "a already has a parent");
    }

    #[test]
    fn position_bounds_checked() {
        let (mut doc, ..) = sample();
        let root = doc.root();
        let c = doc.create_element("c");
        assert_eq!(doc.insert_child(root, 7, c), Err(TreeError::PositionOutOfBounds { len: 2, index: 7 }));
    }

    #[test]
    fn root_protected() {
        let (mut doc, ..) = sample();
        let root = doc.root();
        assert_eq!(doc.delete(root), Err(TreeError::RootImmutable));
        assert_eq!(doc.detach(root), Err(TreeError::RootImmutable));
        let z = doc.create_element("z");
        assert_eq!(doc.replace(root, z), Err(TreeError::RootImmutable));
    }

    #[test]
    fn attributes_roundtrip() {
        let (mut doc, a, ..) = sample();
        assert_eq!(doc.attr(a, "x"), Some("1"));
        assert_eq!(doc.set_attr(a, "x", "2").unwrap(), Some("1".to_string()));
        assert_eq!(doc.attr(a, "x"), Some("2"));
        assert_eq!(doc.set_attr(a, "y", "3").unwrap(), None);
        assert_eq!(doc.remove_attr(a, "x").unwrap(), Some("2".to_string()));
        assert_eq!(doc.attr(a, "x"), None);
        assert_eq!(doc.remove_attr(a, "x").unwrap(), None);
    }

    #[test]
    fn text_content_concatenates() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let a = doc.create_element("a");
        let t1 = doc.create_text("one ");
        doc.append_child(a, t1).unwrap();
        doc.append_child(root, a).unwrap();
        let t2 = doc.create_text("two");
        doc.append_child(root, t2).unwrap();
        assert_eq!(doc.text_content(root).unwrap(), "one two");
        assert_eq!(doc.text_content(a).unwrap(), "one ");
    }

    #[test]
    fn set_node_text_returns_old() {
        let (mut doc, _a, t, _b) = sample();
        assert_eq!(doc.set_node_text(t, "bye").unwrap(), "hi");
        assert_eq!(doc.node_text(t).unwrap(), "bye");
    }

    #[test]
    fn navigation() {
        let (doc, a, t, b) = sample();
        let root = doc.root();
        assert_eq!(doc.parent(a).unwrap(), Some(root));
        assert_eq!(doc.parent(root).unwrap(), None);
        assert_eq!(doc.children(root).unwrap(), &[a, b]);
        assert_eq!(doc.child_elements(root).unwrap(), vec![a, b]);
        assert_eq!(doc.first_child_element(root, "b"), Some(b));
        assert_eq!(doc.first_child_element(root, "zz"), None);
        assert!(doc.is_descendant_of(t, root));
        assert!(doc.is_descendant_of(t, a));
        assert!(!doc.is_descendant_of(a, b));
        assert_eq!(doc.ancestors(t).collect::<Vec<_>>(), vec![a, root]);
        assert_eq!(doc.depth(t), 2);
        assert_eq!(doc.subtree_size(root), 4);
    }

    #[test]
    fn document_order() {
        use std::cmp::Ordering::*;
        let (doc, a, t, b) = sample();
        let root = doc.root();
        assert_eq!(doc.cmp_document_order(root, a).unwrap(), Less);
        assert_eq!(doc.cmp_document_order(a, t).unwrap(), Less);
        assert_eq!(doc.cmp_document_order(t, b).unwrap(), Less);
        assert_eq!(doc.cmp_document_order(b, a).unwrap(), Greater);
        assert_eq!(doc.cmp_document_order(a, a).unwrap(), Equal);
        let order: Vec<NodeId> = doc.all_nodes().collect();
        assert_eq!(order, vec![root, a, t, b]);
    }

    #[test]
    fn rename_element() {
        let (mut doc, a, t, _b) = sample();
        doc.set_name(a, "renamed").unwrap();
        assert_eq!(doc.name(a).unwrap().local, "renamed");
        assert_eq!(doc.set_name(t, "x"), Err(TreeError::WrongKind { expected: "element" }));
    }

    #[test]
    fn wrong_kind_errors() {
        let (mut doc, a, t, _b) = sample();
        assert!(doc.node_text(a).is_err());
        assert!(doc.name(t).is_err());
        assert!(doc.attrs(t).is_err());
        assert!(doc.set_attr(t, "k", "v").is_err());
        // Appending under a text node is rejected.
        let c = doc.create_element("c");
        assert_eq!(doc.append_child(t, c), Err(TreeError::WrongKind { expected: "element" }));
    }
}
