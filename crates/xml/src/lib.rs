#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! XML substrate for the AXML atomicity reproduction.
//!
//! This crate implements, from scratch, the XML document store that the rest
//! of the system is built on:
//!
//! - [`Document`]: an arena-based mutable XML tree with **stable, unique
//!   node identifiers** ([`NodeId`]). The paper's dynamic-compensation
//!   protocol (§3.1) requires that an insert operation "returns the (unique)
//!   ID of the inserted node" so that its compensation can be formulated as
//!   a delete of that ID; the arena provides exactly this.
//! - [`parse`] / [`Document::parse`]: a small but real XML parser covering
//!   the subset AXML documents use (elements, attributes, namespaced names,
//!   text with entity references, CDATA, comments, processing instructions).
//! - [`Fragment`]: an owned, detached subtree value. Fragments are what gets
//!   written to transaction logs (the deleted/overwritten data needed to
//!   build compensating operations at run time) and what travels between
//!   peers as service-call results.
//! - [`canonical`]: ordered and unordered document equivalence, used by the
//!   compensation invariants ("apply ops; apply compensation ⇒ equivalent
//!   state", honoring the paper's caveat that plain re-insertion does not
//!   preserve sibling order).
//!
//! # Quick example
//!
//! ```
//! use axml_xml::Document;
//!
//! let mut doc = Document::parse("<list><item>a</item></list>").unwrap();
//! let root = doc.root();
//! let item = doc.create_element("item");
//! let txt = doc.create_text("b");
//! doc.append_child(item, txt).unwrap();
//! doc.append_child(root, item).unwrap();
//! assert_eq!(doc.to_xml(), "<list><item>a</item><item>b</item></list>");
//! ```

pub mod canonical;
pub mod error;
pub mod fragment;
pub mod name;
pub mod parser;
pub mod serialize;
pub mod tree;

pub use canonical::{equivalent_ordered, equivalent_unordered};
pub use error::{ParseError, TreeError};
pub use fragment::Fragment;
pub use name::QName;
pub use parser::{parse, parse_fragment, ParseOptions};
pub use serialize::{escape_attr, escape_text, SerializeOptions};
pub use tree::{Document, NodeId, NodeKind};
